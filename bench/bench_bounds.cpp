// E10 (validation study, not a paper figure): tightness of the Lemma 1
// lower bounds against the exact offline optimum on small random instances.
// Reports, per (d, mu), the mean of LB/OPT for each bound and the FFD/OPT
// upper-bound gap -- justifying the paper's use of LB_height (Lemma 1(i))
// as the Figure 4 normalizer.
//
// Flags: --trials=30 --n=30 --d=1,2,3 --mu=2,5,10 --seed=7
#include <iostream>

#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_norepack.hpp"
#include "opt/offline_opt.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 30));
  const auto n = static_cast<std::size_t>(args.get_int("n", 30));
  const auto ds = args.get_int_list("d", {1, 2, 3});
  const auto mus = args.get_int_list("mu", {2, 5, 10});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  std::cout << "=== Lower-bound tightness vs exact OPT (n=" << n << ", "
            << trials << " trials/cell) ===\n\n";

  harness::Table t({"d", "mu", "height/OPT", "util/OPT", "span/OPT",
                    "FFD/OPT", "norepack/OPT", "MTF/OPT", "exact-rate"});
  for (const auto d : ds) {
    for (const auto mu : mus) {
      gen::UniformParams params;
      params.d = static_cast<std::size_t>(d);
      params.n = n;
      params.mu = mu;
      params.span = static_cast<std::int64_t>(3 * mu + n / 4);
      params.bin_size = 7;

      RunningStats height, util, span, ffd, norepack, mtf;
      std::size_t exact_count = 0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const Instance inst = gen::uniform_instance(params, seed, trial);
        const auto opt = offline_opt(inst);
        if (!opt.exact || opt.cost <= 0.0) continue;
        ++exact_count;
        const LowerBounds lbs = lower_bounds(inst);
        height.add(lbs.height / opt.cost);
        util.add(lbs.utilization / opt.cost);
        span.add(lbs.span / opt.cost);
        ffd.add(offline_ffd_cost(inst) / opt.cost);
        norepack.add(offline_norepack(inst).cost / opt.cost);
        mtf.add(simulate(inst, "MoveToFront").cost / opt.cost);
      }
      t.add_row({std::to_string(d), std::to_string(mu),
                 harness::Table::mean_pm(height.mean(), height.stddev()),
                 harness::Table::mean_pm(util.mean(), util.stddev()),
                 harness::Table::mean_pm(span.mean(), span.stddev()),
                 harness::Table::mean_pm(ffd.mean(), ffd.stddev()),
                 harness::Table::mean_pm(norepack.mean(), norepack.stddev()),
                 harness::Table::mean_pm(mtf.mean(), mtf.stddev()),
                 std::to_string(exact_count) + "/" + std::to_string(trials)});
    }
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout
      << "Reading: height (Lemma 1(i)) is the tightest lower bound (ratios\n"
         "near 1), util degrades with d (the 1/d factor), span is loose\n"
         "under load; FFD/OPT shows the offline *repacking* heuristic gap.\n"
         "This justifies normalizing Figure 4 by the height bound, as the\n"
         "paper does. The norepack column is the offline optimum denied\n"
         "migration (local search): its gap over 1.0 is the value of\n"
         "repacking; MTF/OPT minus norepack/OPT is the value of knowing\n"
         "the future.\n";
  return 0;
}
