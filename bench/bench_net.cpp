// Network throughput/latency ladder for the binary-RPC placement server
// (docs/PROTOCOL.md): spins up a PlacementServer over loopback and drives
// it with the load generator.
//
// Two sections:
//   * closed loop -- connection-count ladder at a fixed window: the
//     saturation throughput and its p50/p99/p999 latency tail;
//   * open loop -- a target-rate rung deliberately above saturation
//     against a small-queue service: RETRY_LATER must show up (the
//     backpressure path) while memory stays bounded.
//
// Unlike the microbenchmarks this is not a google-benchmark binary (it
// measures a client/server pair, not a function), so it emits its own
// JSON: {"context":{...},"benchmarks":[{...}]} -- curated record in
// bench/BENCH_net.json, regenerated via
// scripts/bench_baseline.sh --target=net.
//
// Flags: --connections=1,2,4 --window=128 --requests=20000 --shards=8
//        --event-loops=1 --dim=2 --depart-fraction=0.45 --seed=42
//        --open-rate-multiplier=2 --open-duration=1.0 --out=FILE --smoke
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cloud/sharded_dispatcher.hpp"
#include "core/policies/registry.hpp"
#include "harness/cli.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "obs/json.hpp"

namespace {

struct Rung {
  std::string name;
  dvbp::net::LoadgenResult result;
  std::size_t connections = 0;
  std::size_t window = 0;
  double target_rate = 0.0;  // open loop only
};

dvbp::cloud::ShardedOptions service_options(std::size_t shards,
                                            std::size_t queue_capacity) {
  dvbp::cloud::ShardedOptions opts;
  opts.shards = shards;
  opts.router = dvbp::cloud::RouterKind::kRoundRobin;
  opts.queue_capacity = queue_capacity;
  return opts;
}

void append_rung_json(std::string& out, const Rung& rung) {
  using dvbp::obs::json_number;
  const dvbp::net::LoadgenResult& r = rung.result;
  out += "    {\"name\":\"" + rung.name + "\"";
  out += ",\"connections\":" + std::to_string(rung.connections);
  out += ",\"window\":" + std::to_string(rung.window);
  if (rung.target_rate > 0.0) {
    out += ",\"target_rate_rps\":" + json_number(rung.target_rate);
  }
  out += ",\"requests_sent\":" + std::to_string(r.requests_sent);
  out += ",\"ok\":" + std::to_string(r.ok);
  out += ",\"retry_later\":" + std::to_string(r.retry_later);
  out += ",\"errors\":" + std::to_string(r.bad_request + r.unknown_job +
                                         r.shutting_down + r.other_errors);
  out += ",\"elapsed_s\":" + json_number(r.elapsed_s);
  out += ",\"throughput_rps\":" + json_number(r.throughput_rps);
  out += ",\"p50_ns\":" + json_number(r.p50_ns);
  out += ",\"p99_ns\":" + json_number(r.p99_ns);
  out += ",\"p999_ns\":" + json_number(r.p999_ns);
  out += ",\"max_ns\":" + json_number(r.max_ns);
  out += "}";
}

void print_rung(const Rung& rung) {
  const dvbp::net::LoadgenResult& r = rung.result;
  std::cout << rung.name << ": conns=" << rung.connections
            << " ok=" << r.ok << " retry_later=" << r.retry_later
            << " rps=" << static_cast<std::uint64_t>(r.throughput_rps)
            << " p50_us=" << r.p50_ns / 1e3
            << " p99_us=" << r.p99_ns / 1e3
            << " p999_us=" << r.p999_ns / 1e3 << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);

  std::vector<std::int64_t> connections =
      args.get_int_list("connections", smoke
                                           ? std::vector<std::int64_t>{2}
                                           : std::vector<std::int64_t>{1, 2,
                                                                       4});
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 8));
  const auto event_loops =
      static_cast<std::size_t>(args.get_int("event-loops", 1));
  const auto window =
      static_cast<std::size_t>(args.get_int("window", smoke ? 32 : 128));
  const auto requests = static_cast<std::uint64_t>(
      args.get_int("requests", smoke ? 1000 : 20000));
  const auto dim = static_cast<std::size_t>(args.get_int("dim", 2));
  const double depart_fraction = args.get_double("depart-fraction", 0.45);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double open_rate_multiplier =
      args.get_double("open-rate-multiplier", 2.0);
  const double open_duration =
      args.get_double("open-duration", smoke ? 0.2 : 1.0);
  const std::string out_path = args.get("out", "");

  const auto factory = [](std::size_t) { return make_policy("FirstFit"); };

  std::vector<Rung> rungs;
  double best_closed_rps = 0.0;

  // --- Closed-loop connection ladder ------------------------------------
  for (const std::int64_t conns : connections) {
    cloud::ShardedDispatcher service(dim, factory,
                                     service_options(shards, 4096));
    net::ServerOptions sopts;
    sopts.event_loops = event_loops;
    net::PlacementServer server(service, sopts);

    net::LoadgenOptions lopts;
    lopts.port = server.port();
    lopts.connections = static_cast<std::size_t>(conns);
    lopts.dim = dim;
    lopts.depart_fraction = depart_fraction;
    lopts.seed = seed;
    lopts.window = window;
    lopts.requests_per_connection = requests;

    Rung rung;
    rung.name = "closed/c" + std::to_string(conns);
    rung.connections = lopts.connections;
    rung.window = window;
    rung.result = net::run_loadgen(lopts);
    best_closed_rps = std::max(best_closed_rps, rung.result.throughput_rps);
    print_rung(rung);
    rungs.push_back(rung);
    server.stop();
  }

  // --- Open-loop backpressure rung --------------------------------------
  // Target rate deliberately above the measured saturation against a
  // service with small shard queues: the server must shed load with
  // RETRY_LATER instead of buffering without bound.
  {
    cloud::ShardedDispatcher service(dim, factory,
                                     service_options(shards, 64));
    net::ServerOptions sopts;
    sopts.event_loops = event_loops;
    sopts.max_inflight_per_conn = 256;
    net::PlacementServer server(service, sopts);

    net::LoadgenOptions lopts;
    lopts.port = server.port();
    lopts.connections = 2;
    lopts.dim = dim;
    lopts.depart_fraction = depart_fraction;
    lopts.seed = seed + 1;
    lopts.open_loop_rate = std::max(best_closed_rps * open_rate_multiplier,
                                    smoke ? 20000.0 : 50000.0);
    lopts.duration_s = open_duration;

    Rung rung;
    rung.name = "open/overload";
    rung.connections = lopts.connections;
    rung.window = 0;
    rung.target_rate = lopts.open_loop_rate;
    rung.result = net::run_loadgen(lopts);
    print_rung(rung);
    rungs.push_back(rung);
    server.stop();
  }

  std::string json = "{\n  \"context\": {";
  json += "\"bench\":\"net\"";
  json += ",\"shards\":" + std::to_string(shards);
  json += ",\"event_loops\":" + std::to_string(event_loops);
  json += ",\"dim\":" + std::to_string(dim);
  json += ",\"requests_per_connection\":" + std::to_string(requests);
  json += ",\"depart_fraction\":" + obs::json_number(depart_fraction);
  json += ",\"smoke\":" + std::string(smoke ? "true" : "false");
  json += "},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    append_rung_json(json, rungs[i]);
    if (i + 1 < rungs.size()) json += ",";
    json += "\n";
  }
  json += "  ]\n}\n";

  if (!out_path.empty()) {
    harness::require_writable_file("--out", out_path);
    std::ofstream out(out_path);
    out << json;
    std::cout << "wrote " << out_path << std::endl;
  } else {
    std::cout << json;
  }
  return 0;
}
