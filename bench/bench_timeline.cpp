// Timeline study: where do online policies waste bins? For one workload
// instance, prints the number of open bins over time for each policy next
// to the exact OPT(R,t) (eq. (2) integrand) and the Lemma 1 height
// integrand ceil(||s(R,t)||_inf). The gap between a policy's curve and
// OPT(t) is exactly the waste the competitive analysis bounds.
//
// Flags: --n=40 --d=2 --mu=8 --span=30 --bin=6 --seed=5 --buckets=15
#include <cmath>
#include <iostream>

#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/vbp_exact.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  gen::UniformParams params;
  params.n = static_cast<std::size_t>(args.get_int("n", 40));
  params.d = static_cast<std::size_t>(args.get_int("d", 2));
  params.mu = args.get_int("mu", 8);
  params.span = args.get_int("span", 30);
  params.bin_size = args.get_int("bin", 6);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const auto buckets = static_cast<std::size_t>(args.get_int("buckets", 15));

  const Instance inst = gen::uniform_instance(params, seed);
  const Time horizon = inst.last_departure();

  const std::vector<std::string> policies{"MoveToFront", "FirstFit",
                                          "NextFit", "WorstFit"};
  std::vector<SimResult> results;
  for (const auto& name : policies) {
    results.push_back(simulate(inst, name, {.record_timeline = true}));
  }

  auto open_at = [](const SimResult& r, Time t) -> std::size_t {
    std::size_t open = 0;
    for (const auto& [when, count] : r.timeline) {
      if (when > t) break;
      open = count;
    }
    return open;
  };

  std::cout << "=== Open bins over time: online policies vs exact OPT(t) "
               "(n=" << params.n << ", d=" << params.d << ") ===\n\n";
  harness::Table t([&] {
    std::vector<std::string> hdr{"t", "ceil||s(R,t)||", "OPT(R,t)"};
    for (const auto& p : policies) hdr.push_back(p);
    return hdr;
  }());

  for (std::size_t b = 0; b < buckets; ++b) {
    const Time at =
        horizon * (static_cast<Time>(b) + 0.5) / static_cast<Time>(buckets);
    std::vector<RVec> active_sizes;
    for (const Item& r : inst.items()) {
      if (r.active_at(at)) active_sizes.push_back(r.size);
    }
    const auto opt_t = vbp_min_bins(active_sizes);
    const double height = std::ceil(inst.load_at(at).linf() - 1e-9);
    std::vector<std::string> row{harness::Table::num(at, 1),
                                 harness::Table::num(height, 0),
                                 std::to_string(opt_t.bins) +
                                     (opt_t.exact ? "" : "?")};
    for (const auto& r : results) {
      row.push_back(std::to_string(open_at(r, at)));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_aligned_text() << '\n';

  std::cout << "Costs: ";
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::cout << policies[p] << "=" << harness::Table::num(results[p].cost, 1)
              << (p + 1 < policies.size() ? ", " : "\n");
  }
  std::cout << "Reading: OPT(R,t) tracks ceil||s(R,t)|| closely (Lemma 1(i)\n"
               "is tight per instant); online curves sit above because an\n"
               "online algorithm cannot repack -- bins drained to a single\n"
               "long item stay open. That residue is what accumulates into\n"
               "the mu-dependence of every competitive ratio.\n";
  return 0;
}
