// Ablation benches (E8, E9 in DESIGN.md):
//
//  E8 -- Best Fit / Worst Fit load-measure ablation: the paper (Sec. 2.2)
//  notes there is no unique scalar "load" in d >= 2 and lists Linf / L1 /
//  Lp as options; Sec. 7 evaluates Linf. This bench compares all three on
//  the Figure 4 workload.
//
//  E9 -- decomposition instrumentation: the Thm 2 analysis splits each
//  Move To Front bin's usage period into leading intervals (which exactly
//  partition the span -- Claim 1) and non-leading intervals (bounded by
//  (2mu+1)d * OPT). The Thm 4 analysis splits Next Fit usage into current
//  (P_i, partitioning the span) and released (Q_i <= mu each) periods. We
//  measure both decompositions empirically.
//
// Flags: --trials=100 --d=2 --mu=1,10,100 --seed=1
#include <iostream>

#include "core/policies/move_to_front.hpp"
#include "core/policies/next_fit.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "opt/lower_bounds.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace dvbp;

void load_measure_ablation(const harness::Args& args) {
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto mus = args.get_int_list("mu", {1, 10, 100});
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));

  std::cout << "--- E8: load-measure ablation (d=" << d << ", " << trials
            << " trials, cost/LB) ---\n";
  harness::Table t({"mu", "BestFit:Linf", "BestFit:L1", "BestFit:L2",
                    "WorstFit:Linf", "WorstFit:L1", "WorstFit:L2"});
  const std::vector<std::string> policies{"BestFit:Linf", "BestFit:L1",
                                          "BestFit:L2",   "WorstFit:Linf",
                                          "WorstFit:L1",  "WorstFit:L2"};
  for (const auto mu : mus) {
    gen::UniformParams params;
    params.d = d;
    params.mu = mu;
    harness::SweepConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    const auto cells = harness::run_policy_sweep(
        gen::make_generator("uniform", params, seed), policies, cfg);
    std::vector<std::string> row{std::to_string(mu)};
    for (const auto& cell : cells) {
      row.push_back(
          harness::Table::mean_pm(cell.ratio.mean(), cell.ratio.stddev()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_aligned_text() << '\n';
}

void decomposition_study(const harness::Args& args) {
  const auto trials =
      static_cast<std::size_t>(args.get_int("trials", 100)) / 4 + 1;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const auto mus = args.get_int_list("mu", {1, 10, 100});

  std::cout << "--- E9: usage-period decompositions (d=" << d << ", "
            << trials << " trials) ---\n";
  harness::Table t({"mu", "MTF lead/span", "MTF nonlead/cost",
                    "NF current/span", "NF released/cost"});
  for (const auto mu : mus) {
    gen::UniformParams params;
    params.d = d;
    params.mu = mu;

    RunningStats mtf_lead_over_span, mtf_nonlead_share;
    RunningStats nf_current_over_span, nf_released_share;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const Instance inst = gen::uniform_instance(params, seed, trial);
      const double span = inst.span();

      // Move To Front: leading time from the recorded leader history.
      MoveToFrontPolicy mtf(/*record_leader_history=*/true);
      const SimResult mr = simulate(inst, mtf);
      double lead = 0.0;
      const auto& h = mtf.leader_history();
      for (std::size_t i = 0; i + 1 < h.size(); ++i) {
        if (h[i].leader != kNoBin) lead += h[i + 1].time - h[i].time;
      }
      mtf_lead_over_span.add(lead / span);
      mtf_nonlead_share.add((mr.cost - lead) / mr.cost);

      // Next Fit: current time = sum over bins of [opened, released).
      NextFitPolicy nf;
      const SimResult nr = simulate(inst, nf);
      double current = 0.0;
      std::vector<char> released(nr.bins_opened, 0);
      for (const auto& rel : nf.release_log()) {
        current += rel.time - nr.packing.bins()[rel.bin].opened;
        released[rel.bin] = 1;
      }
      // Bins never released were current their whole usage period.
      for (const BinRecord& bin : nr.packing.bins()) {
        if (!released[bin.id]) current += bin.usage_time();
      }
      nf_current_over_span.add(current / span);
      nf_released_share.add((nr.cost - current) / nr.cost);
    }
    t.add_row(
        {std::to_string(mu),
         harness::Table::mean_pm(mtf_lead_over_span.mean(),
                                 mtf_lead_over_span.stddev()),
         harness::Table::mean_pm(mtf_nonlead_share.mean(),
                                 mtf_nonlead_share.stddev()),
         harness::Table::mean_pm(nf_current_over_span.mean(),
                                 nf_current_over_span.stddev()),
         harness::Table::mean_pm(nf_released_share.mean(),
                                 nf_released_share.stddev())});
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout << "Reading: 'lead/span' must be exactly 1.000 (Claim 1 of\n"
               "Thm 2: leading intervals partition the span -- when a\n"
               "leader closes, the next MRU bin leads immediately).\n"
               "'current/span' is <= 1.000 (eq. (11) of Thm 4): a current\n"
               "bin can close while released bins are still active,\n"
               "leaving a currentless gap until the next arrival. The\n"
               "non-leading / released share is the part the theorems\n"
               "bound by O(mu d) * OPT -- it grows with mu, explaining\n"
               "Next Fit's degradation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  std::cout << "=== Ablation benches ===\n\n";
  load_measure_ablation(args);
  decomposition_study(args);
  return 0;
}
