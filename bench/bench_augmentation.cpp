// Extension bench: resource augmentation. The dynamic bin packing
// literature (cf. Chan-Wong-Yung [6], cited as related work) asks how much
// the online/offline gap shrinks when the online algorithm's bins are a
// factor (1+beta) larger than the optimum's. We sweep beta on the Figure 4
// workload and on the Thm 5 adversarial instance: average-case ratios
// improve modestly, while the adversarial construction collapses as soon
// as beta exceeds the construction's epsilon margins.
//
// Flags: --trials=100 --d=2 --mu=100 --betas=0,0.1,0.25,0.5,1.0 --seed=2
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"
#include "stats/descriptive.hpp"

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 100));
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const auto mu = args.get_int("mu", 100);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));

  std::vector<double> betas{0.0, 0.1, 0.25, 0.5, 1.0};
  if (args.has("betas")) {
    betas.clear();
    for (const std::string& tok : args.get_list("betas")) {
      betas.push_back(std::stod(tok));
    }
  }
  const std::vector<std::string> policies{"MoveToFront", "FirstFit",
                                          "NextFit"};

  std::cout << "=== Resource augmentation: online bins of size 1+beta vs "
               "unit-bin lower bound ===\n\n";
  std::cout << "--- average case (uniform workload, d=" << d
            << ", mu=" << mu << ", " << trials << " trials) ---\n";
  gen::UniformParams params;
  params.d = d;
  params.mu = mu;

  harness::Table t([&] {
    std::vector<std::string> hdr{"beta"};
    for (const auto& p : policies) hdr.push_back(p);
    return hdr;
  }());
  for (double beta : betas) {
    std::vector<RunningStats> stats(policies.size());
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const Instance inst = gen::uniform_instance(params, seed, trial);
      const double lb = lb_height(inst);
      for (std::size_t p = 0; p < policies.size(); ++p) {
        SimOptions opts;
        opts.bin_capacity = 1.0 + beta;
        stats[p].add(simulate(inst, policies[p], opts).cost / lb);
      }
    }
    std::vector<std::string> row{harness::Table::num(beta, 2)};
    for (const auto& s : stats) {
      row.push_back(harness::Table::mean_pm(s.mean(), s.stddev()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_aligned_text() << '\n';

  std::cout << "--- adversarial case (Thm 5 construction, k=16) ---\n";
  const auto adv = gen::anyfit_lower_bound(16, d, static_cast<double>(mu));
  const double opt_ub = offline_ffd_cost(adv.instance);
  harness::Table t2({"beta", "FirstFit cost", "cost/OPT_ub"});
  for (double beta : betas) {
    SimOptions opts;
    opts.bin_capacity = 1.0 + beta;
    const double cost = simulate(adv.instance, "FirstFit", opts).cost;
    t2.add_row({harness::Table::num(beta, 2), harness::Table::num(cost, 1),
                harness::Table::num(cost / opt_ub, 2)});
  }
  std::cout << t2.to_aligned_text() << '\n';
  std::cout
      << "Reading: average-case ratios (still normalized by the UNIT-bin\n"
         "lower bound) drop steadily with beta and cross below 1 once the\n"
         "extra capacity beats what repacking could save. The Thm 5 gadget\n"
         "is epsilon-fragile: beta in (0, ~0.5] breaks its near-full bins\n"
         "and the ratio collapses toward 1. At beta = 1.0 the trap partly\n"
         "re-arms -- two odd/even pairs now fill a bin to 2 - 2*eps',\n"
         "again leaving room for exactly one long-lived filler each -- a\n"
         "nice reminder that adversarial structure is not monotone in\n"
         "capacity.\n";
  return 0;
}
