// Regenerates Figure 4 of the paper: average-case performance (cost divided
// by the Lemma 1(i) lower bound on OPT) of the seven Any Fit algorithms on
// the Table 2 uniform workload, for every (d, mu) panel.
//
// Paper defaults: d in {1,2,5}, mu in {1,2,5,10,100,200}, n = 1000,
// T = 1000, B = 100, 1000 trials. The trial count defaults to 200 here so
// an unflagged run finishes in about a minute; pass --trials=1000 for the
// paper's exact setting (the means move by well under one error bar).
//
// Flags: --trials=N --d=1,2,5 --mu=1,2,5,10,100,200 --n=N --span=T --bin=B
//        --seed=S --threads=K --generator=uniform|zipf|bursty|correlated
//        --csv (machine-readable output) --print-params (reprint Table 2)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "gen/registry.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"
#include "core/policies/registry.hpp"

namespace {

void print_table2(const dvbp::gen::UniformParams& base,
                  const std::vector<std::int64_t>& ds,
                  const std::vector<std::int64_t>& mus) {
  using dvbp::harness::Table;
  Table t({"Parameter", "Description", "Value"});
  auto list = [](const std::vector<std::int64_t>& xs) {
    std::string s = "{";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(xs[i]);
    }
    return s + "}";
  };
  t.add_row({"d", "Num. dimensions", list(ds)});
  t.add_row({"n", "Sequence length", std::to_string(base.n)});
  t.add_row({"mu", "Max. item length", list(mus)});
  t.add_row({"T", "Sequence span", std::to_string(base.span)});
  t.add_row({"B", "Bin size", std::to_string(base.bin_size)});
  std::cout << "Table 2: experimental parameters\n"
            << t.to_aligned_text() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);

  gen::UniformParams base;
  base.n = static_cast<std::size_t>(args.get_int("n", 1000));
  base.span = args.get_int("span", 1000);
  base.bin_size = args.get_int("bin", 100);

  const std::vector<std::int64_t> ds = args.get_int_list("d", {1, 2, 5});
  const std::vector<std::int64_t> mus =
      args.get_int_list("mu", {1, 2, 5, 10, 100, 200});
  const std::string generator = args.get("generator", "uniform");

  harness::SweepConfig config;
  config.trials = static_cast<std::size_t>(args.get_int("trials", 200));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20230419));
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));

  const bool csv = args.get_bool("csv");
  const std::vector<std::string> policies = standard_policy_names();

  std::cout << "=== Figure 4 regeneration: avg cost / LB_height, "
            << config.trials << " trials, generator=" << generator
            << " ===\n\n";
  if (args.get_bool("print-params")) print_table2(base, ds, mus);

  if (csv) {
    std::cout << "generator,d,mu,policy,mean_ratio,stddev,mean_bins\n";
  }

  for (std::int64_t d : ds) {
    if (!csv) {
      std::cout << "--- d = " << d << " ---\n";
      harness::Table panel([&] {
        std::vector<std::string> hdr{"mu"};
        for (const auto& p : policies) hdr.push_back(p);
        return hdr;
      }());
      for (std::int64_t mu : mus) {
        gen::UniformParams params = base;
        params.d = static_cast<std::size_t>(d);
        params.mu = mu;
        const auto cells = harness::run_policy_sweep(
            gen::make_generator(generator, params, config.seed), policies,
            config);
        std::vector<std::string> row{std::to_string(mu)};
        for (const auto& cell : cells) {
          row.push_back(harness::Table::mean_pm(cell.ratio.mean(),
                                                cell.ratio.stddev()));
        }
        panel.add_row(std::move(row));
      }
      std::cout << panel.to_aligned_text() << '\n';
    } else {
      for (std::int64_t mu : mus) {
        gen::UniformParams params = base;
        params.d = static_cast<std::size_t>(d);
        params.mu = mu;
        const auto cells = harness::run_policy_sweep(
            gen::make_generator(generator, params, config.seed), policies,
            config);
        for (const auto& cell : cells) {
          std::printf("%s,%lld,%lld,%s,%.6f,%.6f,%.2f\n", generator.c_str(),
                      static_cast<long long>(d), static_cast<long long>(mu),
                      cell.policy.c_str(), cell.ratio.mean(),
                      cell.ratio.stddev(), cell.bins.mean());
        }
      }
    }
  }

  std::cout << "Expected shape (paper Sec. 7): MoveToFront best, FirstFit "
               "and BestFit close behind,\nthen NextFit/LastFit/RandomFit "
               "(NextFit degrading with mu), WorstFit worst.\n";
  return 0;
}
