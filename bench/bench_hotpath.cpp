// Hot-path ladder: per-event engine cost as a function of the number of
// simultaneously-open bins. The workload pins N bins open for the whole
// run (items of size 0.95 in every dimension, so nothing else fits with
// them) and streams small churn items through one extra bin; every
// arrival and departure therefore executes against N+O(1) open bins.
//
// NextFit makes a constant-time decision, so its rungs isolate the
// engine's own bookkeeping (view construction, bin lookup, close). The
// Any Fit rungs (FirstFit, MoveToFront, BestFit) additionally pay the
// policy's inherent O(open) fit scan per arrival, which no engine change
// can remove. scripts/bench_baseline.sh runs this ladder and emits
// BENCH_hotpath.json (schema: docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"

namespace {

using namespace dvbp;

/// `n_open` pinned bins stay open across the whole horizon while
/// `n_churn` short items (size 0.1^d, duration 4) trickle through.
Instance forced_open_instance(std::size_t d, std::size_t n_open,
                              std::size_t n_churn) {
  Instance inst(d);
  const Time t_end = static_cast<Time>(n_churn) + 8.0;
  for (std::size_t i = 0; i < n_open; ++i) {
    inst.add(0.0, t_end, RVec(d, 0.95));
  }
  for (std::size_t j = 0; j < n_churn; ++j) {
    const Time t = 1.0 + static_cast<Time>(j);
    inst.add(t, t + 4.0, RVec(d, 0.1));
  }
  return inst;
}

void BM_SimulateManyOpenBins(benchmark::State& state,
                             const char* policy_name) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(d, n_open, /*n_churn=*/2000);
  PolicyPtr policy = make_policy(policy_name);
  for (auto _ : state) {
    const SimResult r = simulate(inst, *policy);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

#define HOTPATH_LADDER(name)                                            \
  BENCHMARK_CAPTURE(BM_SimulateManyOpenBins, name, #name)               \
      ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}})
HOTPATH_LADDER(NextFit);
HOTPATH_LADDER(FirstFit);
HOTPATH_LADDER(MoveToFront);
HOTPATH_LADDER(BestFit);
#undef HOTPATH_LADDER

void BM_DispatcherManyOpenBins(benchmark::State& state,
                               const char* policy_name) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(d, n_open, /*n_churn=*/2000);
  const auto events = build_event_stream(inst);
  PolicyPtr policy = make_policy(policy_name);
  for (auto _ : state) {
    Dispatcher dispatcher(inst.dim(), *policy);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        benchmark::DoNotOptimize(
            dispatcher.arrive(item.arrival, item.size, item.departure));
      } else {
        dispatcher.depart(ev.time, item.id);
      }
    }
    benchmark::DoNotOptimize(dispatcher.cost_so_far(inst.last_departure()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

BENCHMARK_CAPTURE(BM_DispatcherManyOpenBins, NextFit, "NextFit")
    ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}});
BENCHMARK_CAPTURE(BM_DispatcherManyOpenBins, FirstFit, "FirstFit")
    ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}});

}  // namespace

BENCHMARK_MAIN();
