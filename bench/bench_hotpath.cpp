// Hot-path ladder: per-event engine cost as a function of the number of
// simultaneously-open bins. The workload pins N bins open for the whole
// run (items of size 0.95 in every dimension, so nothing else fits with
// them) and streams small churn items through one extra bin; every
// arrival and departure therefore executes against N+O(1) open bins.
//
// NextFit makes a constant-time decision, so its rungs isolate the
// engine's own bookkeeping (view construction, bin lookup, close). The
// Any Fit rungs (FirstFit, MoveToFront, BestFit) additionally pay the
// policy's inherent O(open) fit scan per arrival, which no engine change
// can remove. scripts/bench_baseline.sh runs this ladder and emits
// BENCH_hotpath.json (schema: docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif
#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace {

using namespace dvbp;

/// `n_open` pinned bins stay open across the whole horizon while
/// `n_churn` short items (size 0.1^d, duration 4) trickle through.
Instance forced_open_instance(std::size_t d, std::size_t n_open,
                              std::size_t n_churn) {
  Instance inst(d);
  const Time t_end = static_cast<Time>(n_churn) + 8.0;
  for (std::size_t i = 0; i < n_open; ++i) {
    inst.add(0.0, t_end, RVec(d, 0.95));
  }
  for (std::size_t j = 0; j < n_churn; ++j) {
    const Time t = 1.0 + static_cast<Time>(j);
    inst.add(t, t + 4.0, RVec(d, 0.1));
  }
  return inst;
}

void BM_SimulateManyOpenBins(benchmark::State& state,
                             const char* policy_name) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(d, n_open, /*n_churn=*/2000);
  PolicyPtr policy = make_policy(policy_name);
  for (auto _ : state) {
    const SimResult r = simulate(inst, *policy);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

#define HOTPATH_LADDER(name)                                            \
  BENCHMARK_CAPTURE(BM_SimulateManyOpenBins, name, #name)               \
      ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}})
HOTPATH_LADDER(NextFit);
HOTPATH_LADDER(FirstFit);
HOTPATH_LADDER(MoveToFront);
HOTPATH_LADDER(BestFit);
#undef HOTPATH_LADDER

void BM_DispatcherManyOpenBins(benchmark::State& state,
                               const char* policy_name) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(d, n_open, /*n_churn=*/2000);
  const auto events = build_event_stream(inst);
  PolicyPtr policy = make_policy(policy_name);
  for (auto _ : state) {
    Dispatcher dispatcher(inst.dim(), *policy);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        benchmark::DoNotOptimize(
            dispatcher.arrive(item.arrival, item.size, item.departure));
      } else {
        dispatcher.depart(ev.time, item.id);
      }
    }
    benchmark::DoNotOptimize(dispatcher.cost_so_far(inst.last_departure()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

BENCHMARK_CAPTURE(BM_DispatcherManyOpenBins, NextFit, "NextFit")
    ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}});
BENCHMARK_CAPTURE(BM_DispatcherManyOpenBins, FirstFit, "FirstFit")
    ->ArgsProduct({{1, 2, 5}, {10, 100, 1000}});

// --- cycles/placement + cache-miss rung ---------------------------------
//
// The ladders above report wall time per simulated instance; this rung
// reports the two numbers the SoA/pool work is judged by: TSC cycles per
// placement decision (whole event loop divided by arrivals) and LLC
// misses per placement. Cache-miss counting needs perf_event_open, which
// many containers deny; in that case the counter reports -1 and only the
// cycle count is meaningful.

#if defined(__x86_64__)
std::uint64_t read_tsc() { return __rdtsc(); }
#else
std::uint64_t read_tsc() { return 0; }
#endif

class CacheMissCounter {
 public:
  CacheMissCounter() {
#if defined(__linux__)
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = PERF_COUNT_HW_CACHE_MISSES;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd_ = static_cast<int>(
        ::syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0));
#endif
  }
  ~CacheMissCounter() {
#if defined(__linux__)
    if (fd_ >= 0) ::close(fd_);
#endif
  }
  bool available() const { return fd_ >= 0; }
  void start() {
#if defined(__linux__)
    if (fd_ >= 0) {
      ::ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
      ::ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
    }
#endif
  }
  std::uint64_t stop() {
#if defined(__linux__)
    if (fd_ >= 0) {
      ::ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t count = 0;
      if (::read(fd_, &count, sizeof(count)) == sizeof(count)) return count;
    }
#endif
    return 0;
  }

 private:
  int fd_ = -1;
};

void BM_PlacementCycles(benchmark::State& state, const char* policy_name) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(d, n_open, /*n_churn=*/2000);
  const auto events = build_event_stream(inst);
  std::uint64_t arrivals_per_iter = 0;
  for (const Event& ev : events) {
    if (ev.kind == EventKind::kArrival) ++arrivals_per_iter;
  }
  PolicyPtr policy = make_policy(policy_name);
  CacheMissCounter misses;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_misses = 0;
  std::uint64_t total_arrivals = 0;
  for (auto _ : state) {
    Dispatcher dispatcher(inst.dim(), *policy);
    misses.start();
    const std::uint64_t t0 = read_tsc();
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        benchmark::DoNotOptimize(
            dispatcher.arrive(item.arrival, item.size, item.departure));
      } else {
        dispatcher.depart(ev.time, item.id);
      }
    }
    total_cycles += read_tsc() - t0;
    total_misses += misses.stop();
    total_arrivals += arrivals_per_iter;
    benchmark::DoNotOptimize(dispatcher.cost_so_far(inst.last_departure()));
  }
  state.counters["cycles_per_placement"] = benchmark::Counter(
      static_cast<double>(total_cycles) / static_cast<double>(total_arrivals));
  state.counters["cache_misses_per_placement"] =
      misses.available()
          ? benchmark::Counter(static_cast<double>(total_misses) /
                               static_cast<double>(total_arrivals))
          : benchmark::Counter(-1.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

BENCHMARK_CAPTURE(BM_PlacementCycles, FirstFit, "FirstFit")
    ->ArgsProduct({{5, 16}, {100, 1000}});
BENCHMARK_CAPTURE(BM_PlacementCycles, BestFit, "BestFit")
    ->ArgsProduct({{5, 16}, {100, 1000}});

}  // namespace

BENCHMARK_MAIN();
