// E11 (extension; Sec. 8 future work): how much is duration information
// worth? Compares the best non-clairvoyant policies against
// MinExtensionFit with exact departures and with log-normally corrupted
// predictions of increasing noise, on the Figure 4 workload.
//
// Flags: --trials=100 --d=2 --mu=10,100 --sigmas=0,0.25,0.5,1.0,2.0 --seed=3
#include <iostream>
#include <sstream>

#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 100));
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const auto mus = args.get_int_list("mu", {10, 100});
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  std::vector<double> sigmas{0.0, 0.25, 0.5, 1.0, 2.0};
  if (args.has("sigmas")) {
    sigmas.clear();
    for (const std::string& tok : args.get_list("sigmas")) {
      sigmas.push_back(std::stod(tok));
    }
  }

  std::vector<std::string> policies{"MoveToFront", "FirstFit",
                                    "DurationClassFit"};
  for (double sigma : sigmas) {
    std::ostringstream os;
    os << "NoisyMinExtensionFit:" << sigma;
    policies.push_back(os.str());
  }

  std::cout << "=== Clairvoyance value study (d=" << d << ", " << trials
            << " trials, cost/LB) ===\n\n";
  harness::Table t([&] {
    std::vector<std::string> hdr{"mu"};
    for (const auto& p : policies) hdr.push_back(p);
    return hdr;
  }());

  for (const auto mu : mus) {
    gen::UniformParams params;
    params.d = d;
    params.mu = mu;
    harness::SweepConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    const auto cells = harness::run_policy_sweep(
        gen::make_generator("uniform", params, seed), policies, cfg);
    std::vector<std::string> row{std::to_string(mu)};
    for (const auto& cell : cells) {
      row.push_back(
          harness::Table::mean_pm(cell.ratio.mean(), cell.ratio.stddev()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout
      << "Reading: two ways to spend duration knowledge. Greedy\n"
         "MinExtensionFit converts it into the best average-case ratios\n"
         "here; DurationClassFit (geometric duration classes + FF within\n"
         "class, the alignment idea behind the clairvoyant worst-case\n"
         "algorithms [27, 2]) actually LOSES to non-clairvoyant MTF on\n"
         "this workload -- strict classification wastes bins that mixing\n"
         "would share. Worst-case-optimal structure is not average-case\n"
         "optimal. sigma=0 is fully clairvoyant (duration known on\n"
         "arrival); increasing sigma degrades the predictions "
         "(multiplicative\nlog-normal error). The gap between sigma=0 and "
         "MoveToFront is the\nvalue of clairvoyance the paper poses as "
         "future work; the sigma\nsweep shows how fast that value decays "
         "with predictor quality.\n";
  return 0;
}
