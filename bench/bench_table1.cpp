// Regenerates Table 1 of the paper: the closed-form lower/upper bounds on
// the competitive ratio of Any Fit / Move To Front / First Fit / Next Fit /
// Best Fit -- and, next to each theoretical lower bound, the ratio actually
// *measured* by simulating the Section 6 adversarial construction that
// proves it (normalized by an offline upper bound on OPT, so the measured
// number is a certified lower bound on the CR).
//
// Flags: --mu=10 --d=2 --k=32 (construction size parameter)
//        --bf-k=40 (Best Fit gadget phases)
#include <iostream>

#include "core/bounds.hpp"
#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/offline_opt.hpp"

namespace {

/// Measured cost(alg)/upper-bound-on-OPT for one adversarial instance.
double measured_ratio(const dvbp::gen::AdversarialInstance& adv,
                      const std::string& policy) {
  const double cost = dvbp::simulate(adv.instance, policy).cost;
  const double opt_ub = dvbp::offline_ffd_cost(adv.instance);
  return cost / opt_ub;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);
  const double mu = args.get_double("mu", 10.0);
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const auto k = static_cast<std::size_t>(args.get_int("k", 32));
  const auto bf_k = static_cast<std::size_t>(args.get_int("bf-k", 40));
  const double dd = static_cast<double>(d);

  std::cout << "=== Table 1 regeneration (mu=" << mu << ", d=" << d
            << ", construction parameter k=" << k << ") ===\n\n";

  using harness::Table;
  Table t({"Algorithm", "LB (d=1)", "UB (d=1)", "LB (d>=1)", "UB (d>=1)",
           "measured CR >= (construction)"});

  // Measured ratios from the Section 6 constructions. Each entry is a
  // certified lower bound on the CR: cost(alg) / (FFD offline upper bound
  // on OPT).
  const auto anyfit = gen::anyfit_lower_bound(k, d, mu);
  const auto nextfit =
      gen::nextfit_lower_bound(k % 2 == 0 ? k : k + 1, d, mu);
  const auto mtf1d = gen::mtf_lower_bound(k, mu);
  const auto bf = gen::bestfit_unbounded(bf_k);

  const double anyfit_measured = measured_ratio(anyfit, "FirstFit");
  const double mtf_thm5 = measured_ratio(anyfit, "MoveToFront");
  const double mtf_thm8 = measured_ratio(mtf1d, "MoveToFront");
  const double ff_measured = anyfit_measured;
  const double nf_measured = measured_ratio(nextfit, "NextFit");
  const double bf_measured = measured_ratio(bf, "BestFit");

  t.add_row({"AnyFit", Table::num(bounds::any_fit_lower(mu, 1)), "inf",
             Table::num(bounds::any_fit_lower(mu, dd)), "inf",
             Table::num(anyfit_measured) + "  (Thm 5, via FirstFit)"});
  t.add_row({"MoveToFront", Table::num(bounds::move_to_front_lower(mu, 1)),
             Table::num(bounds::move_to_front_upper(mu, 1)),
             Table::num(bounds::move_to_front_lower(mu, dd)),
             Table::num(bounds::move_to_front_upper(mu, dd)),
             Table::num(std::max(mtf_thm5, mtf_thm8)) +
                 "  (max of Thm 5 d-D / Thm 8 1-D)"});
  t.add_row({"FirstFit", Table::num(bounds::first_fit_lower(mu, 1)),
             Table::num(bounds::first_fit_upper(mu, 1)),
             Table::num(bounds::first_fit_lower(mu, dd)),
             Table::num(bounds::first_fit_upper(mu, dd)),
             Table::num(ff_measured) + "  (Thm 5)"});
  t.add_row({"NextFit", Table::num(bounds::next_fit_lower(mu, 1)),
             Table::num(bounds::next_fit_upper(mu, 1)),
             Table::num(bounds::next_fit_lower(mu, dd)),
             Table::num(bounds::next_fit_upper(mu, dd)),
             Table::num(nf_measured) + "  (Thm 6)"});
  t.add_row({"BestFit", "inf", "inf", "inf", "inf",
             Table::num(bf_measured) + "  (Thm 7 gadget, k=" +
                 std::to_string(bf_k) + ", grows ~k/3)"});

  std::cout << t.to_aligned_text() << '\n';

  // Convergence: the measured ratios approach the asymptotic lower bounds
  // as the construction parameter grows.
  std::cout << "--- convergence of the constructions (mu=" << mu
            << ", d=" << d << ") ---\n";
  Table conv({"k", "Thm5 (-> " + Table::num(bounds::any_fit_lower(mu, dd), 1) +
                       ")",
              "Thm6 (-> " + Table::num(bounds::next_fit_lower(mu, dd), 1) +
                  ")",
              "Thm8 (-> " + Table::num(2.0 * mu, 1) + ", d=1)"});
  for (std::size_t kk : {4u, 8u, 16u, 32u, 64u}) {
    conv.add_row(
        {std::to_string(kk),
         Table::num(measured_ratio(gen::anyfit_lower_bound(kk, d, mu),
                                   "FirstFit")),
         Table::num(measured_ratio(gen::nextfit_lower_bound(kk, d, mu),
                                   "NextFit")),
         Table::num(
             measured_ratio(gen::mtf_lower_bound(kk, mu), "MoveToFront"))});
  }
  std::cout << conv.to_aligned_text() << '\n';

  std::cout
      << "Notes:\n"
      << "  * Closed forms follow Table 1: AnyFit LB (mu+1)d; MTF in\n"
      << "    [max{2mu,(mu+1)d}, (2mu+1)d+1]; FF in [(mu+1)d, (mu+2)d+1];\n"
      << "    NF in [2mud, 2mud+1]; BF unbounded.\n"
      << "  * Measured columns are finite-k: they approach the LB column\n"
      << "    as k grows (e.g. Thm 5 gives dk(mu+1)/(k+mu+1)).\n"
      << "  * The paper's Table 1 lists asymptotic (k -> inf) values; the\n"
      << "    measured entries certify the constructions actually force\n"
      << "    the claimed behaviour in this implementation.\n";
  return 0;
}
