// Extension bench: how fragile are the Section 6 worst cases? The
// constructions fix an exact arrival order among items that arrive at the
// same instant. This bench randomly permutes the same-time arrival order
// of each gadget and measures the cost ratio distribution of the target
// algorithm: if the worst case only materializes under the adversarial
// order, random tie-breaking is an (informal) defense -- relevant for
// practitioners worried about adversarial request streams.
//
// Flags: --shuffles=50 --k=16 --mu=10 --d=2 --seed=6
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/offline_opt.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

/// Returns `inst` with the order of same-arrival-time items permuted.
Instance shuffle_ties(const Instance& inst, Xoshiro256pp& rng) {
  std::vector<std::size_t> order(inst.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates within each equal-arrival-time block.
  std::size_t block_start = 0;
  for (std::size_t i = 1; i <= order.size(); ++i) {
    if (i == order.size() ||
        inst[order[i]].arrival != inst[order[block_start]].arrival) {
      for (std::size_t j = i - 1; j > block_start; --j) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(block_start),
            static_cast<std::int64_t>(j)));
        std::swap(order[j], order[pick]);
      }
      block_start = i;
    }
  }
  Instance out(inst.dim());
  for (std::size_t idx : order) {
    const Item& r = inst[idx];
    out.add(r.arrival, r.departure, r.size);
  }
  return out;
}

void study(const char* title, const gen::AdversarialInstance& adv,
           const char* policy, std::size_t shuffles, Xoshiro256pp& rng) {
  const double opt_ub = offline_ffd_cost(adv.instance);
  const double adversarial = simulate(adv.instance, policy).cost / opt_ub;
  RunningStats shuffled;
  for (std::size_t s = 0; s < shuffles; ++s) {
    const Instance perm = shuffle_ties(adv.instance, rng);
    shuffled.add(simulate(perm, policy).cost / offline_ffd_cost(perm));
  }
  harness::Table t({"order", "cost/OPT_ub"});
  t.add_row({"adversarial", harness::Table::num(adversarial, 2)});
  t.add_row({"shuffled mean",
             harness::Table::mean_pm(shuffled.mean(), shuffled.stddev())});
  t.add_row({"shuffled min", harness::Table::num(shuffled.min(), 2)});
  t.add_row({"shuffled max", harness::Table::num(shuffled.max(), 2)});
  std::cout << "--- " << title << " (target " << policy << ", " << shuffles
            << " shuffles) ---\n"
            << t.to_aligned_text() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto shuffles =
      static_cast<std::size_t>(args.get_int("shuffles", 50));
  const auto k = static_cast<std::size_t>(args.get_int("k", 16));
  const double mu = args.get_double("mu", 10.0);
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  Xoshiro256pp rng(static_cast<std::uint64_t>(args.get_int("seed", 6)));

  std::cout << "=== Fragility of the Sec. 6 constructions under random "
               "tie-order ===\n\n";

  study("Thm 5 (Any Fit)", gen::anyfit_lower_bound(k, d, mu), "FirstFit",
        shuffles, rng);
  study("Thm 6 (Next Fit)",
        gen::nextfit_lower_bound(k % 2 ? k + 1 : k, d, mu), "NextFit",
        shuffles, rng);
  study("Thm 8 (Move To Front)", gen::mtf_lower_bound(k, mu), "MoveToFront",
        shuffles, rng);
  study("Thm 7 gadget (Best Fit)", gen::bestfit_unbounded(30), "BestFit",
        shuffles, rng);

  std::cout
      << "Reading: the Thm 5 trap collapses almost entirely under random\n"
         "tie order (its dk forced bins need the exact big/small item\n"
         "alternation), while Thm 6 and Thm 8 retain 30-60% of their\n"
         "adversarial ratio -- Next Fit and Move To Front are hurt by the\n"
         "*mixture* of sizes, not only the exact order. The Best Fit\n"
         "gadget spaces its arrivals in time (no ties), so shuffling is a\n"
         "no-op: it is the dangerous kind of worst case that randomized\n"
         "tie-breaking cannot defuse.\n";
  return 0;
}
