// Durability ladder: what journaling costs the placement service, as a
// function of the fsync policy and the shard count. Rungs:
//
//   off       no journal_dir -- the PR-before-persistence baseline
//   none      every op framed + CRC'd + written, never fsync'd
//   interval  background flusher fsyncs every 256 ops (the default)
//   always    fsync on every commit (serial: per op; sharded: per batch)
//
// x shards in {1, 8}, on the full arrive+depart lifecycle stream of the
// forced-open workload from bench_hotpath/bench_sharded (d = 5, 100 pinned
// bins, 2000 churn items). The serial family runs the same stream through
// DurableDispatcher, where commit granularity is one op -- the worst case
// for fsync=always and the honest reference for the "journaling tax" on a
// single placement thread.
//
// Acceptance bar recorded in bench/BENCH_persist.json: fsync=interval at
// 1 shard costs <= 10% throughput vs journaling off.
//
// scripts/bench_baseline.sh --target=persist runs this and emits raw JSON;
// bench/BENCH_persist.json is the curated record (schema there).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "persist/durable.hpp"
#include "persist/journal.hpp"

namespace {

using namespace dvbp;
namespace fs = std::filesystem;

constexpr std::size_t kDim = 5;
constexpr std::size_t kOpen = 100;
constexpr std::size_t kChurn = 2000;

enum class Mode { kOff, kNone, kInterval, kAlways };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kNone: return "none";
    case Mode::kInterval: return "interval";
    case Mode::kAlways: return "always";
  }
  return "?";
}

persist::FsyncPolicy fsync_of(Mode m) {
  switch (m) {
    case Mode::kNone: return persist::FsyncPolicy::kNone;
    case Mode::kAlways: return persist::FsyncPolicy::kAlways;
    default: return persist::FsyncPolicy::kInterval;
  }
}

/// Same shape as bench_hotpath: `n_open` bins pinned open for the whole
/// horizon while `n_churn` small items stream through.
Instance forced_open_instance(std::size_t d, std::size_t n_open,
                              std::size_t n_churn) {
  Instance inst(d);
  const Time t_end = static_cast<Time>(n_churn) + 8.0;
  for (std::size_t i = 0; i < n_open; ++i) {
    inst.add(0.0, t_end, RVec(d, 0.95));
  }
  for (std::size_t j = 0; j < n_churn; ++j) {
    const Time t = 1.0 + static_cast<Time>(j);
    inst.add(t, t + 4.0, RVec(d, 0.1));
  }
  return inst;
}

std::string scratch_dir() {
  return (fs::temp_directory_path() /
          ("dvbp_bench_persist_" +
           std::to_string(static_cast<unsigned>(::getpid()))))
      .string();
}

/// Serial reference: the full lifecycle stream through one
/// DurableDispatcher (commit per op). Mode kOff uses a bare Dispatcher --
/// the exact code path a non-durable deployment runs.
void BM_DurableSerial(benchmark::State& state, Mode mode) {
  const Instance inst = forced_open_instance(kDim, kOpen, kChurn);
  const std::vector<Event> events = build_event_stream(inst);
  const std::string dir = scratch_dir();
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
    if (mode == Mode::kOff) {
      PolicyPtr policy = make_policy("FirstFit");
      Dispatcher dispatcher(inst.dim(), *policy);
      for (const Event& ev : events) {
        const Item& item = inst[ev.item];
        if (ev.kind == EventKind::kArrival) {
          dispatcher.arrive(item.arrival, item.size, item.departure);
        } else {
          dispatcher.depart(ev.time, item.id);
        }
      }
      benchmark::DoNotOptimize(dispatcher.jobs_admitted());
    } else {
      PolicyPtr policy = make_policy("FirstFit");
      persist::DurableOptions options;
      options.dir = dir;
      options.fsync = fsync_of(mode);
      persist::DurableDispatcher durable(inst.dim(), *policy, options);
      for (const Event& ev : events) {
        const Item& item = inst[ev.item];
        if (ev.kind == EventKind::kArrival) {
          durable.arrive(item.arrival, item.size, item.departure);
        } else {
          durable.depart(ev.time, item.id);
        }
      }
      benchmark::DoNotOptimize(durable.next_seq());
    }
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}

/// Headline: arrival throughput of the sharded service with per-shard
/// journals, commit per drained batch. state.range(0) = shard count,
/// state.range(1) = pinned open bins. The heavy open-bins rung is the
/// paper's contended regime -- per-arrival fit scans dominate, which is
/// where the relative journaling tax is operationally meaningful; the
/// 100-bin rung shows the raw tax when placement is nearly free.
void BM_ShardedArrivals(benchmark::State& state, Mode mode) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(kDim, n_open, kChurn);
  const std::string dir = scratch_dir();
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
    cloud::ShardedOptions options;
    options.shards = shards;
    options.router = cloud::RouterKind::kRoundRobin;
    options.queue_capacity = 8192;
    if (mode != Mode::kOff) {
      options.journal_dir = dir;
      options.fsync = fsync_of(mode);
    }
    cloud::ShardedDispatcher service(
        inst.dim(), [](std::size_t) { return make_policy("FirstFit"); },
        options);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const Item& item = inst[i];
      service.arrive(item.arrival, item.size, item.departure);
    }
    service.drain();
    benchmark::DoNotOptimize(service.open_bins());
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

#define REGISTER_SERIAL(mode)                                      \
  benchmark::RegisterBenchmark(                                    \
      (std::string("BM_DurableSerial/") + mode_name(mode)).c_str(), \
      [](benchmark::State& s) { BM_DurableSerial(s, mode); })       \
      ->Unit(benchmark::kMillisecond)

#define REGISTER_SHARDED(mode)                                        \
  benchmark::RegisterBenchmark(                                       \
      (std::string("BM_ShardedArrivals/") + mode_name(mode)).c_str(), \
      [](benchmark::State& s) { BM_ShardedArrivals(s, mode); })       \
      ->Args({1, 100})                                                \
      ->Args({1, 16000})                                              \
      ->Args({8, 100})                                                \
      ->Args({8, 16000})                                              \
      ->Unit(benchmark::kMillisecond)

int register_all() {
  REGISTER_SERIAL(Mode::kOff);
  REGISTER_SERIAL(Mode::kNone);
  REGISTER_SERIAL(Mode::kInterval);
  REGISTER_SERIAL(Mode::kAlways);
  REGISTER_SHARDED(Mode::kOff);
  REGISTER_SHARDED(Mode::kNone);
  REGISTER_SHARDED(Mode::kInterval);
  REGISTER_SHARDED(Mode::kAlways);
  return 0;
}
const int registered = register_all();

}  // namespace

BENCHMARK_MAIN();
