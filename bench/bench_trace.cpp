// Trace data-plane throughput ladder (docs/TRACES.md): how fast can the
// harness move a binary trace from disk into placement decisions?
//
// Three rungs per dimension, all on one synthetic uniform workload that is
// first written to a temp trace file (so every rung measures the real
// mmap-backed format, not an in-memory shortcut):
//   write   TraceWriter::write_instance -- columnar assemble + CRC + fsync
//   ingest  TraceCursor sweep of all 2n events (zero-copy streaming read;
//           the acceptance floor for the d=2 rung is 1M events/s)
//   replay  full streaming replay into a Dispatcher under FirstFit --
//           packed events/s, the end-to-end number
//
// Like bench_net/bench_migration this is not a google-benchmark binary
// (it reports domain throughput), so it emits its own
// {"context":...,"benchmarks":[...]} JSON. Curated record:
// bench/BENCH_trace.json, regenerated via
// scripts/bench_baseline.sh --target=trace.
//
// Flags: --n=500000 --d=2,5 --mu=12 --span=100000 --bin-size=400
//        --policy=FirstFit --seed=7 --out=FILE --smoke
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/policies/registry.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "obs/json.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace {

using namespace dvbp;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Rung {
  std::string name;
  std::string workload;
  std::string rung;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double mb_per_s = 0.0;   // write/ingest: file bytes over wall time
  double cost = 0.0;       // replay only
  std::uint64_t bins = 0;  // replay only
};

void append_rung_json(std::string& out, const Rung& r) {
  using obs::json_number;
  out += "    {\"name\":\"" + r.name + "\"";
  out += ",\"workload\":\"" + r.workload + "\"";
  out += ",\"rung\":\"" + r.rung + "\"";
  out += ",\"events\":" + std::to_string(r.events);
  out += ",\"wall_s\":" + json_number(r.wall_s);
  out += ",\"events_per_s\":" + json_number(r.events_per_s);
  out += ",\"mb_per_s\":" + json_number(r.mb_per_s);
  if (r.rung == "replay") {
    out += ",\"cost\":" + json_number(r.cost);
    out += ",\"bins\":" + std::to_string(r.bins);
  }
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);

  const auto n =
      static_cast<std::size_t>(args.get_int("n", smoke ? 2000 : 500000));
  const std::vector<std::int64_t> dims = args.get_int_list(
      "d", std::vector<std::int64_t>{2, 5});
  const std::int64_t mu = args.get_int("mu", 12);
  // Wide span + large bin-size keep the active set (and so the replay's
  // open-bin count) realistic at n in the hundreds of thousands.
  const std::int64_t span = args.get_int("span", smoke ? 1000 : 100000);
  const std::int64_t bin_size = args.get_int("bin-size", smoke ? 40 : 400);
  const std::string policy_name = args.get("policy", "FirstFit");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string out_path = args.get("out", "");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string trace_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/bench_trace_workload.trc";

  std::vector<Rung> rungs;
  for (const std::int64_t d : dims) {
    const std::string workload = "uniform_d" + std::to_string(d);

    gen::UniformParams params;
    params.n = n;
    params.d = static_cast<std::size_t>(d);
    params.mu = mu;
    params.span = span;
    params.bin_size = bin_size;
    const Instance inst = gen::uniform_instance(params, seed);
    const std::uint64_t events = 2 * static_cast<std::uint64_t>(inst.size());

    // write
    auto start = std::chrono::steady_clock::now();
    trace::TraceWriter::write_instance(inst, trace_path);
    double wall = seconds_since(start);
    trace::TraceReader reader(trace_path);
    const double mb = static_cast<double>(reader.file_bytes()) / 1e6;
    rungs.push_back({workload + "/write", workload, "write", events, wall,
                     static_cast<double>(events) / wall, mb / wall, 0.0, 0});

    // ingest: pure streaming sweep; fold the timestamps into a sink so the
    // loop cannot be optimized away.
    trace::TraceCursor cursor(reader);
    trace::TraceEvent ev;
    double sink = 0.0;
    start = std::chrono::steady_clock::now();
    while (cursor.next(ev)) sink += ev.time;
    wall = seconds_since(start);
    if (sink < 0.0) std::cerr << "";  // keep `sink` observable
    rungs.push_back({workload + "/ingest", workload, "ingest", events, wall,
                     static_cast<double>(events) / wall, mb / wall, 0.0, 0});

    // replay
    const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
    start = std::chrono::steady_clock::now();
    const trace::ReplayResult res = trace::replay_trace(reader, *policy);
    wall = seconds_since(start);
    rungs.push_back({workload + "/replay/" + policy_name, workload, "replay",
                     events, wall, static_cast<double>(events) / wall, 0.0,
                     res.cost, static_cast<std::uint64_t>(res.bins_opened)});

    for (std::size_t i = rungs.size() - 3; i < rungs.size(); ++i) {
      std::cout << rungs[i].name << ": " << rungs[i].events << " events in "
                << rungs[i].wall_s << "s = " << rungs[i].events_per_s
                << " events/s" << std::endl;
    }
  }
  std::remove(trace_path.c_str());

  std::string json = "{\n  \"context\": {";
  json += "\"bench\":\"trace\"";
  json += ",\"n\":" + std::to_string(n);
  json += ",\"mu\":" + std::to_string(mu);
  json += ",\"span\":" + std::to_string(span);
  json += ",\"bin_size\":" + std::to_string(bin_size);
  json += ",\"policy\":\"" + policy_name + "\"";
  json += ",\"seed\":" + std::to_string(seed);
  json += ",\"smoke\":" + std::string(smoke ? "true" : "false");
  json += "},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    append_rung_json(json, rungs[i]);
    if (i + 1 < rungs.size()) json += ",";
    json += "\n";
  }
  json += "  ]\n}\n";

  if (!out_path.empty()) {
    harness::require_writable_file("--out", out_path);
    std::ofstream out(out_path);
    out << json;
    std::cout << "wrote " << out_path << std::endl;
  } else {
    std::cout << json;
  }
  return 0;
}
