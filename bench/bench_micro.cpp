// Google-benchmark microbenchmarks: simulation throughput per policy,
// lower-bound computation, the exact VBP solver, and core data-structure
// operations. Engineering benchmarks (no paper counterpart): they track
// the cost of the machinery that the experiment harness runs millions of
// times.
#include <benchmark/benchmark.h>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/vbp_exact.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

gen::UniformParams bench_params(std::size_t d, std::int64_t mu) {
  gen::UniformParams p;
  p.d = d;
  p.n = 1000;
  p.mu = mu;
  p.span = 1000;
  p.bin_size = 100;
  return p;
}

void BM_SimulatePolicy(benchmark::State& state, const char* policy_name) {
  const Instance inst =
      gen::uniform_instance(bench_params(2, 10), /*seed=*/42);
  PolicyPtr policy = make_policy(policy_name);
  for (auto _ : state) {
    const SimResult r = simulate(inst, *policy);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

BENCHMARK_CAPTURE(BM_SimulatePolicy, MoveToFront, "MoveToFront");
BENCHMARK_CAPTURE(BM_SimulatePolicy, FirstFit, "FirstFit");
BENCHMARK_CAPTURE(BM_SimulatePolicy, BestFit, "BestFit");
BENCHMARK_CAPTURE(BM_SimulatePolicy, NextFit, "NextFit");
BENCHMARK_CAPTURE(BM_SimulatePolicy, WorstFit, "WorstFit");

// Observer overhead ladder. "None" is the baseline hot path (observer
// pointer null); the other rungs add, in order, metric updates, an
// inactive (null-sink) tracer, and full record formatting into a ring.
// The acceptance bar is Metrics/NullTrace within a few percent of None.
enum class ObsMode { kNone, kMetrics, kNullTrace, kRingTrace };

void BM_SimulateObserved(benchmark::State& state, ObsMode mode) {
  const Instance inst =
      gen::uniform_instance(bench_params(2, 10), /*seed=*/42);
  PolicyPtr policy = make_policy("FirstFit");
  obs::MetricRegistry registry;
  std::unique_ptr<obs::Tracer> tracer;
  if (mode == ObsMode::kNullTrace) {
    tracer = std::make_unique<obs::Tracer>(std::make_shared<obs::NullSink>());
  } else if (mode == ObsMode::kRingTrace) {
    tracer = std::make_unique<obs::Tracer>(
        std::make_shared<obs::RingBufferSink>(/*capacity=*/1024));
  }
  std::unique_ptr<obs::Observer> observer;
  if (mode != ObsMode::kNone) {
    observer = std::make_unique<obs::Observer>(&registry, tracer.get());
  }
  SimOptions opts;
  opts.observer = observer.get();
  for (auto _ : state) {
    const SimResult r = simulate(inst, *policy, opts);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK_CAPTURE(BM_SimulateObserved, None, ObsMode::kNone);
BENCHMARK_CAPTURE(BM_SimulateObserved, Metrics, ObsMode::kMetrics);
BENCHMARK_CAPTURE(BM_SimulateObserved, NullTrace, ObsMode::kNullTrace);
BENCHMARK_CAPTURE(BM_SimulateObserved, RingTrace, ObsMode::kRingTrace);

void BM_SimulateDimensionScaling(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Instance inst = gen::uniform_instance(bench_params(d, 10), 42);
  PolicyPtr policy = make_policy("FirstFit");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(inst, *policy).cost);
  }
}
BENCHMARK(BM_SimulateDimensionScaling)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_SimulateMuScaling(benchmark::State& state) {
  // Larger mu -> more simultaneously-open bins -> slower arrivals.
  const Instance inst =
      gen::uniform_instance(bench_params(2, state.range(0)), 42);
  PolicyPtr policy = make_policy("FirstFit");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(inst, *policy).cost);
  }
}
BENCHMARK(BM_SimulateMuScaling)->Arg(1)->Arg(10)->Arg(100)->Arg(200);

void BM_LowerBoundHeight(benchmark::State& state) {
  const Instance inst = gen::uniform_instance(bench_params(5, 100), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb_height(inst));
  }
}
BENCHMARK(BM_LowerBoundHeight);

void BM_VbpExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256pp rng(7);
  std::vector<RVec> sizes;
  for (std::size_t i = 0; i < n; ++i) {
    sizes.push_back(RVec{rng.uniform(0.1, 0.6), rng.uniform(0.1, 0.6)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vbp_min_bins(sizes).bins);
  }
}
BENCHMARK(BM_VbpExact)->Arg(8)->Arg(12)->Arg(16);

void BM_RVecFitsWith(benchmark::State& state) {
  const RVec load(5, 0.3);
  const RVec add(5, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(load.fits_with(add));
  }
}
BENCHMARK(BM_RVecFitsWith);

void BM_DispatcherStream(benchmark::State& state) {
  // Live-API overhead: replaying the same workload through the streaming
  // Dispatcher instead of the batch simulator.
  const Instance inst =
      gen::uniform_instance(bench_params(2, 10), /*seed=*/42);
  const auto events = build_event_stream(inst);
  PolicyPtr policy = make_policy("MoveToFront");
  for (auto _ : state) {
    Dispatcher dispatcher(inst.dim(), *policy);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        benchmark::DoNotOptimize(
            dispatcher.arrive(item.arrival, item.size, item.departure));
      } else {
        dispatcher.depart(ev.time, item.id);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_DispatcherStream);

void BM_UniformGenerate(benchmark::State& state) {
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::uniform_instance(bench_params(2, 10), 42, trial++).size());
  }
}
BENCHMARK(BM_UniformGenerate);

}  // namespace

BENCHMARK_MAIN();
