// Sharded-service ladder: aggregate arrival throughput of the concurrent
// placement service (src/cloud/sharded_dispatcher.hpp) as a function of the
// shard count, on the same forced-open workload as bench_hotpath at the
// paper's top dimension (d = 5). With N bins pinned open, a FirstFit
// arrival pays an O(open-bins-on-its-shard) fit scan; round-robin spreads
// the pinned bins evenly, so K shards cut every scan to N/K and run the
// scans concurrently. The ladder quantifies the combined effect (shards in
// {1, 2, 4, 8} x pinned bins in {100, 1000}).
//
// The headline family feeds arrivals only, in arrival order, from one
// producer thread: that isolates the service's placement capacity (what
// "aggregate arrival throughput" means) from producer-side scheduling
// noise, and keeps the offered stream identical on every rung. The
// Lifecycle family replays the full arrive+depart event stream instead;
// departures carry no fit scan, so the speedup it shows is diluted by the
// fixed per-op queue cost -- both numbers are recorded in
// bench/BENCH_sharded.json.
//
// scripts/bench_baseline.sh --target=sharded runs this and emits raw JSON;
// bench/BENCH_sharded.json is the curated record (schema there).
#include <benchmark/benchmark.h>

#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"

namespace {

using namespace dvbp;

constexpr std::size_t kDim = 5;
constexpr std::size_t kChurn = 2000;

/// Same shape as bench_hotpath: `n_open` bins pinned open for the whole
/// horizon (0.95-size items, nothing else fits beside them) while
/// `n_churn` small items (size 0.1, duration 4) stream through.
Instance forced_open_instance(std::size_t d, std::size_t n_open,
                              std::size_t n_churn) {
  Instance inst(d);
  const Time t_end = static_cast<Time>(n_churn) + 8.0;
  for (std::size_t i = 0; i < n_open; ++i) {
    inst.add(0.0, t_end, RVec(d, 0.95));
  }
  for (std::size_t j = 0; j < n_churn; ++j) {
    const Time t = 1.0 + static_cast<Time>(j);
    inst.add(t, t + 4.0, RVec(d, 0.1));
  }
  return inst;
}

cloud::ShardedOptions options_for(std::size_t shards) {
  cloud::ShardedOptions options;
  options.shards = shards;
  options.router = cloud::RouterKind::kRoundRobin;
  // Larger than any rung's op count: the rungs compare placement capacity,
  // not backpressure behavior.
  options.queue_capacity = 8192;
  return options;
}

/// Headline: arrivals only, one producer, items/s == arrivals/s.
void BM_ShardedArrivals(benchmark::State& state, const char* policy_name) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(kDim, n_open, kChurn);
  const cloud::ShardedOptions options = options_for(shards);
  for (auto _ : state) {
    cloud::ShardedDispatcher service(
        inst.dim(),
        [&](std::size_t) { return make_policy(policy_name); }, options);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const Item& item = inst[i];
      service.arrive(item.arrival, item.size, item.departure);
    }
    service.drain();
    benchmark::DoNotOptimize(service.open_bins());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

/// Full lifecycle: the arrive+depart event stream in time order. Twice the
/// ops per item, and departures never scan, so the shard speedup here is a
/// lower bound on the headline number.
void BM_ShardedLifecycle(benchmark::State& state, const char* policy_name) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto n_open = static_cast<std::size_t>(state.range(1));
  const Instance inst = forced_open_instance(kDim, n_open, kChurn);
  const auto events = build_event_stream(inst);
  const cloud::ShardedOptions options = options_for(shards);
  std::vector<JobId> job_of_item(inst.size());
  for (auto _ : state) {
    cloud::ShardedDispatcher service(
        inst.dim(),
        [&](std::size_t) { return make_policy(policy_name); }, options);
    for (const Event& ev : events) {
      if (ev.kind == EventKind::kArrival) {
        const Item& item = inst[ev.item];
        job_of_item[ev.item] =
            service.arrive(item.arrival, item.size, item.departure);
      } else {
        service.depart(ev.time, job_of_item[ev.item]);
      }
    }
    service.drain();
    benchmark::DoNotOptimize(service.open_bins());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}

BENCHMARK_CAPTURE(BM_ShardedArrivals, FirstFit, "FirstFit")
    ->ArgsProduct({{1, 2, 4, 8}, {100, 1000}})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ShardedArrivals, MoveToFront, "MoveToFront")
    ->ArgsProduct({{1, 2, 4, 8}, {100, 1000}})
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ShardedLifecycle, FirstFit, "FirstFit")
    ->ArgsProduct({{1, 2, 4, 8}, {100, 1000}})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
