// Bounded-migration cost ladder (docs/MIGRATION.md): how much of the gap
// between the online no-repack cost and the offline bounds does a
// per-departure migration budget buy back?
//
// For each workload x policy, runs the live Dispatcher + Rebalancer at
// budgets {0, 1, 4, inf} migrations/event and reports achieved cost next
// to two anchors computed on the same instance:
//   * norepack_cost -- opt::offline_norepack, the clairvoyant one-bin-per-
//     item baseline (what no amount of cleverness without migration beats);
//   * lb_best       -- max of the Lemma 1 lower bounds LB1-LB3 on OPT.
// Budget 0 is the unmodified online engine; budget inf shows the headroom
// of this rebalancer (close-nearly-empty-bins) alone. The curated record
// lives in bench/BENCH_migration.json, regenerated via
// scripts/bench_baseline.sh --target=migration.
//
// Like bench_net this is not a google-benchmark binary (it reports costs,
// not wall time), so it emits its own {"context":...,"benchmarks":[...]}
// JSON.
//
// Flags: --n=2000 --d=2,5 --mu=12 --span=1000 --bin-size=100 --trials=3
//        --seed=7 --policies=FirstFit,BestFit --budgets=0,1,4,inf
//        --max-survivors=4 --out=FILE --smoke
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "gen/uniform.hpp"
#include "harness/cli.hpp"
#include "obs/json.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_norepack.hpp"

namespace {

using namespace dvbp;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

double parse_budget(const std::string& token) {
  if (token == "inf" || token == "unlimited") {
    return MigrationConfig::kUnlimited;
  }
  return std::stod(token);
}

std::string budget_label(double budget) {
  if (budget == MigrationConfig::kUnlimited) return "inf";
  return std::to_string(static_cast<long long>(budget));
}

struct RunOutcome {
  double cost = 0.0;
  std::uint64_t migrations = 0;
  double migrated_volume = 0.0;
  std::uint64_t bins_closed = 0;
};

/// One online run with the rebalancer attached after every departure.
RunOutcome run_with_budget(const Instance& inst,
                           const std::string& policy_name,
                           const MigrationConfig& config) {
  const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  Dispatcher dispatcher(inst.dim(), *policy);
  Rebalancer rebalancer(dispatcher, config);
  const std::vector<Event> events = build_event_stream(inst);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      job_of_item[ev.item] =
          dispatcher.arrive(item.arrival, item.size, item.departure).job;
    } else {
      dispatcher.depart(ev.time, job_of_item[ev.item]);
      rebalancer.on_departure(ev.time);
    }
  }
  const MigrationStats& stats = rebalancer.stats();
  RunOutcome out;
  out.cost = dispatcher.cost_so_far(dispatcher.last_event_time());
  out.migrations = stats.migrations;
  out.migrated_volume = stats.migrated_volume;
  out.bins_closed = stats.bins_closed;
  return out;
}

struct Rung {
  std::string workload;
  std::string policy;
  std::string budget;
  RunOutcome mean;           // averaged over trials
  double norepack_cost = 0.0;
  double lb_best = 0.0;
};

void append_rung_json(std::string& out, const Rung& r) {
  using obs::json_number;
  out += "    {\"name\":\"" + r.workload + "/" + r.policy + "/b" +
         r.budget + "\"";
  out += ",\"workload\":\"" + r.workload + "\"";
  out += ",\"policy\":\"" + r.policy + "\"";
  out += ",\"budget\":\"" + r.budget + "\"";
  out += ",\"cost\":" + json_number(r.mean.cost);
  out += ",\"migrations\":" + json_number(
             static_cast<double>(r.mean.migrations));
  out += ",\"migrated_volume\":" + json_number(r.mean.migrated_volume);
  out += ",\"bins_closed_by_migration\":" + json_number(
             static_cast<double>(r.mean.bins_closed));
  out += ",\"norepack_cost\":" + json_number(r.norepack_cost);
  out += ",\"lb_best\":" + json_number(r.lb_best);
  out += ",\"cost_over_lb\":" + json_number(
             r.lb_best > 0.0 ? r.mean.cost / r.lb_best : 0.0);
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);

  // The norepack anchor's local search is O(n^2 * bins) per sweep, so the
  // default instance is moderate; the online runs themselves scale to far
  // larger n (see bench_hotpath).
  const auto n =
      static_cast<std::size_t>(args.get_int("n", smoke ? 150 : 400));
  const std::vector<std::int64_t> dims = args.get_int_list(
      "d", smoke ? std::vector<std::int64_t>{2}
                 : std::vector<std::int64_t>{2, 5});
  const std::int64_t mu = args.get_int("mu", 12);
  const std::int64_t span = args.get_int("span", 1000);
  const std::int64_t bin_size = args.get_int("bin-size", 100);
  const auto trials =
      static_cast<std::size_t>(args.get_int("trials", smoke ? 1 : 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto max_survivors =
      static_cast<std::size_t>(args.get_int("max-survivors", 4));
  std::vector<std::string> policies = args.get_list("policies");
  if (policies.empty()) policies = {"FirstFit", "BestFit"};
  std::vector<std::string> budget_tokens = args.get_list("budgets");
  if (budget_tokens.empty()) budget_tokens = {"0", "1", "4", "inf"};
  const std::string out_path = args.get("out", "");

  std::vector<Rung> rungs;
  for (const std::int64_t d : dims) {
    const std::string workload = "uniform_d" + std::to_string(d);
    // Offline anchors and online runs are averaged over the same trials.
    std::vector<Instance> instances;
    double norepack_cost = 0.0;
    double lb_best = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      gen::UniformParams params;
      params.n = n;
      params.d = static_cast<std::size_t>(d);
      params.mu = mu;
      params.span = span;
      params.bin_size = bin_size;
      instances.push_back(gen::uniform_instance(params, seed + t));
      NoRepackOptions nopts;
      if (smoke) {
        nopts.max_sweeps = 5;
        nopts.restarts = 0;
      }
      norepack_cost += offline_norepack(instances.back(), nopts).cost;
      lb_best += lower_bounds(instances.back()).best();
    }
    norepack_cost /= static_cast<double>(trials);
    lb_best /= static_cast<double>(trials);

    for (const std::string& policy : policies) {
      for (const std::string& token : budget_tokens) {
        MigrationConfig config;
        config.migrations_per_event = parse_budget(token);
        config.max_survivors = max_survivors;
        Rung rung;
        rung.workload = workload;
        rung.policy = policy;
        rung.budget = budget_label(config.migrations_per_event);
        for (const Instance& inst : instances) {
          const RunOutcome one = run_with_budget(inst, policy, config);
          rung.mean.cost += one.cost;
          rung.mean.migrations += one.migrations;
          rung.mean.migrated_volume += one.migrated_volume;
          rung.mean.bins_closed += one.bins_closed;
        }
        rung.mean.cost /= static_cast<double>(trials);
        rung.mean.migrations /= trials;
        rung.mean.migrated_volume /= static_cast<double>(trials);
        rung.mean.bins_closed /= trials;
        rung.norepack_cost = norepack_cost;
        rung.lb_best = lb_best;
        std::cout << rung.workload << "/" << rung.policy << " budget="
                  << rung.budget << ": cost=" << rung.mean.cost
                  << " migrations=" << rung.mean.migrations
                  << " (norepack=" << norepack_cost << ", lb=" << lb_best
                  << ")" << std::endl;
        rungs.push_back(rung);
      }
    }
  }

  std::string json = "{\n  \"context\": {";
  json += "\"bench\":\"migration\"";
  json += ",\"n\":" + std::to_string(n);
  json += ",\"mu\":" + std::to_string(mu);
  json += ",\"trials\":" + std::to_string(trials);
  json += ",\"seed\":" + std::to_string(seed);
  json += ",\"max_survivors\":" + std::to_string(max_survivors);
  json += ",\"smoke\":" + std::string(smoke ? "true" : "false");
  json += "},\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    append_rung_json(json, rungs[i]);
    if (i + 1 < rungs.size()) json += ",";
    json += "\n";
  }
  json += "  ]\n}\n";

  if (!out_path.empty()) {
    harness::require_writable_file("--out", out_path);
    std::ofstream out(out_path);
    out << json;
    std::cout << "wrote " << out_path << std::endl;
  } else {
    std::cout << json;
  }
  return 0;
}
