// Extension bench: sensitivity of the Figure 4 ranking to the workload
// envelope. The paper fixes n=1000, T=1000, B=100; this bench sweeps the
// load factor (n/T) and the size granularity B to check that the
// recommendation ("use Move To Front") is not an artifact of one operating
// point, and re-runs the grid on the non-uniform trace extensions.
//
// Flags: --trials=60 --d=2 --mu=10 --seed=4
#include <iostream>

#include "gen/registry.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

namespace {

using namespace dvbp;

void sweep_block(const char* title, const std::vector<std::string>& policies,
                 const std::vector<std::pair<std::string,
                                             gen::UniformParams>>& cells,
                 const std::string& generator, std::size_t trials,
                 std::uint64_t seed) {
  std::cout << "--- " << title << " (generator=" << generator << ", "
            << trials << " trials) ---\n";
  harness::Table t([&] {
    std::vector<std::string> hdr{"cell"};
    for (const auto& p : policies) hdr.push_back(p);
    return hdr;
  }());
  for (const auto& [label, params] : cells) {
    harness::SweepConfig cfg;
    cfg.trials = trials;
    cfg.seed = seed;
    const auto stats = harness::run_policy_sweep(
        gen::make_generator(generator, params, seed), policies, cfg);
    std::vector<std::string> row{label};
    for (const auto& cell : stats) {
      row.push_back(
          harness::Table::mean_pm(cell.ratio.mean(), cell.ratio.stddev()));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_aligned_text() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 60));
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const auto mu = args.get_int("mu", 10);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));

  const std::vector<std::string> policies{"MoveToFront", "FirstFit",
                                          "BestFit",     "NextFit",
                                          "WorstFit",    "HarmonicFit"};

  std::cout << "=== Sensitivity study around the Table 2 operating point "
               "(d=" << d << ", mu=" << mu << ") ===\n\n";

  gen::UniformParams base;
  base.d = d;
  base.mu = mu;

  // Load factor: n/T from sparse to dense.
  std::vector<std::pair<std::string, gen::UniformParams>> load_cells;
  for (const auto& [n, t] : std::vector<std::pair<std::size_t,
                                                  std::int64_t>>{
           {250, 1000}, {1000, 1000}, {4000, 1000}, {1000, 250}}) {
    gen::UniformParams p = base;
    p.n = n;
    p.span = t;
    load_cells.push_back({"n=" + std::to_string(n) +
                              ",T=" + std::to_string(t),
                          p});
  }
  sweep_block("load factor n/T", policies, load_cells, "uniform", trials,
              seed);

  // Size granularity B.
  std::vector<std::pair<std::string, gen::UniformParams>> gran_cells;
  for (std::int64_t b : {2, 10, 100, 1000}) {
    gen::UniformParams p = base;
    p.bin_size = b;
    gran_cells.push_back({"B=" + std::to_string(b), p});
  }
  sweep_block("size granularity B", policies, gran_cells, "uniform", trials,
              seed);

  // Distributional shape: the trace extensions at the Table 2 point.
  std::vector<std::pair<std::string, gen::UniformParams>> shape_cells{
      {"n=1000,T=1000", base}};
  for (const char* g : {"zipf", "bursty", "correlated", "diurnal"}) {
    sweep_block("distribution shape", policies, shape_cells, g, trials,
                seed);
  }

  std::cout << "Reading: if MoveToFront stays in the top group in every\n"
               "row, the paper's recommendation is robust to the operating\n"
               "point; NextFit's gap should widen with density and mu.\n";
  return 0;
}
