#!/usr/bin/env bash
# Runs a benchmark ladder and emits its google-benchmark JSON -- the repo's
# performance trajectory. Targets:
#   hotpath  bench/bench_hotpath.cpp, per-event engine cost
#            (curated record: bench/BENCH_hotpath.json, docs/PERFORMANCE.md)
#   sharded  bench/bench_sharded.cpp, aggregate arrival throughput of the
#            sharded placement service
#            (curated record: bench/BENCH_sharded.json, docs/ARCHITECTURE.md)
#   persist  bench/bench_persist.cpp, journaling/fsync overhead ladder for
#            the durable dispatcher and the sharded service
#            (curated record: bench/BENCH_persist.json, docs/DURABILITY.md)
#   net      bench/bench_net.cpp, loopback client/server throughput and
#            latency tail of the binary-RPC placement server; emits its
#            own JSON (not google-benchmark), so --repetitions does not
#            apply (curated record: bench/BENCH_net.json, docs/PROTOCOL.md)
#   migration bench/bench_migration.cpp, achieved cost at migration
#            budgets {0,1,4,inf} vs the offline no-repack baseline and
#            the Lemma 1 lower bounds; emits its own JSON, --repetitions
#            does not apply (curated record: bench/BENCH_migration.json,
#            docs/MIGRATION.md)
# Re-run after any engine or service change and compare against the
# committed record.
#
# Usage: scripts/bench_baseline.sh
#          [--target=hotpath|sharded|persist|net|migration]
#                                  [--smoke]
#                                  [--build-dir=DIR] [--out=FILE]
#                                  [--repetitions=N]
#   --target       which ladder to run (default: hotpath)
#   --smoke        tiny min_time; exercises every rung so the binaries
#                  cannot bit-rot (used by the Release CI job), numbers
#                  meaningless
#   --build-dir    cmake build tree containing the bench binaries
#                  (default: build)
#   --out          output JSON path (default: BENCH_<target>.json in cwd)
#   --repetitions  run each rung N times and emit min/median/mean/stddev
#                  aggregates; curated records use the medians (the boxes
#                  this runs on are shared, so single-run means are noisy)
set -euo pipefail

build_dir=build
out=""
smoke=0
target=hotpath
repetitions=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    --target=*) target="${arg#*=}" ;;
    --build-dir=*) build_dir="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --repetitions=*) repetitions="${arg#*=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

case "$target" in
  hotpath|sharded|persist|net|migration) ;;
  *) echo "unknown target: $target" \
          "(hotpath|sharded|persist|net|migration)" >&2
     exit 2 ;;
esac
[[ -n "$out" ]] || out="BENCH_${target}.json"

bench="$build_dir/bench/bench_$target"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable;" \
       "build the 'bench_$target' target first" >&2
  exit 1
fi

# bench_net and bench_migration speak the harness CLI and write their
# own JSON.
if [[ "$target" == net || "$target" == migration ]]; then
  args=(--out="$out")
  if [[ "$smoke" == 1 ]]; then
    args+=(--smoke)
  fi
  "$bench" "${args[@]}" > /dev/null
  echo "wrote $out"
  exit 0
fi

args=(--benchmark_format=json
      --benchmark_out="$out"
      --benchmark_out_format=json)
if [[ "$smoke" == 1 ]]; then
  args+=(--benchmark_min_time=0.01)
fi
if [[ "$repetitions" -gt 0 ]]; then
  args+=(--benchmark_repetitions="$repetitions")
fi

"$bench" "${args[@]}" > /dev/null
echo "wrote $out"
