#!/usr/bin/env bash
# Runs a benchmark ladder and emits its google-benchmark JSON -- the repo's
# performance trajectory. Targets:
#   hotpath  bench/bench_hotpath.cpp, per-event engine cost
#            (curated record: bench/BENCH_hotpath.json, docs/PERFORMANCE.md)
#   sharded  bench/bench_sharded.cpp, aggregate arrival throughput of the
#            sharded placement service
#            (curated record: bench/BENCH_sharded.json, docs/ARCHITECTURE.md)
#   persist  bench/bench_persist.cpp, journaling/fsync overhead ladder for
#            the durable dispatcher and the sharded service
#            (curated record: bench/BENCH_persist.json, docs/DURABILITY.md)
#   net      bench/bench_net.cpp, loopback client/server throughput and
#            latency tail of the binary-RPC placement server; emits its
#            own JSON (not google-benchmark), so --repetitions does not
#            apply (curated record: bench/BENCH_net.json, docs/PROTOCOL.md)
#   migration bench/bench_migration.cpp, achieved cost at migration
#            budgets {0,1,4,inf} vs the offline no-repack baseline and
#            the Lemma 1 lower bounds; emits its own JSON, --repetitions
#            does not apply (curated record: bench/BENCH_migration.json,
#            docs/MIGRATION.md)
#   trace    bench/bench_trace.cpp, trace data-plane throughput ladder
#            (write / streaming ingest / streaming replay, d in {2,5});
#            emits its own JSON, --repetitions does not apply (curated
#            record: bench/BENCH_trace.json, docs/TRACES.md)
# Re-run after any engine or service change and compare against the
# committed record.
#
# Usage: scripts/bench_baseline.sh
#          [--target=hotpath|sharded|persist|net|migration|trace]
#                                  [--smoke]
#                                  [--build-dir=DIR] [--out=FILE]
#                                  [--repetitions=N] [--merge[=FILE]]
#   --target       which ladder to run (default: hotpath)
#   --smoke        tiny min_time; exercises every rung so the binaries
#                  cannot bit-rot (used by the Release CI job), numbers
#                  meaningless
#   --build-dir    cmake build tree containing the bench binaries
#                  (default: build)
#   --out          output JSON path (default: BENCH_<target>.json in cwd)
#   --repetitions  run each rung N times and emit min/median/mean/stddev
#                  aggregates; curated records use the medians (the boxes
#                  this runs on are shared, so single-run means are noisy)
#   --merge[=FILE] hotpath only: fold the run's BM_PlacementCycles medians
#                  into the curated record (default bench/BENCH_hotpath.json)
#                  as new "after" values in its "cycles" section. The merge
#                  is schema-versioned: a v1 record is upgraded to
#                  dvbp-bench-hotpath/2 by appending the section; the v1
#                  "benchmarks" medians are never rewritten. Requires
#                  python3 and --repetitions (medians).
set -euo pipefail

build_dir=build
out=""
smoke=0
target=hotpath
repetitions=0
merge=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    --target=*) target="${arg#*=}" ;;
    --build-dir=*) build_dir="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    --repetitions=*) repetitions="${arg#*=}" ;;
    --merge) merge="bench/BENCH_hotpath.json" ;;
    --merge=*) merge="${arg#*=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ -n "$merge" && "$target" != hotpath ]]; then
  echo "error: --merge only applies to --target=hotpath" >&2
  exit 2
fi
if [[ -n "$merge" && "$repetitions" -le 0 ]]; then
  echo "error: --merge needs --repetitions (curated records use medians)" >&2
  exit 2
fi

case "$target" in
  hotpath|sharded|persist|net|migration|trace) ;;
  *) echo "unknown target: $target" \
          "(hotpath|sharded|persist|net|migration|trace)" >&2
     exit 2 ;;
esac
[[ -n "$out" ]] || out="BENCH_${target}.json"

bench="$build_dir/bench/bench_$target"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable;" \
       "build the 'bench_$target' target first" >&2
  exit 1
fi

# bench_net, bench_migration, and bench_trace speak the harness CLI and
# write their own JSON.
if [[ "$target" == net || "$target" == migration || "$target" == trace ]];
then
  args=(--out="$out")
  if [[ "$smoke" == 1 ]]; then
    args+=(--smoke)
  fi
  "$bench" "${args[@]}" > /dev/null
  echo "wrote $out"
  exit 0
fi

args=(--benchmark_format=json
      --benchmark_out="$out"
      --benchmark_out_format=json)
if [[ "$smoke" == 1 ]]; then
  args+=(--benchmark_min_time=0.01)
fi
if [[ "$repetitions" -gt 0 ]]; then
  args+=(--benchmark_repetitions="$repetitions")
fi

"$bench" "${args[@]}" > /dev/null
echo "wrote $out"

if [[ -n "$merge" ]]; then
  python3 - "$out" "$merge" <<'PYEOF'
# Folds BM_PlacementCycles medians from a raw google-benchmark JSON into
# the curated hotpath record's "cycles" section. Append-only with respect
# to the v1 data: the "benchmarks" (real_time) medians are carried over
# byte-for-byte; only cycles entries matching this run are updated (their
# previous "after" becomes the entry's "before" when absent).
import json
import sys

raw_path, rec_path = sys.argv[1], sys.argv[2]

medians = {}
for b in json.load(open(raw_path))["benchmarks"]:
    if b.get("name", "").endswith("_median") and \
       b["run_name"].startswith("BM_PlacementCycles/"):
        medians[b["run_name"]] = (b["cycles_per_placement"],
                                  b["cache_misses_per_placement"])
if not medians:
    sys.exit("no BM_PlacementCycles medians in " + raw_path)

rec = json.load(open(rec_path))
schema = rec.get("schema", "")
if schema == "dvbp-bench-hotpath/1":
    rec["schema"] = "dvbp-bench-hotpath/2"
    rec["cycles"] = {"description": "cycles/placement medians "
                     "(BM_PlacementCycles); see docs/PERFORMANCE.md.",
                     "entries": []}
elif schema != "dvbp-bench-hotpath/2":
    sys.exit("unknown schema %r in %s; refusing to merge" %
             (schema, rec_path))

by_name = {e["name"]: e for e in rec["cycles"]["entries"]}
for name, (cycles, misses) in sorted(medians.items()):
    policy, d, n_open = name.split("/")[1:]
    entry = by_name.get(name)
    if entry is None:
        entry = {"name": name, "fixture": "BM_PlacementCycles",
                 "policy": policy, "d": int(d),
                 "forced_open_bins": int(n_open),
                 "before_cycles_per_placement": round(cycles, 1)}
        rec["cycles"]["entries"].append(entry)
    entry["after_cycles_per_placement"] = round(cycles, 1)
    entry["speedup"] = round(
        entry["before_cycles_per_placement"] / cycles, 2)
    entry["cache_misses_per_placement"] = misses

with open(rec_path, "w") as f:
    json.dump(rec, f, indent=2)
    f.write("\n")
print("merged %d cycles medians into %s" % (len(medians), rec_path))
PYEOF
fi
