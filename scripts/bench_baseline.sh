#!/usr/bin/env bash
# Runs the hot-path benchmark ladder (bench/bench_hotpath.cpp) and emits
# its google-benchmark JSON as BENCH_hotpath.json, the repo's per-event
# performance trajectory (schema: docs/PERFORMANCE.md). Re-run after any
# engine change and compare against the committed bench/BENCH_hotpath.json
# before/after record.
#
# Usage: scripts/bench_baseline.sh [--smoke] [--build-dir=DIR] [--out=FILE]
#   --smoke      tiny min_time; exercises every rung so the binaries cannot
#                bit-rot (used by the Release CI job), numbers meaningless
#   --build-dir  cmake build tree containing bench/bench_hotpath
#                (default: build)
#   --out        output JSON path (default: BENCH_hotpath.json in the cwd)
set -euo pipefail

build_dir=build
out=BENCH_hotpath.json
smoke=0
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    --build-dir=*) build_dir="${arg#*=}" ;;
    --out=*) out="${arg#*=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

bench="$build_dir/bench/bench_hotpath"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not found or not executable;" \
       "build the 'bench_hotpath' target first" >&2
  exit 1
fi

args=(--benchmark_format=json
      --benchmark_out="$out"
      --benchmark_out_format=json)
if [[ "$smoke" == 1 ]]; then
  args+=(--benchmark_min_time=0.01)
fi

"$bench" "${args[@]}" > /dev/null
echo "wrote $out"
