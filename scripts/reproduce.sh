#!/usr/bin/env bash
# Full reproduction pipeline: build, test, and regenerate every experiment.
# Usage: scripts/reproduce.sh [--paper]   (--paper uses 1000 trials for
# Figure 4, matching the paper's setting, instead of the 200-trial default)
set -euo pipefail
cd "$(dirname "$0")/.."

TRIALS=200
if [[ "${1:-}" == "--paper" ]]; then
  TRIALS=1000
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "==================== experiments ===================="
./build/bench/bench_table1
./build/bench/bench_fig4 --trials="${TRIALS}" --print-params
./build/bench/bench_bounds
./build/bench/bench_ablation
./build/bench/bench_clairvoyant
./build/bench/bench_augmentation
./build/bench/bench_sensitivity
./build/bench/bench_timeline
./build/bench/bench_micro
