# Gnuplot script regenerating the Figure 4 panels from bench_fig4 CSV.
#
#   ./build/bench/bench_fig4 --trials=1000 --csv > fig4.csv
#   gnuplot -e "csv='fig4.csv'" scripts/plot_fig4.gp
#
# Produces fig4_d<1|2|5>.png: mean cost/LB vs mu per algorithm, one panel
# per dimension (log-x like the paper's mu range 1..200).
if (!exists("csv")) csv = "fig4.csv"

set datafile separator ","
set key outside right
set xlabel "mu (max item duration)"
set ylabel "cost / LB_{height}"
set logscale x
set grid
set term pngcairo size 900,600

do for [dval in "1 2 5"] {
    set output sprintf("fig4_d%s.png", dval)
    set title sprintf("Average-case performance, d = %s", dval)
    plot for [alg in "MoveToFront FirstFit BestFit NextFit LastFit RandomFit WorstFit"] \
        csv using (column(2) == dval+0 && strcol(4) eq alg ? column(3) : 1/0):5 \
        with linespoints title alg
}
