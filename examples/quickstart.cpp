// Quickstart: build a tiny DVBP instance by hand, run the four headline
// Any Fit algorithms on it, and compare against the exact offline optimum.
//
//   $ ./example_quickstart
#include <iostream>

#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"

int main() {
  using namespace dvbp;

  // Five jobs with 2-dimensional demands (say, CPU and memory fractions).
  // Bins (servers) have unit capacity per dimension.
  Instance inst(2);
  inst.add(/*arrival=*/0.0, /*departure=*/4.0, RVec{0.5, 0.3});
  inst.add(0.0, 2.0, RVec{0.5, 0.6});
  inst.add(1.0, 3.0, RVec{0.4, 0.5});
  inst.add(2.0, 6.0, RVec{0.3, 0.3});
  inst.add(3.0, 6.0, RVec{0.6, 0.2});

  std::cout << "Instance: " << inst << ", span=" << inst.span()
            << ", mu=" << inst.mu() << "\n\n";

  for (const std::string& name : standard_policy_names()) {
    const SimResult result = simulate(inst, name);
    std::cout << name << ": cost=" << result.cost
              << " bins=" << result.bins_opened
              << " peak-open=" << result.max_open_bins << '\n';
  }

  const LowerBounds lbs = lower_bounds(inst);
  std::cout << "\nLower bounds on OPT (Lemma 1): height=" << lbs.height
            << " utilization=" << lbs.utilization << " span=" << lbs.span
            << '\n';

  const OfflineOptResult opt = offline_opt(inst);
  std::cout << "Exact offline OPT (eq. 2): " << opt.cost
            << (opt.exact ? "" : " (node limit hit; upper bound)") << '\n';
  return 0;
}
