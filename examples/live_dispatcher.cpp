// Live dispatch: drives the streaming Dispatcher API the way an actual
// service would -- jobs arrive one at a time with *unknown* departures,
// each is placed immediately, and the running rental cost is metered.
// Runs Move To Front and Next Fit side by side on the identical stream so
// the cost gap is directly visible as it accumulates.
//
//   $ ./example_live_dispatcher [--jobs=5000] [--seed=21]
#include <iostream>
#include <queue>

#include "core/dispatcher.hpp"
#include "core/policies/registry.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

struct PendingDeparture {
  Time when;
  JobId mtf_job;
  JobId nf_job;
  bool operator>(const PendingDeparture& other) const {
    return when > other.when;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 5000));
  Xoshiro256pp rng(static_cast<std::uint64_t>(args.get_int("seed", 21)));

  PolicyPtr mtf = make_policy("MoveToFront");
  PolicyPtr nf = make_policy("NextFit");
  Dispatcher mtf_dispatcher(2, *mtf);
  Dispatcher nf_dispatcher(2, *nf);

  std::priority_queue<PendingDeparture, std::vector<PendingDeparture>,
                      std::greater<>>
      departures;

  std::cout << "=== Live dispatch of " << jobs
            << " jobs (departures unknown at placement) ===\n\n";
  harness::Table progress({"t", "active", "MTF open", "NF open",
                           "MTF cost", "NF cost"});

  Time now = 0.0;
  const std::size_t report_every = jobs / 8 + 1;
  for (std::size_t j = 0; j < jobs; ++j) {
    now += rng.uniform(0.0, 0.5);  // inter-arrival gap
    // Drain departures due before this arrival -- the service only learns
    // a job is over when it actually ends.
    while (!departures.empty() && departures.top().when <= now) {
      const auto dep = departures.top();
      departures.pop();
      mtf_dispatcher.depart(dep.when, dep.mtf_job);
      nf_dispatcher.depart(dep.when, dep.nf_job);
    }
    const RVec size{0.05 + 0.45 * rng.uniform(), 0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 30.0 * rng.uniform() * rng.uniform();
    const auto a = mtf_dispatcher.arrive(now, size);
    const auto b = nf_dispatcher.arrive(now, size);
    departures.push({now + duration, a.job, b.job});

    if (j % report_every == 0) {
      progress.add_row({harness::Table::num(now, 1),
                        std::to_string(mtf_dispatcher.jobs_active()),
                        std::to_string(mtf_dispatcher.open_bins()),
                        std::to_string(nf_dispatcher.open_bins()),
                        harness::Table::num(
                            mtf_dispatcher.cost_so_far(now), 0),
                        harness::Table::num(nf_dispatcher.cost_so_far(now),
                                            0)});
    }
  }
  while (!departures.empty()) {
    const auto dep = departures.top();
    departures.pop();
    now = std::max(now, dep.when);
    mtf_dispatcher.depart(dep.when, dep.mtf_job);
    nf_dispatcher.depart(dep.when, dep.nf_job);
  }

  std::cout << progress.to_aligned_text() << '\n';
  const double mtf_cost = mtf_dispatcher.cost_so_far(now);
  const double nf_cost = nf_dispatcher.cost_so_far(now);
  std::cout << "Final: MoveToFront cost="
            << harness::Table::num(mtf_cost, 0) << " ("
            << mtf_dispatcher.bins_opened() << " servers), NextFit cost="
            << harness::Table::num(nf_cost, 0) << " ("
            << nf_dispatcher.bins_opened() << " servers) -> MTF saves "
            << harness::Table::num(100.0 * (nf_cost - mtf_cost) / nf_cost, 1)
            << "%\n";
  return 0;
}
