// Live dispatch: drives the streaming Dispatcher API the way an actual
// service would -- jobs arrive one at a time with *unknown* departures,
// each is placed immediately, and the running rental cost is metered.
// Runs Move To Front and Next Fit side by side on the identical stream so
// the cost gap is directly visible as it accumulates. The MTF dispatcher
// carries an obs::Observer, so the progress table doubles as a periodic
// telemetry snapshot (placement throughput, open bins, fit failures) --
// the live-service monitoring story of docs/OBSERVABILITY.md.
//
// With --shards=K the same stream is pushed from several producer threads
// into the sharded placement service (src/cloud/sharded_dispatcher.hpp)
// instead, demonstrating the concurrent ingestion path: aggregate cost,
// per-shard breakdown, and wall-clock arrival throughput.
//
// With --journal-dir=DIR the serial stream instead runs through the
// durable dispatcher (src/persist/durable.hpp): every op is journaled,
// checkpoints land every --checkpoint-every ops, and --crash-after=N kills
// the service after N ops -- mid-stream, no shutdown, no flush -- then
// recovers from disk and finishes the run, demonstrating the crash-safety
// story of docs/DURABILITY.md end to end.
//
// With --listen=PORT / --connect=HOST:PORT the demo splits across a real
// socket (src/net/): the listener runs the sharded service behind the
// binary-RPC PlacementServer (add --journal-dir=DIR for durability), the
// connector pushes the same deterministic stream through a net::Client
// with reconnect-retry. kill -9 the listener mid-stream, restart it with
// the same --journal-dir, and the connector rides through: it reconnects,
// retries RETRY_LATER, and tolerates UNKNOWN_JOB for departures whose
// arrival fell into the un-fsynced tail the crash threw away.
//
//   $ ./example_live_dispatcher [--jobs=5000] [--seed=21]
//   $ ./example_live_dispatcher --shards=4 [--producers=4] [--router=rendezvous]
//   $ ./example_live_dispatcher --journal-dir=/tmp/wal --crash-after=3000
//   $ ./example_live_dispatcher --listen=7411 --journal-dir=/tmp/wal
//   $ ./example_live_dispatcher --connect=127.0.0.1:7411 --jobs=20000
#include <chrono>
#include <csignal>
#include <deque>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/policies/registry.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "persist/durable.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

struct PendingDeparture {
  Time when;
  JobId mtf_job;
  JobId nf_job;
  bool operator>(const PendingDeparture& other) const {
    return when > other.when;
  }
};

/// One producer's closed arrival/departure loop against the shared service.
void push_stream(cloud::ShardedDispatcher& service, std::uint64_t seed,
                 std::size_t jobs) {
  Xoshiro256pp rng(seed);
  Time now = 0.0;
  struct Pending {
    Time when;
    JobId job;
  };
  std::deque<Pending> pending;
  for (std::size_t j = 0; j < jobs; ++j) {
    now += rng.uniform(0.0, 0.5);
    while (!pending.empty() && pending.front().when <= now) {
      service.depart(pending.front().when, pending.front().job);
      pending.pop_front();
    }
    const RVec size{0.05 + 0.45 * rng.uniform(), 0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 30.0 * rng.uniform() * rng.uniform();
    const JobId job = service.arrive(now, size);
    const Time when = std::max(now + duration,
                               pending.empty() ? 0.0 : pending.back().when);
    pending.push_back({when, job});
  }
  for (const Pending& p : pending) service.depart(p.when, p.job);
}

/// --shards=K: multi-producer ingestion through the sharded service.
int run_sharded(const harness::Args& args) {
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 4));
  const auto producers =
      static_cast<std::size_t>(args.get_int("producers", 4));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 5000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));

  obs::MetricRegistry registry;
  cloud::ShardedOptions options;
  options.shards = shards;
  options.router = cloud::parse_router(args.get("router", "rendezvous"));
  options.metrics = &registry;
  cloud::ShardedDispatcher service(
      2, [](std::size_t) { return make_policy("MoveToFront"); }, options);

  std::cout << "=== Sharded dispatch: " << producers << " producers x "
            << jobs / producers << " jobs -> " << shards << " shards ("
            << cloud::router_name(service.router()) << ") ===\n\n";

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&service, seed, p, jobs, producers] {
      push_stream(service, seed + 1000 * p, jobs / producers);
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  harness::Table per_shard({"shard", "jobs", "bins", "p50 latency (us)"});
  for (std::size_t s = 0; s < shards; ++s) {
    per_shard.add_row(
        {std::to_string(s), std::to_string(service.shard_jobs_admitted(s)),
         std::to_string(service.shard_bins_opened(s)),
         harness::Table::num(
             registry
                 .histogram("dvbp.shard." + std::to_string(s) +
                            ".placement_latency_ns")
                 .quantile(0.5) / 1e3,
             1)});
  }
  std::cout << per_shard.to_aligned_text() << '\n';

  const Packing merged = service.snapshot();
  std::cout << "Placed " << service.jobs_admitted() << " jobs in "
            << merged.num_bins() << " bins; aggregate cost="
            << harness::Table::num(merged.cost(), 0) << "\n"
            << "Ingest wall time " << harness::Table::num(wall.count() * 1e3, 1)
            << " ms -> "
            << harness::Table::num(
                   static_cast<double>(service.jobs_admitted()) / wall.count(),
                   0)
            << " arrivals/s\n";
  return 0;
}

/// --listen=PORT: the server half of the cross-socket demo. SIGTERM (or a
/// client's Drain RPC) winds it down gracefully; kill -9 plus
/// --journal-dir demonstrates crash recovery across restarts.
int run_listen(const harness::Args& args) {
  const auto port = static_cast<std::uint16_t>(args.get_int("listen", 0));
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 4));

  obs::MetricRegistry registry;
  cloud::ShardedOptions options;
  options.shards = shards;
  options.router = cloud::parse_router(args.get("router", "round-robin"));
  options.metrics = &registry;
  options.journal_dir = args.get("journal-dir", "");
  options.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 512));
  cloud::ShardedDispatcher service(
      2, [](std::size_t) { return make_policy("MoveToFront"); }, options);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto& report = service.shard_recovery(s);
    if (report.last_seq > 0 || report.had_checkpoint) {
      std::cout << "shard " << s << ": recovered " << report.last_seq
                << " ops from disk"
                << (report.torn_tail ? " (torn tail dropped)" : "") << "\n";
    }
  }

  net::ServerOptions sopts;
  sopts.port = port;
  sopts.metrics = &registry;
  net::PlacementServer server(service, sopts);
  server.install_signal_drain(SIGTERM);
  server.install_signal_drain(SIGINT);
  std::cout << "listening on 127.0.0.1:" << server.port()
            << " (" << shards << " shards"
            << (options.journal_dir.empty()
                    ? std::string(", no journal")
                    : ", journal " + options.journal_dir)
            << "); SIGTERM or a Drain RPC stops it" << std::endl;
  server.wait();

  service.drain();
  const Packing merged = service.snapshot();
  std::cout << "drained: jobs=" << service.jobs_admitted()
            << " bins=" << merged.num_bins() << " cost="
            << harness::Table::num(merged.cost(), 0) << "\n";
  return 0;
}

/// --connect=HOST:PORT: the client half -- the push_stream loop over a
/// real socket, with reconnect-retry so a listener crash (or restart) is
/// survived rather than fatal.
int run_connect(const harness::Args& args) {
  const std::string target = args.get("connect", "");
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--connect expects HOST:PORT\n";
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoul(target.substr(colon + 1)));
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 5000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  const bool drain_at_end = args.get_bool("drain", false);

  std::uint64_t ok = 0, retried = 0, unknown = 0, reconnects = 0;
  std::unique_ptr<net::Client> client;
  const auto ensure_connected = [&] {
    while (client == nullptr) {
      try {
        client = std::make_unique<net::Client>(host, port);
      } catch (const net::NetError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
    }
  };
  // Issues one op until a terminal status; rides through connection loss
  // and RETRY_LATER. Returns the response of the terminal attempt.
  const auto issue = [&](const std::function<net::Response()>& op) {
    while (true) {
      ensure_connected();
      try {
        const net::Response resp = op();
        if (resp.status == net::Status::kRetryLater ||
            resp.status == net::Status::kShuttingDown) {
          ++retried;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        return resp;
      } catch (const net::NetError&) {
        client.reset();  // listener gone; reconnect and re-issue
        ++reconnects;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      } catch (const net::FrameError&) {
        client.reset();
        ++reconnects;
      }
    }
  };

  std::cout << "=== Streaming " << jobs << " jobs to " << host << ":" << port
            << " (reconnect-retry on) ===\n";
  Xoshiro256pp rng(seed);
  Time now = 0.0;
  std::deque<std::pair<Time, std::uint64_t>> pending;  // when, server job id
  for (std::size_t j = 0; j < jobs; ++j) {
    now += rng.uniform(0.0, 0.5);
    while (!pending.empty() && pending.front().first <= now) {
      const auto [when, job] = pending.front();
      pending.pop_front();
      const net::Response resp =
          issue([&] { return client->depart(when, job); });
      if (resp.status == net::Status::kOk) {
        ++ok;
      } else if (resp.status == net::Status::kUnknownJob) {
        // The arrival sat in the un-fsynced journal tail when the listener
        // died: the job never survived the crash. Expected; tolerated.
        ++unknown;
      }
    }
    const RVec size{0.05 + 0.45 * rng.uniform(), 0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 30.0 * rng.uniform() * rng.uniform();
    const net::Response resp =
        issue([&] { return client->arrive(now, size); });
    if (resp.status == net::Status::kOk) {
      ++ok;
      const Time when = std::max(now + duration,
                                 pending.empty() ? 0.0 : pending.back().first);
      pending.push_back({when, resp.job});
    }
  }
  for (const auto& [when, job] : pending) {
    const net::Response resp =
        issue([&] { return client->depart(when, job); });
    if (resp.status == net::Status::kOk) {
      ++ok;
    } else if (resp.status == net::Status::kUnknownJob) {
      ++unknown;
    }
  }

  std::cout << "done: ok=" << ok << " retried=" << retried
            << " unknown_job=" << unknown << " reconnects=" << reconnects
            << "\n";
  if (drain_at_end) {
    const net::Response resp = issue([&] { return client->drain(); });
    if (resp.status == net::Status::kOk) {
      std::cout << "drain: packing_hash=" << resp.packing_hash
                << " bins=" << resp.num_bins << " cost="
                << harness::Table::num(resp.cost, 0) << "\n";
    }
  }
  return 0;
}

/// One op of the deterministic synthetic stream used by the durable demo.
struct StreamOp {
  bool is_arrival;
  Time time;
  RVec size;        // arrivals only
  Time departure;   // arrivals only: the (known here) end time
  JobId job;        // departs only: serial job id (== arrival index)
};

/// The same closed arrival/departure loop as the live demo, materialized
/// up front so a crashed run can be resumed from any surviving prefix:
/// op k is identical on every run with the same seed.
std::vector<StreamOp> durable_stream(std::uint64_t seed, std::size_t jobs) {
  Xoshiro256pp rng(seed);
  std::vector<StreamOp> ops;
  ops.reserve(2 * jobs);
  std::deque<std::pair<Time, JobId>> pending;
  Time now = 0.0;
  JobId next_job = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    now += rng.uniform(0.0, 0.5);
    while (!pending.empty() && pending.front().first <= now) {
      ops.push_back({false, pending.front().first, RVec(), 0.0,
                     pending.front().second});
      pending.pop_front();
    }
    const RVec size{0.05 + 0.45 * rng.uniform(), 0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 30.0 * rng.uniform() * rng.uniform();
    const Time when = std::max(now + duration,
                               pending.empty() ? 0.0 : pending.back().first);
    ops.push_back({true, now, size, when, next_job});
    pending.push_back({when, next_job});
    ++next_job;
  }
  for (const auto& [when, job] : pending) {
    ops.push_back({false, when, RVec(), 0.0, job});
  }
  return ops;
}

void apply_stream(persist::DurableDispatcher& durable,
                  const std::vector<StreamOp>& ops, std::size_t first,
                  std::size_t last) {
  for (std::size_t k = first; k < last; ++k) {
    const StreamOp& op = ops[k];
    if (op.is_arrival) {
      durable.arrive(op.time, op.size, op.departure);
    } else {
      durable.depart(op.time, op.job);
    }
  }
}

/// --journal-dir: journaled run, optionally killed after --crash-after ops
/// and recovered from disk.
int run_durable(const harness::Args& args) {
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 5000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  const auto crash_after =
      static_cast<std::size_t>(args.get_int("crash-after", 0));
  persist::DurableOptions options;
  options.dir = args.get("journal-dir", "");
  options.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 512));
  const std::vector<StreamOp> ops = durable_stream(seed, jobs);
  const std::size_t crash_at =
      crash_after > 0 ? std::min(crash_after, ops.size()) : ops.size();

  std::cout << "=== Durable dispatch: " << ops.size() << " ops -> "
            << options.dir << " (checkpoint every "
            << options.checkpoint_every << " ops) ===\n\n";

  {
    PolicyPtr policy = make_policy("MoveToFront");
    persist::DurableDispatcher durable(2, *policy, options);
    if (durable.recovery().last_seq > 0 || durable.recovery().had_checkpoint) {
      std::cout << "(journal dir was not empty: recovered "
                << durable.recovery().last_seq << " ops before starting)\n";
    }
    apply_stream(durable, ops, durable.recovery().last_seq, crash_at);
    if (crash_at == ops.size()) {
      std::cout << "Run complete without a crash: cost="
                << harness::Table::num(
                       durable.dispatcher().cost_so_far(
                           durable.dispatcher().last_event_time()), 0)
                << ", servers=" << durable.dispatcher().bins_opened()
                << ", journaled seq=" << durable.next_seq() - 1 << "\n";
      return 0;
    }
    std::cout << "... simulated crash after op " << crash_at
              << " (no shutdown, no flush; journal left as-is)\n\n";
    // Scope exit abandons the dispatcher exactly as a dead process would:
    // whatever commit() already wrote is on disk, nothing else is.
  }

  PolicyPtr policy = make_policy("MoveToFront");
  persist::DurableDispatcher recovered(2, *policy, options);
  const persist::RecoveryReport& report = recovered.recovery();
  harness::Table table({"recovered from", "checkpoint seq", "replayed ops",
                        "last seq", "torn tail"});
  table.add_row({report.had_checkpoint ? "checkpoint+journal" : "journal",
                 std::to_string(report.checkpoint_seq),
                 std::to_string(report.replayed_ops),
                 std::to_string(report.last_seq),
                 report.torn_tail ? "yes" : "no"});
  std::cout << table.to_aligned_text() << '\n';

  const std::size_t resume_from = report.last_seq;
  apply_stream(recovered, ops, resume_from, ops.size());
  std::cout << "Resumed at op " << resume_from << " and finished: cost="
            << harness::Table::num(
                   recovered.dispatcher().cost_so_far(
                       recovered.dispatcher().last_event_time()), 0)
            << ", servers=" << recovered.dispatcher().bins_opened()
            << ", journaled seq=" << recovered.next_seq() - 1 << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  if (args.has("listen")) return run_listen(args);
  if (args.has("connect")) return run_connect(args);
  if (args.has("shards")) return run_sharded(args);
  if (!args.get("journal-dir", "").empty()) return run_durable(args);
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 5000));
  Xoshiro256pp rng(static_cast<std::uint64_t>(args.get_int("seed", 21)));

  PolicyPtr mtf = make_policy("MoveToFront");
  PolicyPtr nf = make_policy("NextFit");
  dvbp::obs::MetricRegistry registry;
  dvbp::obs::Observer observer(&registry);
  Dispatcher mtf_dispatcher(2, *mtf, 1.0, &observer);
  Dispatcher nf_dispatcher(2, *nf);

  const dvbp::obs::Counter& placements =
      registry.counter("dvbp.alloc.placements_total");
  const dvbp::obs::Counter& fit_failures =
      registry.counter("dvbp.alloc.fit_failures_total");
  const dvbp::obs::Gauge& open_bins = registry.gauge("dvbp.alloc.open_bins");

  std::priority_queue<PendingDeparture, std::vector<PendingDeparture>,
                      std::greater<>>
      departures;

  std::cout << "=== Live dispatch of " << jobs
            << " jobs (departures unknown at placement) ===\n\n";
  harness::Table progress({"t", "active", "MTF open", "NF open", "MTF cost",
                           "NF cost", "plc/s", "fit-fail"});

  Time now = 0.0;
  const std::size_t report_every = jobs / 8 + 1;
  auto last_wall = std::chrono::steady_clock::now();
  std::uint64_t last_placements = 0;
  for (std::size_t j = 0; j < jobs; ++j) {
    now += rng.uniform(0.0, 0.5);  // inter-arrival gap
    // Drain departures due before this arrival -- the service only learns
    // a job is over when it actually ends.
    while (!departures.empty() && departures.top().when <= now) {
      const auto dep = departures.top();
      departures.pop();
      mtf_dispatcher.depart(dep.when, dep.mtf_job);
      nf_dispatcher.depart(dep.when, dep.nf_job);
    }
    const RVec size{0.05 + 0.45 * rng.uniform(), 0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 30.0 * rng.uniform() * rng.uniform();
    const auto a = mtf_dispatcher.arrive(now, size);
    const auto b = nf_dispatcher.arrive(now, size);
    departures.push({now + duration, a.job, b.job});

    if (j % report_every == 0) {
      // Periodic telemetry snapshot from the registry: placement
      // throughput (wall clock), live open-bin gauge, fit failures.
      const auto wall = std::chrono::steady_clock::now();
      const double secs =
          std::chrono::duration<double>(wall - last_wall).count();
      const std::uint64_t placed = placements.value();
      const double rate =
          secs > 0.0 ? static_cast<double>(placed - last_placements) / secs
                     : 0.0;
      last_wall = wall;
      last_placements = placed;
      progress.add_row({harness::Table::num(now, 1),
                        std::to_string(mtf_dispatcher.jobs_active()),
                        harness::Table::num(open_bins.value(), 0),
                        std::to_string(nf_dispatcher.open_bins()),
                        harness::Table::num(
                            mtf_dispatcher.cost_so_far(now), 0),
                        harness::Table::num(nf_dispatcher.cost_so_far(now),
                                            0),
                        harness::Table::num(rate, 0),
                        std::to_string(fit_failures.value())});
    }
  }
  while (!departures.empty()) {
    const auto dep = departures.top();
    departures.pop();
    now = std::max(now, dep.when);
    mtf_dispatcher.depart(dep.when, dep.mtf_job);
    nf_dispatcher.depart(dep.when, dep.nf_job);
  }

  std::cout << progress.to_aligned_text() << '\n';
  const double mtf_cost = mtf_dispatcher.cost_so_far(now);
  const double nf_cost = nf_dispatcher.cost_so_far(now);
  std::cout << "Final: MoveToFront cost="
            << harness::Table::num(mtf_cost, 0) << " ("
            << mtf_dispatcher.bins_opened() << " servers), NextFit cost="
            << harness::Table::num(nf_cost, 0) << " ("
            << nf_dispatcher.bins_opened() << " servers) -> MTF saves "
            << harness::Table::num(100.0 * (nf_cost - mtf_cost) / nf_cost, 1)
            << "%\n";
  std::cout << "\nMTF telemetry (dvbp.alloc.*): placements="
            << placements.value() << ", fit_failures=" << fit_failures.value()
            << ", bins_opened="
            << registry.counter("dvbp.alloc.bins_opened_total").value()
            << ", decision p99="
            << harness::Table::num(
                   registry.histogram("dvbp.alloc.decision_latency_ns")
                       .quantile(0.99),
                   0)
            << "ns\n";
  return 0;
}
