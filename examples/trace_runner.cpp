// Trace runner: the operational entry point for users with their own
// workload. Reads a CSV trace (arrival,departure,s_0,...,s_{d-1}; '#'
// comments), runs a set of policies, and reports costs, bin counts, the
// Lemma 1 floor, and -- for small traces -- the exact offline optimum.
//
//   $ ./example_trace_runner my_trace.csv [--policies=MoveToFront,FirstFit]
//   $ ./example_trace_runner --demo          # run on a built-in demo trace
//   $ ./example_trace_runner --demo --gantt=out.csv   # export the
//     MoveToFront packing as a Gantt CSV (kind,bin,item,start,end)
#include <fstream>
#include <iostream>

#include "core/instance_stats.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"

namespace {

constexpr const char* kDemoTrace =
    "# demo: 2-dimensional jobs (cpu, mem)\n"
    "0,40,0.50,0.30\n"
    "0,25,0.50,0.60\n"
    "5,30,0.40,0.50\n"
    "10,60,0.30,0.30\n"
    "12,35,0.60,0.20\n"
    "20,55,0.25,0.45\n"
    "30,70,0.70,0.10\n"
    "42,80,0.20,0.20\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dvbp;
  const harness::Args args(argc, argv);

  Instance inst;
  if (args.get_bool("demo") || args.positional().empty()) {
    if (args.positional().empty() && !args.get_bool("demo")) {
      std::cerr << "usage: example_trace_runner <trace.csv> "
                   "[--policies=A,B,...] [--opt]\n"
                   "       example_trace_runner --demo\n"
                   "running the built-in demo trace.\n\n";
    }
    inst = Instance::from_csv_string(kDemoTrace);
  } else {
    std::ifstream file(args.positional().front());
    if (!file) {
      std::cerr << "error: cannot open '" << args.positional().front()
                << "'\n";
      return 1;
    }
    inst = Instance::from_csv(file);
  }
  if (inst.empty()) {
    std::cerr << "error: empty trace\n";
    return 1;
  }

  std::vector<std::string> policies = standard_policy_names();
  if (args.has("policies")) policies = args.get_list("policies");

  std::cout << "Trace: n=" << inst.size() << " d=" << inst.dim()
            << " span=" << inst.span() << " mu=" << inst.mu() << "\n\n";
  if (args.get_bool("profile")) {
    std::cout << analyze(inst).report() << '\n';
  }

  const LowerBounds lbs = lower_bounds(inst);
  harness::Table t({"policy", "cost", "cost/LB", "bins", "peak open"});
  for (const std::string& name : policies) {
    const SimResult r = simulate(inst, name, {.audit = true});
    t.add_row({name, harness::Table::num(r.cost, 2),
               harness::Table::num(r.cost / lbs.best(), 3),
               std::to_string(r.bins_opened),
               std::to_string(r.max_open_bins)});
    if (name == policies.front() && args.has("gantt")) {
      std::ofstream gantt(args.get("gantt", ""));
      gantt << r.packing.to_gantt_csv(inst);
      std::cout << "(wrote " << name << " packing Gantt to "
                << args.get("gantt", "") << ")\n";
    }
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout << "Lemma 1 lower bounds on OPT: height="
            << harness::Table::num(lbs.height, 2)
            << " utilization=" << harness::Table::num(lbs.utilization, 2)
            << " span=" << harness::Table::num(lbs.span, 2) << '\n';

  if (args.get_bool("opt", inst.size() <= 60)) {
    const auto opt = offline_opt(inst);
    std::cout << "Exact offline OPT (eq. 2): "
              << harness::Table::num(opt.cost, 2)
              << (opt.exact ? "" : " (node limit; upper bound)")
              << "  [" << opt.segments << " segments, peak "
              << opt.max_active << " active items]\n";
  } else {
    std::cout << "(pass --opt to force the exact offline optimum on large "
                 "traces)\n";
  }
  return 0;
}
