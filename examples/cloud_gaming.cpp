// Cloud gaming scenario (paper Sec. 1): a gaming service rents GPU servers
// from a public cloud and dispatches play sessions to them online. Session
// durations are unknown when a player connects (non-clairvoyant); demands
// are multi-dimensional (GPU, CPU, bandwidth). The service pays per server
// usage time, so the dispatch policy directly sets the monthly bill.
//
//   $ ./example_cloud_gaming [--sessions=2000] [--seed=7] [--hours=mu]
#include <cmath>
#include <iostream>

#include "cloud/billing.hpp"
#include "cloud/cluster.hpp"
#include "core/policies/registry.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

// Synthesizes a day of play sessions: arrivals cluster in the evening,
// session lengths are heavy-tailed (most players stop quickly, some play
// for hours), and each game title has its own GPU/CPU/bandwidth profile.
std::vector<cloud::Job> make_sessions(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  // Demand profiles per title: {GPU%, vCPU, Mbps}.
  const RVec profiles[] = {
      RVec{25.0, 2.0, 15.0},  // casual title
      RVec{50.0, 4.0, 30.0},  // AAA title
      RVec{100.0, 8.0, 50.0},  // 4K streaming tier
  };
  std::vector<cloud::Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Arrivals over a 24h day (minutes), biased toward the evening peak.
    const double u = rng.uniform();
    const double hour = (u < 0.6) ? rng.uniform(17.0, 23.0)   // evening
                                  : rng.uniform(0.0, 24.0);   // background
    const Time arrival = hour * 60.0;
    // Session length: log-normal-ish, 5 minutes to ~4 hours.
    double minutes = 5.0 + 25.0 * std::exp(rng.normal(0.0, 1.0));
    if (minutes > 240.0) minutes = 240.0;
    const auto& profile =
        profiles[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    jobs.push_back({"session-" + std::to_string(i), arrival,
                    arrival + minutes, profile});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("sessions", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // One rented server type: 4 GPUs (400%), 32 vCPU, 250 Mbps uplink.
  cloud::ServerSpec spec;
  spec.name = "gpu.4x";
  spec.resource_names = {"GPU%", "vCPU", "Mbps"};
  spec.capacity = RVec{400.0, 32.0, 250.0};

  const std::vector<cloud::Job> sessions = make_sessions(n, seed);
  // Pay-as-you-go: $3.80 per started hour (60 simulated minutes).
  const cloud::QuantizedBilling billing(/*quantum=*/60.0,
                                        /*rate_per_quantum=*/3.80);

  std::cout << "=== Cloud gaming dispatch: " << n << " sessions onto "
            << spec.name << " servers ===\n\n";

  harness::Table t({"policy", "servers rented", "peak concurrent",
                    "usage (server-min)", "bill ($)", "utilization"});
  double worst_bill = 0.0;
  double best_bill = 1e18;
  for (const std::string& name : standard_policy_names()) {
    PolicyPtr policy = make_policy(name, seed);
    const cloud::ClusterReport report =
        cloud::run_cluster(spec, sessions, *policy, billing);
    t.add_row({name, std::to_string(report.servers_rented),
               std::to_string(report.peak_concurrent),
               harness::Table::num(report.total_usage_time, 0),
               harness::Table::num(report.total_bill, 2),
               harness::Table::num(report.avg_utilization, 3)});
    worst_bill = std::max(worst_bill, report.total_bill);
    best_bill = std::min(best_bill, report.total_bill);
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout << "Choosing the best policy over the worst saves "
            << harness::Table::num(
                   100.0 * (worst_bill - best_bill) / worst_bill, 1)
            << "% of the daily rental bill.\n"
            << "(Paper Sec. 7 recommendation: Move To Front.)\n";
  return 0;
}
