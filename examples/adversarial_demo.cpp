// Walk-through of the Section 6 adversarial constructions: builds each
// lower-bound instance, runs the targeted algorithm and its peers on it,
// and prints the resulting cost ratios next to the theory.
//
//   $ ./example_adversarial_demo [--k=16] [--mu=10] [--d=2]
#include <iostream>

#include "core/bounds.hpp"
#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/offline_opt.hpp"

namespace {

using namespace dvbp;

void show(const char* title, const gen::AdversarialInstance& adv,
          std::initializer_list<const char*> policies, double theory_lb) {
  std::cout << "--- " << title << " ---\n";
  std::cout << "items=" << adv.instance.size() << " d=" << adv.instance.dim()
            << " mu=" << adv.instance.mu()
            << "  (targets " << adv.target << ")\n";
  const double opt_ub = offline_ffd_cost(adv.instance);
  harness::Table t({"policy", "cost", "bins", "cost/OPT_ub"});
  for (const char* name : policies) {
    const SimResult r = simulate(adv.instance, name);
    t.add_row({name, harness::Table::num(r.cost, 1),
               std::to_string(r.bins_opened),
               harness::Table::num(r.cost / opt_ub, 2)});
  }
  std::cout << t.to_aligned_text();
  std::cout << "offline OPT <= " << harness::Table::num(opt_ub, 1)
            << " | theory: CR(" << adv.target << ") >= "
            << harness::Table::num(theory_lb, 1) << " asymptotically; this "
            << "finite instance certifies >= "
            << harness::Table::num(adv.predicted_ratio(), 2) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto k = static_cast<std::size_t>(args.get_int("k", 16));
  const double mu = args.get_double("mu", 10.0);
  const auto d = static_cast<std::size_t>(args.get_int("d", 2));
  const double dd = static_cast<double>(d);

  std::cout << "=== Section 6 lower-bound constructions, live ===\n\n";

  show("Theorem 5: Any Fit needs (mu+1)d", gen::anyfit_lower_bound(k, d, mu),
       {"FirstFit", "MoveToFront", "BestFit", "WorstFit"},
       bounds::any_fit_lower(mu, dd));

  show("Theorem 6: Next Fit needs 2*mu*d",
       gen::nextfit_lower_bound(k % 2 ? k + 1 : k, d, mu),
       {"NextFit", "FirstFit"}, bounds::next_fit_lower(mu, dd));

  show("Theorem 8: Move To Front needs 2*mu (d=1)",
       gen::mtf_lower_bound(k, mu), {"MoveToFront", "FirstFit", "BestFit"},
       2.0 * mu);

  show("Theorem 7: Best Fit is unbounded (lure gadget)",
       gen::bestfit_unbounded(30), {"BestFit", "FirstFit"},
       bounds::best_fit_lower(mu, dd));

  std::cout << "Takeaway: each construction traps exactly the algorithm it\n"
               "targets while other policies escape cheaply -- worst cases\n"
               "are policy-specific, which is why the paper pairs the\n"
               "theory with the average-case study of Figure 4.\n";
  return 0;
}
