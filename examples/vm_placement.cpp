// VM placement scenario (paper Sec. 1, provider view): a cloud provider
// places incoming VM requests on physical servers; every active server
// burns power, so minimizing total server usage time cuts operating cost
// ([15]: 1% packing efficiency ~ $100M/year at Azure scale).
//
// Demands are 4-dimensional (vCPU, memory, disk bandwidth, network) drawn
// from a catalog of VM flavors, which makes sizes *correlated* across
// dimensions -- the regime where vector packing differs most from 1-D.
//
//   $ ./example_vm_placement [--vms=3000] [--seed=11]
#include <algorithm>
#include <iostream>

#include "cloud/billing.hpp"
#include "cloud/cluster.hpp"
#include "core/policies/registry.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "opt/lower_bounds.hpp"
#include "stats/rng.hpp"

namespace {

using namespace dvbp;

struct Flavor {
  const char* name;
  RVec demand;  // vCPU, GiB, disk MB/s, net Mbps
  double weight;
};

std::vector<cloud::Job> make_vm_trace(std::size_t n, std::uint64_t seed) {
  const Flavor flavors[] = {
      {"small", RVec{2.0, 8.0, 50.0, 100.0}, 0.45},
      {"medium", RVec{8.0, 32.0, 150.0, 400.0}, 0.30},
      {"large", RVec{16.0, 64.0, 300.0, 800.0}, 0.15},
      {"mem-heavy", RVec{4.0, 96.0, 100.0, 200.0}, 0.06},
      {"net-heavy", RVec{4.0, 16.0, 100.0, 1500.0}, 0.04},
  };
  Xoshiro256pp rng(seed);
  std::vector<cloud::Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    double acc = 0.0;
    const Flavor* pick = &flavors[0];
    for (const Flavor& f : flavors) {
      acc += f.weight;
      if (u <= acc) {
        pick = &f;
        break;
      }
    }
    const Time arrival = static_cast<Time>(rng.uniform_int(0, 10000));
    // Lifetimes from minutes-scale batch jobs to long-lived services.
    const Time life = static_cast<Time>(rng.uniform_int(10, 2000));
    jobs.push_back(
        {std::string(pick->name) + "-" + std::to_string(i), arrival,
         arrival + life, pick->demand});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("vms", 3000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  cloud::ServerSpec spec;
  spec.name = "rack-std";
  spec.resource_names = {"vCPU", "GiB", "diskMBps", "netMbps"};
  spec.capacity = RVec{64.0, 256.0, 1000.0, 4000.0};

  const std::vector<cloud::Job> vms = make_vm_trace(n, seed);
  const cloud::ContinuousBilling power(/*rate=*/1.0);  // server-minutes

  std::cout << "=== VM placement: " << n << " VM requests onto " << spec.name
            << " hosts (d=4) ===\n\n";

  // Build the normalized instance once to report the Lemma 1 floor.
  Instance normalized(spec.capacity.dim());
  {
    std::vector<cloud::Job> sorted = vms;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const cloud::Job& a, const cloud::Job& b) {
                       return a.arrival < b.arrival;
                     });
    for (const cloud::Job& j : sorted) {
      normalized.add(j.arrival, j.departure, spec.normalize(j.demand));
    }
  }
  const double lb = lb_height(normalized);

  harness::Table t({"policy", "hosts used", "peak hosts",
                    "server-minutes", "vs lower bound", "utilization"});
  for (const std::string& name : standard_policy_names()) {
    PolicyPtr policy = make_policy(name, seed);
    const cloud::ClusterReport report =
        cloud::run_cluster(spec, vms, *policy, power);
    t.add_row({name, std::to_string(report.servers_rented),
               std::to_string(report.peak_concurrent),
               harness::Table::num(report.total_usage_time, 0),
               harness::Table::num(report.total_usage_time / lb, 4) + "x",
               harness::Table::num(report.avg_utilization, 3)});
  }
  std::cout << t.to_aligned_text() << '\n';
  std::cout << "'vs lower bound' divides by the Lemma 1(i) floor on any\n"
               "possible schedule: the gap is the most a better policy\n"
               "could still save.\n";
  return 0;
}
