#include "harness/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace dvbp::harness {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [key, value] : flags_) out.push_back(key);
  return out;
}

std::vector<std::string> Args::get_list(const std::string& key) const {
  std::vector<std::string> out;
  auto it = flags_.find(key);
  if (it == flags_.end()) return out;
  std::istringstream is(it->second);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  if (!has(key)) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& tok : get_list(key)) {
    try {
      out.push_back(std::stoll(tok));
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key +
                                  " expects integers, got '" + tok + "'");
    }
  }
  return out;
}

}  // namespace dvbp::harness
