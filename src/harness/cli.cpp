#include "harness/cli.hpp"

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace dvbp::harness {

namespace {

namespace fs = std::filesystem;

bool writable(const fs::path& p) {
  return ::access(p.string().c_str(), W_OK) == 0;
}

}  // namespace

void require_writable_file(const std::string& flag,
                           const std::string& path) {
  if (path.empty()) return;
  const fs::path p(path);
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    throw CliError("--" + flag + ": '" + path + "' is a directory");
  }
  if (fs::exists(p, ec)) {
    if (!writable(p)) {
      throw CliError("--" + flag + ": '" + path + "' is not writable");
    }
    return;
  }
  const fs::path parent = p.has_parent_path() ? p.parent_path() : ".";
  if (!fs::is_directory(parent, ec)) {
    throw CliError("--" + flag + ": directory '" + parent.string() +
                   "' does not exist");
  }
  if (!writable(parent)) {
    throw CliError("--" + flag + ": directory '" + parent.string() +
                   "' is not writable");
  }
}

void require_writable_dir(const std::string& flag, const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  // Walk up to the nearest existing ancestor: everything below it will be
  // create_directories()'d, so only that ancestor's writability matters.
  fs::path probe = fs::path(path);
  while (!fs::exists(probe, ec) && probe.has_parent_path() &&
         probe.parent_path() != probe) {
    probe = probe.parent_path();
  }
  if (!fs::exists(probe, ec)) probe = ".";
  if (!fs::is_directory(probe, ec)) {
    throw CliError("--" + flag + ": '" + probe.string() +
                   "' is not a directory");
  }
  if (!writable(probe)) {
    throw CliError("--" + flag + ": '" + probe.string() +
                   "' is not writable");
  }
}

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [key, value] : flags_) out.push_back(key);
  return out;
}

std::vector<std::string> Args::get_list(const std::string& key) const {
  std::vector<std::string> out;
  auto it = flags_.find(key);
  if (it == flags_.end()) return out;
  std::istringstream is(it->second);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

std::vector<std::int64_t> Args::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  if (!has(key)) return fallback;
  std::vector<std::int64_t> out;
  for (const std::string& tok : get_list(key)) {
    try {
      out.push_back(std::stoll(tok));
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key +
                                  " expects integers, got '" + tok + "'");
    }
  }
  return out;
}

}  // namespace dvbp::harness
