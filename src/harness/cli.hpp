// Minimal command-line parsing shared by the bench binaries and examples:
// flags of the form --key=value or --flag, everything else positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvbp::harness {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Comma-separated list value, e.g. --mu=1,2,5.
  std::vector<std::string> get_list(const std::string& key) const;
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Every --key seen on the command line, for strict-CLI validation.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dvbp::harness
