// Minimal command-line parsing shared by the bench binaries and examples:
// flags of the form --key=value or --flag, everything else positional.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvbp::harness {

/// A user-facing command-line error (unknown flag, unwritable output
/// path): reported without a stack of context and mapped to a distinct
/// exit code (2) so scripts can tell "bad invocation" from "run failed".
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

/// Fail-fast check that `path` (the value of --<flag>) can be created or
/// appended as a file: its parent directory must exist and be writable,
/// and the file itself, when present, must be writable. Throws CliError
/// otherwise. No-op for an empty path. Side-effect free -- nothing is
/// created, so a run that fails later leaves no stray output files.
void require_writable_file(const std::string& flag, const std::string& path);

/// Fail-fast check that directory `path` exists writable, or that its
/// nearest existing ancestor is writable (so create_directories will
/// succeed). Throws CliError otherwise; no-op for an empty path.
void require_writable_dir(const std::string& flag, const std::string& path);

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Comma-separated list value, e.g. --mu=1,2,5.
  std::vector<std::string> get_list(const std::string& key) const;
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Every --key seen on the command line, for strict-CLI validation.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dvbp::harness
