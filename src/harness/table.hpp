// Table builder for bench output: aligned text for the console, Markdown
// for EXPERIMENTS.md, CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace dvbp::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimals; infinity
  /// renders as "inf".
  static std::string num(double value, int precision = 3);
  /// "m +- s" cell.
  static std::string mean_pm(double mean, double dev, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  std::string to_aligned_text() const;
  std::string to_markdown() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvbp::harness
