#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dvbp::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::mean_pm(double mean, double dev, int precision) {
  return num(mean, precision) + " +- " + num(dev, precision);
}

std::string Table::to_aligned_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const std::string& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace dvbp::harness
