// Monte-Carlo policy sweeps: run many random instances, evaluate a set of
// policies on each, and report cost/LB ratios per policy -- the machinery
// behind the Figure 4 regeneration. Trials run in parallel on a thread
// pool; every trial derives its own RNG stream, so results are identical
// regardless of thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/registry.hpp"
#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"

namespace dvbp::harness {

struct SweepConfig {
  std::size_t trials = 200;
  std::uint64_t seed = 20230419;  ///< the paper's arXiv date, for fun
  std::size_t threads = 0;        ///< 0 = hardware concurrency
  /// Normalize by the Lemma 1(i) height bound (the paper's choice). When
  /// false, raw costs are reported.
  bool normalize_by_lb = true;
  /// Optional sweep-level telemetry (borrowed). Trials update it
  /// concurrently from the worker threads: counters
  /// `dvbp.sweep.trials_total` / `dvbp.sweep.simulations_total` and the
  /// per-trial wall-time histogram `dvbp.sweep.trial_latency_ns`.
  obs::MetricRegistry* metrics = nullptr;
};

struct PolicyCell {
  std::string policy;
  RunningStats ratio;      ///< cost / LB_height per trial (or raw cost)
  RunningStats bins;       ///< bins opened per trial
  RunningStats max_open;   ///< peak simultaneously-open bins per trial
};

/// Runs `config.trials` instances from `generate` and evaluates every
/// policy in `policies` on each instance.
std::vector<PolicyCell> run_policy_sweep(
    const gen::GeneratorFn& generate, const std::vector<std::string>& policies,
    const SweepConfig& config);

}  // namespace dvbp::harness
