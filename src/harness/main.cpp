// The `harness` CLI: run one instrumented simulation and dump telemetry.
//
// Runs a workload (a built-in generator or a CSV trace) under one policy
// with the obs subsystem wired in, prints a summary, and optionally writes
//   --metrics-out=<path>  one JSON object: the MetricRegistry snapshot;
//   --trace-out=<path>    JSONL decision trace (docs/OBSERVABILITY.md).
//
//   $ harness --generator=uniform --policy=MoveToFront --n=1000 --d=2
//       --mu=10 --metrics-out=metrics.json --trace-out=trace.jsonl
//       --check-roundtrip
//
// --check-roundtrip re-reads the emitted trace, reconstructs the Packing
// via obs::replay_packing_file, and fails (exit 2) unless it matches the
// simulator's packing exactly -- the telemetry acceptance gate, also run
// from tests/test_obs_cli.cpp.
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "core/instance.hpp"
#include "core/simulator.hpp"
#include "gen/registry.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dvbp;

int usage() {
  std::cout <<
      "harness: run one instrumented DVBP simulation and dump telemetry\n"
      "  workload:  --generator=uniform|zipf|bursty|correlated|diurnal\n"
      "             --n=1000 --d=2 --mu=10 --span=1000 --bin-size=100\n"
      "             --seed=1 --trial=0   (or --trace=<instance.csv>)\n"
      "  policy:    --policy=MoveToFront --capacity=1.0\n"
      "  outputs:   --metrics-out=<path.json> --trace-out=<path.jsonl>\n"
      "             --check-roundtrip  (replay trace, verify packing)\n"
      "             --quiet\n";
  return 0;
}

// A typo'd flag silently falling back to its default would corrupt the
// telemetry this CLI exists to report, so unlike the bench binaries the
// flag set is closed.
void reject_unknown_flags(const harness::Args& args) {
  static const std::set<std::string> kKnown{
      "generator", "trace",        "policy",    "n",
      "d",         "mu",           "span",      "bin-size",
      "seed",      "trial",        "capacity",  "policy-seed",
      "metrics-out", "trace-out",  "check-roundtrip", "quiet",
      "help"};
  for (const std::string& key : args.keys()) {
    if (!kKnown.count(key)) {
      throw std::runtime_error("unknown flag '--" + key +
                               "' (see --help)");
    }
  }
}

Instance load_instance(const harness::Args& args) {
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      throw std::runtime_error("cannot open trace '" + trace_path + "'");
    }
    return Instance::from_csv(in);
  }
  gen::UniformParams params;
  params.n = static_cast<std::size_t>(args.get_int("n", 1000));
  params.d = static_cast<std::size_t>(args.get_int("d", 2));
  params.mu = args.get_int("mu", 10);
  params.span = args.get_int("span", 1000);
  params.bin_size = args.get_int("bin-size", 100);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trial = static_cast<std::uint64_t>(args.get_int("trial", 0));
  const gen::GeneratorFn generate =
      gen::make_generator(args.get("generator", "uniform"), params, seed);
  return generate(trial);
}

bool same_packing(const Packing& a, const Packing& b) {
  if (a.assignment() != b.assignment()) return false;
  if (a.num_bins() != b.num_bins()) return false;
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    const BinRecord& x = a.bins()[i];
    const BinRecord& y = b.bins()[i];
    if (x.id != y.id || x.opened != y.opened || x.closed != y.closed ||
        x.items != y.items) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  if (args.get_bool("help")) return usage();
  try {
    reject_unknown_flags(args);
    const Instance inst = load_instance(args);
    const std::string policy = args.get("policy", "MoveToFront");
    const std::string metrics_out = args.get("metrics-out", "");
    const std::string trace_out = args.get("trace-out", "");
    const bool quiet = args.get_bool("quiet");

    obs::MetricRegistry registry;
    std::shared_ptr<obs::TraceSink> sink;
    if (!trace_out.empty()) {
      sink = std::make_shared<obs::FileSink>(trace_out);
    }
    obs::Tracer tracer(sink);
    obs::Observer observer(&registry, &tracer);

    SimOptions opts;
    opts.bin_capacity = args.get_double("capacity", 1.0);
    opts.observer = &observer;
    const SimResult result = simulate(
        inst, policy, opts,
        static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                                 "'");
      }
      out << registry.to_json() << '\n';
    }

    if (!quiet) {
      harness::Table summary({"policy", "items", "cost", "bins", "peak_open",
                              "fit_failures", "decision_p50_ns"});
      summary.add_row(
          {policy, std::to_string(inst.size()),
           harness::Table::num(result.cost, 1),
           std::to_string(result.bins_opened),
           std::to_string(result.max_open_bins),
           std::to_string(
               registry.counter("dvbp.alloc.fit_failures_total").value()),
           harness::Table::num(
               registry.histogram("dvbp.alloc.decision_latency_ns")
                   .quantile(0.5),
               0)});
      std::cout << summary.to_aligned_text();
      if (!trace_out.empty()) {
        std::cout << "trace:   " << trace_out << " ("
                  << tracer.records_emitted() << " records)\n";
      }
      if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out
                                          << '\n';
    }

    if (args.get_bool("check-roundtrip")) {
      if (trace_out.empty()) {
        throw std::runtime_error("--check-roundtrip requires --trace-out");
      }
      const Packing replayed = obs::replay_packing_file(trace_out);
      if (!same_packing(result.packing, replayed)) {
        std::cerr << "harness: trace round-trip MISMATCH\n";
        return 2;
      }
      if (!quiet) std::cout << "trace round-trip: ok\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "harness: " << e.what() << '\n';
    return 1;
  }
}
