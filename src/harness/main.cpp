// The `harness` CLI: run one instrumented simulation and dump telemetry.
//
// Runs a workload (a built-in generator or a CSV trace) under one policy
// with the obs subsystem wired in, prints a summary, and optionally writes
//   --metrics-out=<path>  one JSON object: the MetricRegistry snapshot;
//   --trace-out=<path>    JSONL decision trace (docs/OBSERVABILITY.md).
//
//   $ harness --generator=uniform --policy=MoveToFront --n=1000 --d=2
//       --mu=10 --metrics-out=metrics.json --trace-out=trace.jsonl
//       --check-roundtrip
//
// --check-roundtrip re-reads the emitted trace, reconstructs the Packing
// via obs::replay_packing_file, and fails (exit 2) unless it matches the
// simulator's packing exactly -- the telemetry acceptance gate, also run
// from tests/test_obs_cli.cpp.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/dispatcher.hpp"
#include "core/packing_hash.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "core/simulator.hpp"
#include "gen/registry.hpp"
#include "gen/tenants.hpp"
#include "harness/cli.hpp"
#include "harness/table.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "persist/durable.hpp"
#include "persist/journal.hpp"
#include "opt/offline_opt.hpp"
#include "tenancy/accountant.hpp"
#include "tenancy/arbiter.hpp"
#include "tenancy/gate.hpp"
#include "tenancy/report.hpp"
#include "trace/convert.hpp"
#include "trace/format.hpp"
#include "trace/reader.hpp"
#include "trace/reduce.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace {

using namespace dvbp;

int usage() {
  std::cout <<
      "harness: run one instrumented DVBP simulation and dump telemetry\n"
      "  workload:  --generator=uniform|zipf|bursty|correlated|diurnal\n"
      "             --n=1000 --d=2 --mu=10 --span=1000 --bin-size=100\n"
      "             --seed=1 --trial=0   (or --trace=<instance.csv>)\n"
      "  policy:    --policy=MoveToFront --capacity=1.0\n"
      "  service:   --shards=K  (run the sharded placement service instead\n"
      "             of the serial simulator; reports wall-clock throughput)\n"
      "             --router=round-robin|rendezvous|least-usage\n"
      "  migration (docs/MIGRATION.md):\n"
      "             --migrate-budget=N|inf   migrations allowed per\n"
      "             departure event (amortized; 0 disables repacking)\n"
      "             --migrate-volume=V|inf   L1 volume allowed per event\n"
      "             serial: runs the live Dispatcher + Rebalancer instead\n"
      "             of simulate(); sharded: one shard-rebalance pass at\n"
      "             the stream midpoint with max_moves=budget\n"
      "  outputs:   --metrics-out=<path.json> --trace-out=<path.jsonl>\n"
      "             --check-roundtrip  (replay trace, verify packing)\n"
      "             --quiet\n"
      "  durability (docs/DURABILITY.md):\n"
      "             --journal-dir=<dir>  write-ahead journal + checkpoints\n"
      "             --fsync=always|interval|none --fsync-interval=256\n"
      "             --checkpoint-every=N  (journaled ops; 0 = never)\n"
      "             --recover  (restore from --journal-dir, report, exit;\n"
      "             no workload is ingested)\n"
      "  --trace-out/--check-roundtrip apply to the serial path only.\n"
      "  tenancy (docs/TENANCY.md):\n"
      "             --tenants=T  label the workload with T tenants and run\n"
      "             the serial dispatcher behind the credit admission gate;\n"
      "             prints the welfare/instant-fairness/utilization report\n"
      "             --fairshare=w0,w1,...  relative fair shares (default\n"
      "             uniform)  --alpha=0.0  public credit injection rate\n"
      "             --capacity-units=U  admission capacity (bin units;\n"
      "             default: no quota)  --credits=C  starting balances\n"
      "             --settle-every=T  settlement epoch length (sim time)\n"
      "             --inflate-tenant=t --inflate-factor=F  demand-inflation\n"
      "             adversary  --no-arbiter  baseline without gating\n"
      "\n"
      "subcommands (docs/PROTOCOL.md):\n"
      "  harness serve   --port=7070 --shards=K --policy=... [--d=2]\n"
      "                  [--router=...] [--event-loops=1] [--max-inflight=N]\n"
      "                  [--journal-dir=... --fsync=... --checkpoint-every=N]\n"
      "                  [--metrics-out=...]  run the binary-RPC placement\n"
      "                  server; SIGTERM/SIGINT or a Drain RPC drains it\n"
      "  harness loadgen --port=7070 [--host=127.0.0.1] [--connections=4]\n"
      "                  [--requests=10000] [--window=64] [--dim=2]\n"
      "                  [--depart-fraction=0.45] [--seed=42]\n"
      "                  [--rate=0 --duration=1]  (rate>0: open loop)\n"
      "                  [--drain]  send a Drain RPC afterwards and report\n"
      "                  the server's final packing hash\n"
      "                  [--trace=<file.trc>]  replay a binary trace over\n"
      "                  the wire instead of synthetic traffic\n"
      "\n"
      "trace data plane (docs/TRACES.md):\n"
      "  harness trace convert --csv=<in.csv> --out=<out.trc>\n"
      "                  [--tenants] [--strict]  Azure-style CSV\n"
      "                  (vmid,start,end,frac...) -> binary trace\n"
      "  harness trace info    --in=<trc> [--bounds]  header summary and,\n"
      "                  with --bounds, the Lemma-1 OPT lower bounds\n"
      "  harness trace reduce  --in=<trc> --out=<reduced.trc>\n"
      "                  [--size-grid=16] [--time-cells=64] [--no-opt]\n"
      "                  [--node-limit=20000000]  van Bevern-style\n"
      "                  reduction; prints a sound interval on OPT(in)\n"
      "  harness trace run     --in=<trc> [--policy=...] [--capacity=1.0]\n"
      "                  [--bounds] [--metrics-out=...]  streaming replay\n"
      "                  through the live dispatcher (O(active) memory)\n";
  return 0;
}

// A typo'd flag silently falling back to its default would corrupt the
// telemetry this CLI exists to report, so unlike the bench binaries the
// flag set is closed.
void reject_unknown_flags(const harness::Args& args) {
  static const std::set<std::string> kKnown{
      "generator", "trace",        "policy",    "n",
      "d",         "mu",           "span",      "bin-size",
      "seed",      "trial",        "capacity",  "policy-seed",
      "metrics-out", "trace-out",  "check-roundtrip", "quiet",
      "shards",    "router",       "help",
      "journal-dir", "checkpoint-every", "recover", "fsync",
      "fsync-interval", "migrate-budget", "migrate-volume",
      "tenants",   "fairshare",    "alpha",     "capacity-units",
      "credits",   "settle-every", "price",     "inflate-tenant",
      "inflate-factor", "no-arbiter"};
  for (const std::string& key : args.keys()) {
    if (!kKnown.count(key)) {
      throw harness::CliError("unknown flag '--" + key +
                              "' (see --help)");
    }
  }
}

/// Fail fast on unwritable output paths -- before the (possibly long)
/// simulation runs, so a typo'd path costs nothing. CliError exits 2.
void validate_output_paths(const harness::Args& args) {
  harness::require_writable_file("metrics-out", args.get("metrics-out", ""));
  harness::require_writable_file("trace-out", args.get("trace-out", ""));
  harness::require_writable_dir("journal-dir", args.get("journal-dir", ""));
}

/// Budget values accept "inf"/"unlimited" in addition to numbers, so the
/// unbounded sweep point of bench_migration is expressible from the CLI.
double parse_budget_value(const std::string& flag, const std::string& value,
                          double fallback) {
  if (value.empty()) return fallback;
  if (value == "inf" || value == "unlimited") {
    return MigrationConfig::kUnlimited;
  }
  try {
    const double v = std::stod(value);
    if (v < 0.0) throw std::invalid_argument("negative");
    return v;
  } catch (const std::exception&) {
    throw harness::CliError("--" + flag + "=" + value +
                            " is not a budget (number >= 0, or 'inf')");
  }
}

MigrationConfig parse_migration_config(const harness::Args& args) {
  MigrationConfig config;
  config.migrations_per_event = parse_budget_value(
      "migrate-budget", args.get("migrate-budget", ""), 0.0);
  config.volume_per_event =
      parse_budget_value("migrate-volume", args.get("migrate-volume", ""),
                         MigrationConfig::kUnlimited);
  return config;
}

bool wants_migration(const harness::Args& args) {
  return args.has("migrate-budget") || args.has("migrate-volume");
}

Instance load_instance(const harness::Args& args) {
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    std::ifstream in(trace_path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open trace '" + trace_path + "'");
    }
    // Sniff the magic: --trace accepts both the legacy CSV instance dump
    // and the binary columnar format (docs/TRACES.md).
    char magic[sizeof(trace::kMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == sizeof(magic) &&
        std::memcmp(magic, trace::kMagic, sizeof(magic)) == 0) {
      in.close();
      return trace::TraceReader(trace_path).materialize();
    }
    in.clear();
    in.seekg(0);
    return Instance::from_csv(in);
  }
  gen::UniformParams params;
  params.n = static_cast<std::size_t>(args.get_int("n", 1000));
  params.d = static_cast<std::size_t>(args.get_int("d", 2));
  params.mu = args.get_int("mu", 10);
  params.span = args.get_int("span", 1000);
  params.bin_size = args.get_int("bin-size", 100);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trial = static_cast<std::uint64_t>(args.get_int("trial", 0));
  const gen::GeneratorFn generate =
      gen::make_generator(args.get("generator", "uniform"), params, seed);
  return generate(trial);
}

/// Throughput mode: feed the instance's event stream through the sharded
/// placement service, wall-clock the whole ingest, and report aggregate +
/// per-shard figures. The event feed is the same one simulate() consumes,
/// so at --shards=1 the resulting cost matches the serial path exactly
/// (pinned by tests/test_sharded_parity.cpp).
int run_sharded(const harness::Args& args, const Instance& inst) {
  if (!args.get("trace-out", "").empty() ||
      args.get_bool("check-roundtrip")) {
    throw std::runtime_error(
        "--trace-out/--check-roundtrip are serial-only (decision traces "
        "are per-shard; see docs/ARCHITECTURE.md)");
  }
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
  const std::string policy = args.get("policy", "MoveToFront");
  const auto policy_seed =
      static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu));
  const std::string metrics_out = args.get("metrics-out", "");
  const bool quiet = args.get_bool("quiet");

  obs::MetricRegistry registry;
  cloud::ShardedOptions options;
  options.shards = shards;
  options.router = cloud::parse_router(args.get("router", "round-robin"));
  options.bin_capacity = args.get_double("capacity", 1.0);
  options.metrics = &registry;
  options.journal_dir = args.get("journal-dir", "");
  options.fsync =
      persist::parse_fsync_policy(args.get("fsync", "interval"));
  options.fsync_interval_ops =
      static_cast<std::size_t>(args.get_int("fsync-interval", 256));
  options.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
  cloud::ShardedDispatcher service(
      inst.dim(),
      [&](std::size_t) { return make_policy(policy, policy_seed); },
      options);

  if (args.get_bool("recover")) {
    if (options.journal_dir.empty()) {
      throw harness::CliError("--recover requires --journal-dir");
    }
    harness::Table recovery({"shard", "checkpoint_seq", "replayed_ops",
                             "last_seq", "torn_tail", "jobs"});
    for (std::size_t s = 0; s < shards; ++s) {
      const persist::RecoveryReport& rec = service.shard_recovery(s);
      recovery.add_row(
          {std::to_string(s),
           rec.had_checkpoint ? std::to_string(rec.checkpoint_seq) : "-",
           std::to_string(rec.replayed_ops), std::to_string(rec.last_seq),
           rec.torn_tail ? std::to_string(rec.tail_bytes_discarded) + "B"
                         : "no",
           std::to_string(service.shard_jobs_admitted(s))});
    }
    std::cout << recovery.to_aligned_text();
    return 0;
  }

  // --migrate-budget > 0: pause at the stream midpoint (drained, so the
  // service is quiescent) and run one shard-rebalance pass with the budget
  // as the move cap. Rebalancing at the end would be vacuous -- the full
  // event stream departs every job.
  const MigrationConfig migration = parse_migration_config(args);
  const bool rebalance =
      wants_migration(args) && migration.migrations_per_event > 0.0 &&
      shards > 1;
  cloud::ShardRebalanceReport rebalance_report;

  const std::vector<Event> events = build_event_stream(inst);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  const std::size_t midpoint = rebalance ? events.size() / 2 : events.size();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == midpoint && rebalance) {
      service.drain();
      cloud::ShardRebalanceConfig rconfig;
      rconfig.max_moves =
          migration.migrations_per_event == MigrationConfig::kUnlimited
              ? rconfig.max_moves
              : static_cast<std::size_t>(migration.migrations_per_event);
      rebalance_report =
          service.rebalance_shards(events[i].time, rconfig);
    }
    const Event& ev = events[i];
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      job_of_item[ev.item] =
          service.arrive(item.arrival, item.size, item.departure);
    } else {
      service.depart(ev.time, job_of_item[ev.item]);
    }
  }
  service.drain();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  const Packing packing = service.snapshot();
  const double throughput =
      wall.count() > 0.0 ? static_cast<double>(inst.size()) / wall.count()
                         : 0.0;

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                               "'");
    }
    out << registry.to_json() << '\n';
  }

  if (!quiet) {
    harness::Table summary({"policy", "shards", "router", "items", "cost",
                            "bins", "wall_ms", "arrivals_per_s"});
    summary.add_row(
        {policy, std::to_string(shards),
         std::string(cloud::router_name(service.router())),
         std::to_string(inst.size()), harness::Table::num(packing.cost(), 1),
         std::to_string(packing.num_bins()),
         harness::Table::num(wall.count() * 1e3, 2),
         harness::Table::num(throughput, 0)});
    std::cout << summary.to_aligned_text();

    harness::Table per_shard({"shard", "jobs", "bins", "cost",
                              "placement_p50_ns"});
    const Time horizon = events.empty() ? 0.0 : events.back().time;
    for (std::size_t s = 0; s < shards; ++s) {
      per_shard.add_row(
          {std::to_string(s),
           std::to_string(service.shard_jobs_admitted(s)),
           std::to_string(service.shard_bins_opened(s)),
           harness::Table::num(service.shard_cost_so_far(s, horizon), 1),
           harness::Table::num(
               registry
                   .histogram("dvbp.shard." + std::to_string(s) +
                              ".placement_latency_ns")
                   .quantile(0.5),
               0)});
    }
    std::cout << per_shard.to_aligned_text();
    if (rebalance) {
      harness::Table rb({"rebalance_moves", "moved_volume", "skew_before",
                         "skew_after"});
      rb.add_row({std::to_string(rebalance_report.moves),
                  harness::Table::num(rebalance_report.moved_volume, 3),
                  harness::Table::num(rebalance_report.skew_before, 2),
                  harness::Table::num(rebalance_report.skew_after, 2)});
      std::cout << rb.to_aligned_text();
    }
    if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out << '\n';
  }
  return 0;
}

/// Durable serial mode (--journal-dir without --shards): the event stream
/// runs through persist::DurableDispatcher, so every op is journaled and a
/// killed run can be resumed. --recover restores from the journal
/// directory, reports what recovery found, and exits without ingesting.
int run_durable(const harness::Args& args, const Instance& inst) {
  if (!args.get("trace-out", "").empty() ||
      args.get_bool("check-roundtrip")) {
    throw std::runtime_error(
        "--trace-out/--check-roundtrip do not apply to the durable path");
  }
  const std::string journal_dir = args.get("journal-dir", "");
  if (journal_dir.empty()) {
    throw harness::CliError("--recover requires --journal-dir");
  }
  const std::string policy_name = args.get("policy", "MoveToFront");
  const std::string metrics_out = args.get("metrics-out", "");
  const bool quiet = args.get_bool("quiet");

  obs::MetricRegistry registry;
  const PolicyPtr policy = make_policy(
      policy_name,
      static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));
  persist::DurableOptions dopts;
  dopts.dir = journal_dir;
  dopts.fsync = persist::parse_fsync_policy(args.get("fsync", "interval"));
  dopts.fsync_interval_ops =
      static_cast<std::size_t>(args.get_int("fsync-interval", 256));
  dopts.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
  dopts.metrics = &registry;
  persist::DurableDispatcher service(inst.dim(), *policy, dopts,
                                     args.get_double("capacity", 1.0));

  const persist::RecoveryReport& rec = service.recovery();
  if (!quiet && (args.get_bool("recover") || rec.last_seq > 0)) {
    harness::Table recovery({"checkpoint_seq", "replayed_ops", "last_seq",
                             "torn_tail", "open_bins", "jobs_active"});
    recovery.add_row(
        {rec.had_checkpoint ? std::to_string(rec.checkpoint_seq) : "-",
         std::to_string(rec.replayed_ops), std::to_string(rec.last_seq),
         rec.torn_tail ? std::to_string(rec.tail_bytes_discarded) + "B"
                       : "no",
         std::to_string(service.dispatcher().open_bins()),
         std::to_string(service.dispatcher().jobs_active())});
    std::cout << recovery.to_aligned_text();
  }
  if (args.get_bool("recover")) {
    const Time now = service.dispatcher().last_event_time();
    if (!quiet) {
      std::cout << "cost_so_far: "
                << harness::Table::num(service.dispatcher().cost_so_far(now),
                                       1)
                << '\n';
    }
    return 0;
  }

  // Migration over the durable path: the Rebalancer plans against the
  // inner dispatcher but mutates through the journaled evict/replace
  // wrappers, so every migration is crash-recoverable.
  const MigrationConfig migration = parse_migration_config(args);
  std::optional<Rebalancer> rebalancer;
  if (wants_migration(args)) {
    rebalancer.emplace(service.dispatcher(), migration,
                       service.migration_exec());
  }

  const std::vector<Event> events = build_event_stream(inst);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  const auto start = std::chrono::steady_clock::now();
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      job_of_item[ev.item] =
          service.arrive(item.arrival, item.size, item.departure).job;
    } else {
      service.depart(ev.time, job_of_item[ev.item]);
      if (rebalancer) rebalancer->on_departure(ev.time);
    }
  }
  service.flush();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                               "'");
    }
    out << registry.to_json() << '\n';
  }

  if (!quiet) {
    const Dispatcher& d = service.dispatcher();
    harness::Table summary({"policy", "items", "cost", "bins", "wall_ms",
                            "journal_bytes", "checkpoints"});
    summary.add_row(
        {policy_name, std::to_string(inst.size()),
         harness::Table::num(d.cost_so_far(d.last_event_time()), 1),
         std::to_string(d.bins_opened()),
         harness::Table::num(wall.count() * 1e3, 2),
         std::to_string(
             registry.counter("dvbp.persist.journal_bytes_total").value()),
         std::to_string(
             registry.counter("dvbp.persist.checkpoints_total").value())});
    std::cout << summary.to_aligned_text();
    if (rebalancer) {
      const MigrationStats& stats = rebalancer->stats();
      std::cout << "migrations: " << stats.migrations << " (volume "
                << harness::Table::num(stats.migrated_volume, 3)
                << ", bins closed " << stats.bins_closed << ")\n";
    }
    std::cout << "journal: " << journal_dir << '\n';
    if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out
                                        << '\n';
  }
  return 0;
}

bool same_packing(const Packing& a, const Packing& b);

/// Serial migration mode (--migrate-budget without --shards/--journal-dir):
/// the event stream runs through a live Dispatcher with a Rebalancer
/// attached, so departures can trigger bounded repacking. Telemetry
/// (metrics, JSONL trace, --check-roundtrip) works exactly as in the
/// simulate() path; the trace additionally carries evict/replace records.
int run_migration(const harness::Args& args, const Instance& inst) {
  const std::string policy_name = args.get("policy", "MoveToFront");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const bool quiet = args.get_bool("quiet");

  obs::MetricRegistry registry;
  std::shared_ptr<obs::TraceSink> sink;
  if (!trace_out.empty()) {
    sink = std::make_shared<obs::FileSink>(trace_out);
  }
  obs::Tracer tracer(sink);
  obs::Observer observer(&registry, &tracer);

  const PolicyPtr policy = make_policy(
      policy_name,
      static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));
  Dispatcher dispatcher(inst.dim(), *policy,
                        args.get_double("capacity", 1.0), &observer);
  Rebalancer rebalancer(dispatcher, parse_migration_config(args));

  const std::vector<Event> events = build_event_stream(inst);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  const auto start = std::chrono::steady_clock::now();
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      job_of_item[ev.item] =
          dispatcher.arrive(item.arrival, item.size, item.departure).job;
    } else {
      dispatcher.depart(ev.time, job_of_item[ev.item]);
      rebalancer.on_departure(ev.time);
    }
  }
  tracer.flush();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                               "'");
    }
    out << registry.to_json() << '\n';
  }

  const Packing packing = dispatcher.packing();
  const MigrationStats& stats = rebalancer.stats();
  if (!quiet) {
    harness::Table summary({"policy", "items", "cost", "bins", "migrations",
                            "migrated_volume", "bins_closed_by_migration",
                            "wall_ms"});
    summary.add_row(
        {policy_name, std::to_string(inst.size()),
         harness::Table::num(packing.cost(), 1),
         std::to_string(dispatcher.bins_opened()),
         std::to_string(stats.migrations),
         harness::Table::num(stats.migrated_volume, 3),
         std::to_string(stats.bins_closed),
         harness::Table::num(wall.count() * 1e3, 2)});
    std::cout << summary.to_aligned_text();
    if (!trace_out.empty()) {
      std::cout << "trace:   " << trace_out << " ("
                << tracer.records_emitted() << " records)\n";
    }
    if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out << '\n';
  }

  if (args.get_bool("check-roundtrip")) {
    if (trace_out.empty()) {
      throw std::runtime_error("--check-roundtrip requires --trace-out");
    }
    const Packing replayed = obs::replay_packing_file(trace_out);
    if (!same_packing(packing, replayed)) {
      std::cerr << "harness: trace round-trip MISMATCH\n";
      return 2;
    }
    if (!quiet) std::cout << "trace round-trip: ok\n";
  }
  return 0;
}

/// Tenant fairness mode (--tenants=T): the serial dispatcher behind the
/// credit-based admission gate, with periodic settlement epochs and the
/// Karma-style welfare / instant-fairness / utilization report at the end
/// (docs/TENANCY.md). --no-arbiter disables the quota (every arrival
/// admitted) for the baseline the fairness comparison needs.
int run_tenants(const harness::Args& args, Instance inst) {
  const auto tenants =
      static_cast<std::uint32_t>(args.get_int("tenants", 2));
  if (tenants == 0) throw harness::CliError("--tenants must be >= 1");
  const std::string policy_name = args.get("policy", "MoveToFront");
  const std::string metrics_out = args.get("metrics-out", "");
  const bool quiet = args.get_bool("quiet");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<double> weights(tenants, 1.0);
  if (args.has("fairshare")) {
    const std::vector<std::string> parts = args.get_list("fairshare");
    if (parts.size() != tenants) {
      throw harness::CliError("--fairshare needs exactly --tenants weights");
    }
    for (std::size_t t = 0; t < parts.size(); ++t) {
      weights[t] = std::stod(parts[t]);
    }
  }

  // Label the stream (tenant-weighted), then optionally let one greedy
  // tenant inflate its reported demand.
  gen::label_tenants(inst, weights, seed ^ 0x7e4a7ebef1ull);
  if (args.has("inflate-tenant")) {
    const auto liar =
        static_cast<TenantId>(args.get_int("inflate-tenant", 0));
    const double factor = args.get_double("inflate-factor", 2.0);
    gen::inflate_tenant_demand(inst, liar, factor);
  }

  obs::MetricRegistry registry;
  std::shared_ptr<obs::TraceSink> sink;
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) sink = std::make_shared<obs::FileSink>(trace_out);
  obs::Tracer tracer(sink);
  obs::Observer observer(&registry, &tracer);

  tenancy::ArbiterConfig aconfig;
  aconfig.num_tenants = tenants;
  aconfig.fair_shares = weights;
  aconfig.alpha = args.get_double("alpha", 0.0);
  aconfig.init_credits = args.get_double("credits", 0.0);
  aconfig.price = args.get_double("price", 1.0);
  if (!args.get_bool("no-arbiter") && args.has("capacity-units")) {
    aconfig.capacity_units = args.get_double("capacity-units", 0.0);
  }
  tenancy::Arbiter arbiter(aconfig);
  tenancy::AdmissionGate gate(arbiter, &registry, &tracer);
  tenancy::UsageAccountant accountant(tenants);
  tenancy::FairnessTracker tracker(tenants);

  const PolicyPtr policy = make_policy(
      policy_name,
      static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));
  Dispatcher dispatcher(inst.dim(), *policy,
                        args.get_double("capacity", 1.0), &observer);
  dispatcher.set_usage_hook(&accountant);

  std::vector<double> shares(tenants, 0.0);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    shares[t] = arbiter.fair_share(t);
  }
  const double settle_every = args.get_double("settle-every", 100.0);
  if (!(settle_every > 0.0)) {
    throw harness::CliError("--settle-every must be > 0");
  }

  Time last_settle = inst.empty() ? 0.0 : inst.first_arrival();
  Time next_settle = last_settle + settle_every;
  const auto settle = [&](Time at) {
    accountant.on_advance(std::max(at, accountant.last_event()),
                          dispatcher.open_bins());
    const std::vector<double> usage = accountant.cut_epoch();
    tracker.on_epoch(at - last_settle, usage, shares);
    gate.settle(at, usage);
    last_settle = at;
  };

  const std::vector<Event> events = build_event_stream(inst);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  std::uint64_t denied = 0;
  for (const Event& ev : events) {
    while (ev.time >= next_settle) {
      settle(next_settle);
      next_settle += settle_every;
    }
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      if (!gate.admit(ev.time, item.tenant, item.size, item.id)) {
        ++denied;  // pushed back; this run drops rather than retries
        continue;
      }
      job_of_item[ev.item] =
          dispatcher.arrive(ev.time, item.size, item.departure, item.tenant)
              .job;
    } else {
      if (job_of_item[ev.item] == kNoItem) continue;  // never admitted
      dispatcher.depart(ev.time, job_of_item[ev.item]);
      gate.release(item.tenant, item.size);
    }
  }
  const Time end = events.empty() ? last_settle : events.back().time;
  if (end > last_settle) settle(end);
  tracer.flush();

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                               "'");
    }
    out << registry.to_json() << '\n';
  }

  const tenancy::FairnessReport report =
      tenancy::build_report(accountant, arbiter, gate, tracker);
  std::cout << tenancy::render_report(report);
  if (!quiet) {
    const Packing packing = dispatcher.packing();
    harness::Table summary({"policy", "tenants", "items", "denied", "cost",
                            "bins"});
    summary.add_row({policy_name, std::to_string(tenants),
                     std::to_string(inst.size()), std::to_string(denied),
                     harness::Table::num(packing.cost(), 1),
                     std::to_string(dispatcher.bins_opened())});
    std::cout << summary.to_aligned_text();
    if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out << '\n';
  }
  return 0;
}

/// `harness serve`: the binary-RPC placement server over a fresh sharded
/// service. Blocks until drained (Drain RPC, SIGTERM, or SIGINT), then
/// reports the final packing.
int run_serve(const harness::Args& args) {
  static const std::set<std::string> kKnown{
      "port",        "host",       "shards",          "policy",
      "policy-seed", "d",          "capacity",        "router",
      "event-loops", "max-inflight", "queue-capacity", "metrics-out",
      "journal-dir", "fsync",      "fsync-interval",  "checkpoint-every",
      "quiet",       "help"};
  for (const std::string& key : args.keys()) {
    if (!kKnown.count(key)) {
      throw harness::CliError("serve: unknown flag '--" + key +
                              "' (see --help)");
    }
  }
  harness::require_writable_file("metrics-out", args.get("metrics-out", ""));
  harness::require_writable_dir("journal-dir", args.get("journal-dir", ""));

  const auto dim = static_cast<std::size_t>(args.get_int("d", 2));
  const std::string policy = args.get("policy", "MoveToFront");
  const auto policy_seed =
      static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu));
  const bool quiet = args.get_bool("quiet");

  obs::MetricRegistry registry;
  cloud::ShardedOptions sopts;
  sopts.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  sopts.router = cloud::parse_router(args.get("router", "round-robin"));
  sopts.bin_capacity = args.get_double("capacity", 1.0);
  sopts.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 4096));
  sopts.metrics = &registry;
  sopts.journal_dir = args.get("journal-dir", "");
  sopts.fsync = persist::parse_fsync_policy(args.get("fsync", "interval"));
  sopts.fsync_interval_ops =
      static_cast<std::size_t>(args.get_int("fsync-interval", 256));
  sopts.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 0));
  cloud::ShardedDispatcher service(
      dim, [&](std::size_t) { return make_policy(policy, policy_seed); },
      sopts);

  net::ServerOptions nopts;
  nopts.host = args.get("host", "127.0.0.1");
  nopts.port = static_cast<std::uint16_t>(args.get_int("port", 7070));
  nopts.event_loops =
      static_cast<std::size_t>(args.get_int("event-loops", 1));
  nopts.max_inflight_per_conn =
      static_cast<std::size_t>(args.get_int("max-inflight", 1024));
  nopts.metrics = &registry;
  net::PlacementServer server(service, nopts);
  server.install_signal_drain(SIGTERM);
  server.install_signal_drain(SIGINT);

  // Flushed immediately so wrappers can read the (possibly ephemeral)
  // port before any client connects.
  std::cout << "listening on " << nopts.host << ":" << server.port()
            << std::endl;
  server.wait();

  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                               "'");
    }
    out << registry.to_json() << '\n';
  }
  if (!quiet) {
    // Drained and quiescent: this hash is what the Drain RPC reported.
    const Packing packing = service.snapshot();
    harness::Table summary(
        {"policy", "shards", "jobs", "bins", "cost", "packing_hash"});
    summary.add_row({policy, std::to_string(service.shards()),
                     std::to_string(service.jobs_admitted()),
                     std::to_string(packing.num_bins()),
                     harness::Table::num(packing.cost(), 1),
                     std::to_string(packing_hash(packing))});
    std::cout << summary.to_aligned_text();
    if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out << '\n';
  }
  return 0;
}

/// `harness loadgen`: drive a running placement server and report
/// throughput + latency order statistics.
int run_loadgen_cmd(const harness::Args& args) {
  static const std::set<std::string> kKnown{
      "host",   "port",     "connections", "requests", "window",
      "dim",    "depart-fraction", "seed", "rate",     "duration",
      "drain",  "quiet",    "trace",       "help"};
  for (const std::string& key : args.keys()) {
    if (!kKnown.count(key)) {
      throw harness::CliError("loadgen: unknown flag '--" + key +
                              "' (see --help)");
    }
  }
  net::LoadgenOptions opts;
  opts.host = args.get("host", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_int("port", 7070));
  opts.connections =
      static_cast<std::size_t>(args.get_int("connections", 4));
  opts.dim = static_cast<std::size_t>(args.get_int("dim", 2));
  opts.depart_fraction = args.get_double("depart-fraction", 0.45);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  opts.window = static_cast<std::size_t>(args.get_int("window", 64));
  opts.requests_per_connection =
      static_cast<std::uint64_t>(args.get_int("requests", 10000));
  opts.open_loop_rate = args.get_double("rate", 0.0);
  opts.duration_s = args.get_double("duration", 1.0);
  opts.trace_path = args.get("trace", "");

  const net::LoadgenResult r = net::run_loadgen(opts);
  const char* mode = !opts.trace_path.empty()
                         ? "trace"
                         : (opts.open_loop_rate > 0.0 ? "open" : "closed");
  harness::Table summary({"mode", "conns", "sent", "ok", "retry_later",
                          "throughput_rps", "p50_us", "p99_us", "p999_us"});
  summary.add_row({mode,
                   std::to_string(opts.connections),
                   std::to_string(r.requests_sent), std::to_string(r.ok),
                   std::to_string(r.retry_later),
                   harness::Table::num(r.throughput_rps, 0),
                   harness::Table::num(r.p50_ns / 1e3, 1),
                   harness::Table::num(r.p99_ns / 1e3, 1),
                   harness::Table::num(r.p999_ns / 1e3, 1)});
  std::cout << summary.to_aligned_text();

  if (args.get_bool("drain")) {
    net::Client client(opts.host, opts.port);
    const net::Response resp = client.drain();
    if (resp.status != net::Status::kOk) {
      std::cerr << "loadgen: drain failed: "
                << net::status_name(resp.status) << '\n';
      return 1;
    }
    std::cout << "drained: packing_hash=" << resp.packing_hash
              << " bins=" << resp.num_bins
              << " cost=" << harness::Table::num(resp.cost, 1) << '\n';
  }
  return 0;
}

void reject_unknown_subflags(const std::string& sub,
                             const std::set<std::string>& known,
                             const harness::Args& args) {
  for (const std::string& key : args.keys()) {
    if (!known.count(key)) {
      throw harness::CliError("trace " + sub + ": unknown flag '--" + key +
                              "' (see --help)");
    }
  }
}

std::string require_flag(const harness::Args& args, const std::string& sub,
                         const std::string& flag) {
  const std::string v = args.get(flag, "");
  if (v.empty()) {
    throw harness::CliError("trace " + sub + ": --" + flag + " is required");
  }
  return v;
}

/// `harness trace <convert|info|reduce|run>`: the binary trace data plane
/// (docs/TRACES.md).
int run_trace_cmd(const harness::Args& args) {
  if (args.positional().size() < 2) {
    throw harness::CliError(
        "trace: need a subcommand (convert|info|reduce|run; see --help)");
  }
  const std::string& sub = args.positional()[1];
  const bool quiet = args.get_bool("quiet");

  if (sub == "convert") {
    reject_unknown_subflags(
        sub, {"csv", "out", "tenants", "strict", "quiet", "help"}, args);
    const std::string csv = require_flag(args, sub, "csv");
    const std::string out = require_flag(args, sub, "out");
    harness::require_writable_file("out", out);
    trace::ConvertOptions copts;
    copts.tenants = args.get_bool("tenants");
    copts.strict = args.get_bool("strict");
    const trace::ConvertStats stats = trace::convert_csv_file(csv, out, copts);
    if (!quiet) {
      harness::Table t({"rows_read", "items_written", "rows_skipped", "d",
                        "tenants", "out"});
      t.add_row({std::to_string(stats.rows_read),
                 std::to_string(stats.items_written),
                 std::to_string(stats.rows_skipped),
                 std::to_string(stats.dim), std::to_string(stats.tenants),
                 out});
      std::cout << t.to_aligned_text();
    }
    return 0;
  }

  if (sub == "info") {
    reject_unknown_subflags(sub, {"in", "bounds", "quiet", "help"}, args);
    const trace::TraceReader reader(require_flag(args, sub, "in"));
    harness::Table t({"items", "events", "d", "tenants", "bytes",
                      "first_arrival", "last_departure"});
    t.add_row({std::to_string(reader.size()),
               std::to_string(2 * reader.size()),
               std::to_string(reader.dim()),
               reader.has_tenants() ? "yes" : "no",
               std::to_string(reader.file_bytes()),
               harness::Table::num(reader.first_arrival(), 3),
               harness::Table::num(reader.last_departure(), 3)});
    std::cout << t.to_aligned_text();
    if (args.get_bool("bounds")) {
      const trace::StreamBounds b = trace::streaming_lower_bounds(reader);
      harness::Table lb({"lb_height", "lb_utilization", "lb_span",
                         "lb_best"});
      lb.add_row({harness::Table::num(b.height, 3),
                  harness::Table::num(b.utilization, 3),
                  harness::Table::num(b.span, 3),
                  harness::Table::num(b.best(), 3)});
      std::cout << lb.to_aligned_text();
    }
    return 0;
  }

  if (sub == "reduce") {
    reject_unknown_subflags(sub,
                            {"in", "out", "size-grid", "time-cells",
                             "no-opt", "node-limit", "quiet", "help"},
                            args);
    const std::string in_path = require_flag(args, sub, "in");
    const std::string out = require_flag(args, sub, "out");
    harness::require_writable_file("out", out);
    const trace::TraceReader reader(in_path);
    trace::ReduceOptions ropts;
    ropts.size_grid =
        static_cast<std::uint32_t>(args.get_int("size-grid", 16));
    ropts.time_cells =
        static_cast<std::uint32_t>(args.get_int("time-cells", 64));
    const trace::ReduceResult r = trace::reduce_trace(reader, out, ropts);
    if (!quiet) {
      harness::Table t({"items_in", "items_out", "groups", "size_grid",
                        "time_cells", "out"});
      t.add_row({std::to_string(r.original_items),
                 std::to_string(r.reduced_items), std::to_string(r.groups),
                 std::to_string(r.size_grid), std::to_string(r.time_cells),
                 out});
      std::cout << t.to_aligned_text();
    }
    // The reported interval brackets OPT(in): the lower end is Lemma 1 on
    // the ORIGINAL trace; the upper end is offline_opt on the reduced
    // (dominating) instance -- an upper bound even when the VBP search
    // aborts on its node limit (offline_opt reports cost >= OPT then).
    if (!args.get_bool("no-opt")) {
      VbpOptions vopts;
      vopts.node_limit = static_cast<std::uint64_t>(
          args.get_int("node-limit", 20'000'000));
      const Instance reduced = trace::TraceReader(out).materialize();
      const OfflineOptResult opt = offline_opt(reduced, vopts);
      harness::Table t({"opt_lower", "opt_upper", "upper_exact",
                        "segments", "max_active"});
      t.add_row({harness::Table::num(r.original_bounds.best(), 3),
                 harness::Table::num(opt.cost, 3),
                 opt.exact ? "yes" : "no (node limit)",
                 std::to_string(opt.segments),
                 std::to_string(opt.max_active)});
      std::cout << t.to_aligned_text();
    } else if (!quiet) {
      harness::Table t({"opt_lower"});
      t.add_row({harness::Table::num(r.original_bounds.best(), 3)});
      std::cout << t.to_aligned_text();
    }
    return 0;
  }

  if (sub == "run") {
    reject_unknown_subflags(sub,
                            {"in", "policy", "policy-seed", "capacity",
                             "bounds", "metrics-out", "quiet", "help"},
                            args);
    const std::string metrics_out = args.get("metrics-out", "");
    harness::require_writable_file("metrics-out", metrics_out);
    const trace::TraceReader reader(require_flag(args, sub, "in"));
    const std::string policy_name = args.get("policy", "MoveToFront");
    const PolicyPtr policy = make_policy(
        policy_name,
        static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));

    obs::MetricRegistry registry;
    trace::ReplayOptions opts;
    opts.bin_capacity = args.get_double("capacity", 1.0);
    opts.metrics = &registry;
    const auto start = std::chrono::steady_clock::now();
    const trace::ReplayResult r = trace::replay_trace(reader, *policy, opts);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                                 "'");
      }
      out << registry.to_json() << '\n';
    }
    if (!quiet) {
      const double eps = wall.count() > 0.0
                             ? static_cast<double>(r.events) / wall.count()
                             : 0.0;
      harness::Table t({"policy", "items", "events", "cost", "bins",
                        "peak_open", "wall_ms", "events_per_s"});
      t.add_row({policy_name, std::to_string(r.items),
                 std::to_string(r.events), harness::Table::num(r.cost, 1),
                 std::to_string(r.bins_opened),
                 std::to_string(r.max_open_bins),
                 harness::Table::num(wall.count() * 1e3, 2),
                 harness::Table::num(eps, 0)});
      std::cout << t.to_aligned_text();
      if (args.get_bool("bounds")) {
        const trace::StreamBounds b = trace::streaming_lower_bounds(reader);
        const double lb = b.best();
        harness::Table vs({"opt_lower", "cost_vs_opt_lower"});
        vs.add_row({harness::Table::num(lb, 3),
                    lb > 0.0 ? harness::Table::num(r.cost / lb, 4) : "-"});
        std::cout << vs.to_aligned_text();
      }
      if (!metrics_out.empty()) {
        std::cout << "metrics: " << metrics_out << '\n';
      }
    }
    return 0;
  }

  throw harness::CliError("trace: unknown subcommand '" + sub +
                          "' (convert|info|reduce|run)");
}

bool same_packing(const Packing& a, const Packing& b) {
  if (a.assignment() != b.assignment()) return false;
  if (a.num_bins() != b.num_bins()) return false;
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    const BinRecord& x = a.bins()[i];
    const BinRecord& y = b.bins()[i];
    if (x.id != y.id || x.opened != y.opened || x.closed != y.closed ||
        x.items != y.items) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Args args(argc, argv);
  if (args.get_bool("help")) return usage();
  try {
    if (!args.positional().empty()) {
      const std::string& cmd = args.positional().front();
      if (cmd == "serve") return run_serve(args);
      if (cmd == "loadgen") return run_loadgen_cmd(args);
      if (cmd == "trace") return run_trace_cmd(args);
      throw harness::CliError("unknown subcommand '" + cmd +
                              "' (see --help)");
    }
    reject_unknown_flags(args);
    validate_output_paths(args);
    const Instance inst = load_instance(args);
    if (args.has("tenants")) return run_tenants(args, inst);
    if (args.has("shards")) return run_sharded(args, inst);
    if (!args.get("journal-dir", "").empty() || args.get_bool("recover")) {
      return run_durable(args, inst);
    }
    if (wants_migration(args)) return run_migration(args, inst);
    const std::string policy = args.get("policy", "MoveToFront");
    const std::string metrics_out = args.get("metrics-out", "");
    const std::string trace_out = args.get("trace-out", "");
    const bool quiet = args.get_bool("quiet");

    obs::MetricRegistry registry;
    std::shared_ptr<obs::TraceSink> sink;
    if (!trace_out.empty()) {
      sink = std::make_shared<obs::FileSink>(trace_out);
    }
    obs::Tracer tracer(sink);
    obs::Observer observer(&registry, &tracer);

    SimOptions opts;
    opts.bin_capacity = args.get_double("capacity", 1.0);
    opts.observer = &observer;
    const SimResult result = simulate(
        inst, policy, opts,
        static_cast<std::uint64_t>(args.get_int("policy-seed", 0xD1CEu)));

    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        throw std::runtime_error("cannot open metrics-out '" + metrics_out +
                                 "'");
      }
      out << registry.to_json() << '\n';
    }

    if (!quiet) {
      harness::Table summary({"policy", "items", "cost", "bins", "peak_open",
                              "fit_failures", "decision_p50_ns"});
      summary.add_row(
          {policy, std::to_string(inst.size()),
           harness::Table::num(result.cost, 1),
           std::to_string(result.bins_opened),
           std::to_string(result.max_open_bins),
           std::to_string(
               registry.counter("dvbp.alloc.fit_failures_total").value()),
           harness::Table::num(
               registry.histogram("dvbp.alloc.decision_latency_ns")
                   .quantile(0.5),
               0)});
      std::cout << summary.to_aligned_text();
      if (!trace_out.empty()) {
        std::cout << "trace:   " << trace_out << " ("
                  << tracer.records_emitted() << " records)\n";
      }
      if (!metrics_out.empty()) std::cout << "metrics: " << metrics_out
                                          << '\n';
    }

    if (args.get_bool("check-roundtrip")) {
      if (trace_out.empty()) {
        throw std::runtime_error("--check-roundtrip requires --trace-out");
      }
      const Packing replayed = obs::replay_packing_file(trace_out);
      if (!same_packing(result.packing, replayed)) {
        std::cerr << "harness: trace round-trip MISMATCH\n";
        return 2;
      }
      if (!quiet) std::cout << "trace round-trip: ok\n";
    }
    return 0;
  } catch (const harness::CliError& e) {
    std::cerr << "harness: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "harness: " << e.what() << '\n';
    return 1;
  }
}
