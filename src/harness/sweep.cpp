#include "harness/sweep.hpp"

#include <stdexcept>

#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "opt/lower_bounds.hpp"
#include "parallel/thread_pool.hpp"

namespace dvbp::harness {

std::vector<PolicyCell> run_policy_sweep(
    const gen::GeneratorFn& generate, const std::vector<std::string>& policies,
    const SweepConfig& config) {
  if (policies.empty()) {
    throw std::invalid_argument("run_policy_sweep: no policies");
  }
  if (config.trials == 0) {
    throw std::invalid_argument("run_policy_sweep: trials >= 1");
  }

  struct TrialRow {
    std::vector<double> ratio;
    std::vector<double> bins;
    std::vector<double> max_open;
  };
  std::vector<TrialRow> rows(config.trials);

  obs::Counter* trials_total = nullptr;
  obs::Counter* simulations_total = nullptr;
  obs::Histogram* trial_latency = nullptr;
  if (config.metrics != nullptr) {
    trials_total = &config.metrics->counter("dvbp.sweep.trials_total");
    simulations_total =
        &config.metrics->counter("dvbp.sweep.simulations_total");
    trial_latency =
        &config.metrics->histogram("dvbp.sweep.trial_latency_ns");
  }

  ThreadPool pool(config.threads);
  parallel_for(pool, config.trials, [&](std::size_t trial) {
    const obs::ScopedTimer timer(trial_latency);
    const Instance inst = generate(trial);
    const double lb = config.normalize_by_lb ? lb_height(inst) : 1.0;
    TrialRow& row = rows[trial];
    row.ratio.reserve(policies.size());
    for (const std::string& name : policies) {
      // Fresh policy per (trial, policy): policy objects are stateful and
      // not thread-safe. Randomized policies derive their seed from the
      // sweep seed and trial so reruns are bit-identical.
      PolicyPtr policy =
          make_policy(name, config.seed ^ (0x517cc1b727220a95ULL + trial));
      const SimResult sim = simulate(inst, *policy);
      row.ratio.push_back(lb > 0.0 ? sim.cost / lb : sim.cost);
      row.bins.push_back(static_cast<double>(sim.bins_opened));
      row.max_open.push_back(static_cast<double>(sim.max_open_bins));
      if (simulations_total != nullptr) simulations_total->inc();
    }
    if (trials_total != nullptr) trials_total->inc();
  });

  std::vector<PolicyCell> cells(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    cells[p].policy = policies[p];
  }
  for (const TrialRow& row : rows) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      cells[p].ratio.add(row.ratio[p]);
      cells[p].bins.add(row.bins[p]);
      cells[p].max_open.add(row.max_open[p]);
    }
  }
  return cells;
}

}  // namespace dvbp::harness
