#include <stdexcept>

#include "gen/adversarial.hpp"

namespace dvbp::gen {

// Theorem 8 (d = 1). 4n items arrive at time 0 in label order: odd labels
// have size 1/2 and duration 1; even labels have size 1/(2n) and duration
// mu. Move To Front pairs them into 2n bins (each freshly-opened bin is the
// leader and grabs the next small item), and every bin holds a duration-mu
// item. OPT packs the 2n small items into one bin (cost mu) and pairs the
// 1/2-size items into n bins (cost 1 each).
AdversarialInstance mtf_lower_bound(std::size_t n, double mu) {
  if (n < 1) throw std::invalid_argument("mtf_lower_bound: n >= 1");
  if (mu < 1.0) throw std::invalid_argument("mtf_lower_bound: mu >= 1");

  AdversarialInstance out;
  out.target = "MoveToFront";
  Instance inst(1);
  const double small = 1.0 / (2.0 * static_cast<double>(n));
  for (std::size_t i = 0; i < 2 * n; ++i) {
    inst.add(0.0, 1.0, RVec{0.5});    // odd label
    inst.add(0.0, mu, RVec{small});   // even label
  }

  out.instance = std::move(inst);
  out.predicted_bins = 2 * n;
  out.predicted_online_cost = static_cast<double>(2 * n) * mu;
  out.predicted_opt_upper = mu + static_cast<double>(n);
  return out;
}

}  // namespace dvbp::gen
