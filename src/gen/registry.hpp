// Generator registry: construct workload generators by name, so bench
// binaries and examples can select them on the command line.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "gen/uniform.hpp"

namespace dvbp::gen {

/// A seeded instance factory: trial index -> instance.
using GeneratorFn = std::function<Instance(std::uint64_t trial)>;

/// Names accepted by make_generator.
std::vector<std::string> generator_names();

/// Prefix of the trace-replay pseudo-generator (see make_generator).
inline constexpr std::string_view kTracePrefix = "trace:";

/// Builds a generator over the given base parameters:
///   "uniform"      -- the Sec. 7 / Table 2 model
///   "zipf"         -- Zipf(1.2) durations
///   "bursty"       -- 10 bursts of width 5
///   "correlated"   -- rho = 0.8 correlated sizes
///   "diurnal"      -- sinusoidal arrival intensity (amplitude 0.8)
///   "trace:<path>" -- replay of a recorded binary trace (src/trace/);
///                     every trial yields the same instance, and `base`
///                     and `seed` are ignored. Not listed by
///                     generator_names(). Opening/validation errors
///                     surface as trace::TraceError at call time.
/// Throws std::invalid_argument for unknown names.
GeneratorFn make_generator(std::string_view name, const UniformParams& base,
                           std::uint64_t seed);

}  // namespace dvbp::gen
