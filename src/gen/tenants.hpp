// Tenant-labeled workloads for the fairness layer (docs/TENANCY.md).
//
// label_tenants assigns every item of an existing instance to one of T
// tenants, drawn from a weight vector (heavier weight => more of the
// stream), deterministically in (instance size, weights, seed). The item
// sizes and times are untouched, so a tenant labeling never changes what
// any packing policy does -- only who gets billed.
//
// inflate_tenant_demand is the greedy adversary of the strategy-proofness
// experiments: one tenant scales its reported sizes by `factor` (clamped
// to the unit bin) while everyone else stays truthful. Under a Karma-style
// credit arbiter the inflated demand burns through the liar's credits and
// admission throttles it; the regression test asserts the liar's billed
// utilization does not beat its truthful run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "stats/rng.hpp"

namespace dvbp::gen {

/// Assigns each item of `inst` a tenant in [0, weights.size()) with
/// probability proportional to its weight. Deterministic in (inst.size(),
/// weights, seed). Throws std::invalid_argument on empty weights, a
/// negative weight, or an all-zero weight vector.
void label_tenants(Instance& inst, const std::vector<double>& weights,
                   std::uint64_t seed);

/// Equal-weight convenience: round-robin-free uniform assignment over
/// `tenants` tenants.
void label_tenants_uniform(Instance& inst, std::uint32_t tenants,
                           std::uint64_t seed);

/// Scales the sizes of every item owned by `tenant` by `factor` (>= 0),
/// clamping each coordinate to [0, 1]. Returns the number of items
/// touched. factor > 1 models a greedy tenant inflating its demand.
std::size_t inflate_tenant_demand(Instance& inst, TenantId tenant,
                                  double factor);

/// Per-tenant item counts for a labeled instance (kNoTenant items are
/// dropped; labels >= `tenants` are clamped into the last slot).
std::vector<std::size_t> tenant_histogram(const Instance& inst,
                                          std::uint32_t tenants);

}  // namespace dvbp::gen
