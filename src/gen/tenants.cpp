#include "gen/tenants.hpp"

#include <stdexcept>

namespace dvbp::gen {

void label_tenants(Instance& inst, const std::vector<double>& weights,
                   std::uint64_t seed) {
  if (weights.empty()) {
    throw std::invalid_argument("label_tenants: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument("label_tenants: negative weight");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("label_tenants: all-zero weights");
  }
  Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, 0);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const double u = rng.uniform() * total;
    double acc = 0.0;
    TenantId tenant = static_cast<TenantId>(weights.size() - 1);
    for (std::size_t t = 0; t < weights.size(); ++t) {
      acc += weights[t];
      if (u < acc) {
        tenant = static_cast<TenantId>(t);
        break;
      }
    }
    inst.set_tenant(static_cast<ItemId>(i), tenant);
  }
}

void label_tenants_uniform(Instance& inst, std::uint32_t tenants,
                           std::uint64_t seed) {
  if (tenants == 0) {
    throw std::invalid_argument("label_tenants_uniform: zero tenants");
  }
  label_tenants(inst, std::vector<double>(tenants, 1.0), seed);
}

std::size_t inflate_tenant_demand(Instance& inst, TenantId tenant,
                                  double factor) {
  std::size_t touched = 0;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    if (inst[i].tenant != tenant) continue;
    inst.scale_size(static_cast<ItemId>(i), factor);
    ++touched;
  }
  return touched;
}

std::vector<std::size_t> tenant_histogram(const Instance& inst,
                                          std::uint32_t tenants) {
  std::vector<std::size_t> counts(tenants, 0);
  if (tenants == 0) return counts;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const TenantId t = inst[i].tenant;
    if (t == kNoTenant) continue;
    counts[t < tenants ? t : tenants - 1] += 1;
  }
  return counts;
}

}  // namespace dvbp::gen
