#include "gen/traces.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace dvbp::gen {

namespace {

/// Samples from {1..m} with P(v) proportional to v^-alpha, via the inverse
/// CDF over the precomputed (small) support.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t m, double alpha) {
    if (m < 1) throw std::invalid_argument("ZipfSampler: m >= 1");
    if (alpha <= 0.0) throw std::invalid_argument("ZipfSampler: alpha > 0");
    cdf_.reserve(static_cast<std::size_t>(m));
    double total = 0.0;
    for (std::int64_t v = 1; v <= m; ++v) {
      total += std::pow(static_cast<double>(v), -alpha);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::int64_t sample(Xoshiro256pp& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::int64_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

RVec uniform_size(const UniformParams& p, Xoshiro256pp& rng) {
  RVec size(p.d);
  const double scale = 1.0 / static_cast<double>(p.bin_size);
  for (std::size_t j = 0; j < p.d; ++j) {
    size[j] = static_cast<double>(rng.uniform_int(1, p.bin_size)) * scale;
  }
  return size;
}

}  // namespace

Instance zipf_duration_instance(const ZipfDurationParams& params,
                                Xoshiro256pp& rng) {
  params.base.validate();
  const ZipfSampler durations(params.base.mu, params.alpha);
  Instance inst(params.base.d);
  for (std::size_t i = 0; i < params.base.n; ++i) {
    const auto arrival = static_cast<Time>(
        rng.uniform_int(0, params.base.span - params.base.mu));
    const auto duration = static_cast<Time>(durations.sample(rng));
    inst.add(arrival, arrival + duration, uniform_size(params.base, rng));
  }
  inst.sort_by_arrival();
  return inst;
}

Instance bursty_arrival_instance(const BurstyArrivalParams& params,
                                 Xoshiro256pp& rng) {
  params.base.validate();
  if (params.bursts == 0) {
    throw std::invalid_argument("bursty_arrival_instance: bursts >= 1");
  }
  // Cluster centers leave room for the jitter plus the max duration.
  const std::int64_t center_max =
      std::max<std::int64_t>(0, params.base.span - params.base.mu -
                                    params.burst_width);
  std::vector<std::int64_t> centers(params.bursts);
  for (auto& c : centers) c = rng.uniform_int(0, center_max);

  Instance inst(params.base.d);
  for (std::size_t i = 0; i < params.base.n; ++i) {
    const auto& center = centers[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(params.bursts) - 1))];
    const auto arrival =
        static_cast<Time>(center + rng.uniform_int(0, params.burst_width));
    const auto duration =
        static_cast<Time>(rng.uniform_int(1, params.base.mu));
    inst.add(arrival, arrival + duration, uniform_size(params.base, rng));
  }
  inst.sort_by_arrival();
  return inst;
}

Instance diurnal_arrival_instance(const DiurnalArrivalParams& params,
                                  Xoshiro256pp& rng) {
  params.base.validate();
  if (params.amplitude < 0.0 || params.amplitude >= 1.0) {
    throw std::invalid_argument(
        "diurnal_arrival_instance: amplitude in [0, 1)");
  }
  const double window =
      static_cast<double>(params.base.span - params.base.mu);
  const double period = params.period > 0.0 ? params.period : window;
  constexpr double kTwoPi = 6.283185307179586476925286766559;

  Instance inst(params.base.d);
  for (std::size_t i = 0; i < params.base.n; ++i) {
    // Rejection sampling against the normalized intensity.
    Time arrival = 0.0;
    for (;;) {
      const double t = rng.uniform(0.0, window);
      const double intensity =
          (1.0 + params.amplitude *
                     std::sin(kTwoPi * t / period + params.phase)) /
          (1.0 + params.amplitude);
      if (rng.uniform() <= intensity) {
        arrival = std::floor(t);  // keep the integral-time envelope
        break;
      }
    }
    const auto duration =
        static_cast<Time>(rng.uniform_int(1, params.base.mu));
    inst.add(arrival, arrival + duration, uniform_size(params.base, rng));
  }
  inst.sort_by_arrival();
  return inst;
}

Instance correlated_size_instance(const CorrelatedSizeParams& params,
                                  Xoshiro256pp& rng) {
  params.base.validate();
  if (params.rho < 0.0 || params.rho > 1.0) {
    throw std::invalid_argument("correlated_size_instance: rho in [0,1]");
  }
  Instance inst(params.base.d);
  const auto b = params.base.bin_size;
  const double scale = 1.0 / static_cast<double>(b);
  for (std::size_t i = 0; i < params.base.n; ++i) {
    const auto arrival = static_cast<Time>(
        rng.uniform_int(0, params.base.span - params.base.mu));
    const auto duration =
        static_cast<Time>(rng.uniform_int(1, params.base.mu));
    const auto dominant = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.base.d) - 1));
    const double dom_units = static_cast<double>(rng.uniform_int(1, b));
    RVec size(params.base.d);
    for (std::size_t j = 0; j < params.base.d; ++j) {
      double units;
      if (j == dominant) {
        units = dom_units;
      } else {
        const double fresh = static_cast<double>(rng.uniform_int(1, b));
        units = params.rho * dom_units + (1.0 - params.rho) * fresh;
      }
      // Round to the integral grid, clamped to {1..B}.
      units = std::clamp(std::round(units), 1.0, static_cast<double>(b));
      size[j] = units * scale;
    }
    inst.add(arrival, arrival + duration, std::move(size));
  }
  inst.sort_by_arrival();
  return inst;
}

}  // namespace dvbp::gen
