// Adversarial instance constructions from Section 6 of the paper, plus a
// Best Fit gadget witnessing Theorem 7. Each generator returns the instance
// together with the quantities its proof predicts (bins forced open, online
// cost, an upper bound on OPT), which the tests assert against simulation
// and bench_table1 reports next to the Table 1 bounds.
#pragma once

#include <string>

#include "core/instance.hpp"

namespace dvbp::gen {

struct AdversarialInstance {
  Instance instance;
  std::string target;            ///< algorithm family the gadget attacks
  std::size_t predicted_bins = 0;  ///< bins the target algorithm must open
  double predicted_online_cost = 0.0;  ///< lower bound on the target's cost
  double predicted_opt_upper = 0.0;    ///< upper bound on OPT(R)
  /// predicted_online_cost / predicted_opt_upper: a certified lower bound
  /// on the target's competitive ratio.
  double predicted_ratio() const {
    return predicted_online_cost / predicted_opt_upper;
  }
};

/// Theorem 5 construction: forces ANY Any Fit algorithm (with a full open
/// list; Next Fit has its own gadget below) to open d*k bins, each kept
/// alive for ~mu+1 by one small long item, while OPT pays ~k + mu + 1.
/// Ratio -> (mu+1)d as k grows.
///
/// `delta` is how long before the R0 departures the R1 items arrive (the
/// paper's "just before any items of R0 depart"); it must lie in (0, 1).
AdversarialInstance anyfit_lower_bound(std::size_t k, std::size_t d,
                                       double mu, double delta = 0.01);

/// Theorem 6 construction against Next Fit: NF opens 1 + (k-1)d bins, each
/// holding a duration-mu item, while OPT pays mu + k/2. Ratio -> 2*mu*d.
/// `k` must be even and >= 2.
AdversarialInstance nextfit_lower_bound(std::size_t k, std::size_t d,
                                        double mu);

/// Theorem 8 construction against Move To Front (d = 1): 4n items at time
/// 0; MTF opens 2n bins each holding a long small item; OPT pays mu + n.
/// Ratio -> 2*mu.
AdversarialInstance mtf_lower_bound(std::size_t n, double mu);

/// Best Fit unboundedness gadget (Thm 7 / [22] in spirit): k phases; in
/// phase i a near-full filler bin lures the long-lived tiny item i into a
/// bin that immediately empties around it, leaving k perpetually-open
/// nearly-empty bins. cost(BF) ~ k^2/2 while OPT ~ 3k/2, so the ratio grows
/// ~ k/3 without bound (mu grows with k; First Fit stays near OPT on the
/// same instance). `k` <= 40 (tiny sizes shrink geometrically and must stay
/// well above the capacity tolerance).
AdversarialInstance bestfit_unbounded(std::size_t k);

}  // namespace dvbp::gen
