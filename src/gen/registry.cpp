#include "gen/registry.hpp"

#include <stdexcept>

#include "gen/traces.hpp"
#include "trace/reader.hpp"

namespace dvbp::gen {

std::vector<std::string> generator_names() {
  // "trace:<path>" is accepted by make_generator but deliberately not
  // listed: these names are iterated by tests/sweeps that instantiate
  // every generator from base params alone, and a pseudo-generator with
  // no file behind it cannot honor that contract.
  return {"uniform", "zipf", "bursty", "correlated", "diurnal"};
}

GeneratorFn make_generator(std::string_view name, const UniformParams& base,
                           std::uint64_t seed) {
  if (name.rfind(kTracePrefix, 0) == 0) {
    // Trace files replay one fixed workload: every trial materializes the
    // same instance, and the base params/seed are ignored by design --
    // any sweep or harness path can consume a recorded trace unchanged.
    std::string path(name.substr(kTracePrefix.size()));
    if (path.empty()) {
      throw std::invalid_argument(
          "make_generator: 'trace:' needs a file path");
    }
    return [path](std::uint64_t /*trial*/) {
      return trace::TraceReader(path).materialize();
    };
  }
  if (name == "uniform") {
    return [base, seed](std::uint64_t trial) {
      Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
      return uniform_instance(base, rng);
    };
  }
  if (name == "zipf") {
    return [base, seed](std::uint64_t trial) {
      Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
      return zipf_duration_instance({base, 1.2}, rng);
    };
  }
  if (name == "bursty") {
    return [base, seed](std::uint64_t trial) {
      Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
      return bursty_arrival_instance({base, 10, 5}, rng);
    };
  }
  if (name == "diurnal") {
    return [base, seed](std::uint64_t trial) {
      Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
      return diurnal_arrival_instance({base, 0.8, 0.0, 0.0}, rng);
    };
  }
  if (name == "correlated") {
    return [base, seed](std::uint64_t trial) {
      Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
      return correlated_size_instance({base, 0.8}, rng);
    };
  }
  throw std::invalid_argument("make_generator: unknown generator '" +
                              std::string(name) + "'");
}

}  // namespace dvbp::gen
