#include <stdexcept>

#include "gen/adversarial.hpp"

namespace dvbp::gen {

// Theorem 6. Items {1..2dk} arrive at time 0 in label order:
//   even labels: size eps' * 1^d, active [0, mu)
//   odd label 2m-1 in group G_i: size (1/2 - d*eps) in dimension i, eps
//     elsewhere, active [0, 1).
// Next Fit packs pairwise; a phase boundary lets the current bin absorb the
// first pair of the next group, so NF opens 1 + (k-1)d bins, each pinned
// open for mu by an even item. OPT packs all evens in one bin (cost mu) and
// the odds two-per-bin in k/2 bins (cost 1 each).
//
// Parameter choice: eps' = 1/(2dk) gives eps'*d*k = 1/2 < 1;
// eps = eps'/(4d) gives eps' > 2*d*eps.
AdversarialInstance nextfit_lower_bound(std::size_t k, std::size_t d,
                                        double mu) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("nextfit_lower_bound: k must be even >= 2");
  }
  if (d < 1) throw std::invalid_argument("nextfit_lower_bound: d >= 1");
  if (mu < 1.0) throw std::invalid_argument("nextfit_lower_bound: mu >= 1");
  const double dd = static_cast<double>(d);
  const double eps_p = 1.0 / (2.0 * dd * static_cast<double>(k));
  const double eps = eps_p / (4.0 * dd);

  AdversarialInstance out;
  out.target = "NextFit";
  Instance inst(d);
  for (std::size_t m = 1; m <= d * k; ++m) {
    const std::size_t group = (m - 1) / k;
    inst.add(0.0, 1.0, RVec::axis(d, group, 0.5 - dd * eps, eps));
    inst.add(0.0, mu, RVec(d, eps_p));
  }

  out.instance = std::move(inst);
  out.predicted_bins = 1 + (k - 1) * d;
  out.predicted_online_cost = static_cast<double>(out.predicted_bins) * mu;
  out.predicted_opt_upper = mu + static_cast<double>(k) / 2.0;
  return out;
}

}  // namespace dvbp::gen
