#include "gen/uniform.hpp"

#include <stdexcept>

namespace dvbp::gen {

void UniformParams::validate() const {
  if (d == 0) throw std::invalid_argument("UniformParams: d must be >= 1");
  if (n == 0) throw std::invalid_argument("UniformParams: n must be >= 1");
  if (mu < 1) throw std::invalid_argument("UniformParams: mu must be >= 1");
  if (bin_size < 1) {
    throw std::invalid_argument("UniformParams: bin_size must be >= 1");
  }
  if (span < mu) {
    throw std::invalid_argument("UniformParams: span must be >= mu");
  }
}

Instance uniform_instance(const UniformParams& params, Xoshiro256pp& rng) {
  params.validate();
  Instance inst(params.d);
  const double scale = 1.0 / static_cast<double>(params.bin_size);
  for (std::size_t i = 0; i < params.n; ++i) {
    const auto arrival =
        static_cast<Time>(rng.uniform_int(0, params.span - params.mu));
    const auto duration = static_cast<Time>(rng.uniform_int(1, params.mu));
    RVec size(params.d);
    for (std::size_t j = 0; j < params.d; ++j) {
      size[j] =
          static_cast<double>(rng.uniform_int(1, params.bin_size)) * scale;
    }
    inst.add(arrival, arrival + duration, std::move(size));
  }
  inst.sort_by_arrival();
  return inst;
}

Instance uniform_instance(const UniformParams& params, std::uint64_t seed,
                          std::uint64_t trial) {
  Xoshiro256pp rng = Xoshiro256pp::for_trial(seed, trial);
  return uniform_instance(params, rng);
}

}  // namespace dvbp::gen
