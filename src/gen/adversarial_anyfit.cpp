#include <stdexcept>

#include "gen/adversarial.hpp"

namespace dvbp::gen {

// Theorem 5. Items R0 = {1..2dk} arrive at time 0 in label order with
// active interval [0, 1):
//   even labels (group G0): size (d*eps - eps') * 1^d
//   odd label 2m-1 in group G_i (i = ceil(m/k)): size (1 - d*eps) in
//     dimension i, eps elsewhere.
// Every Any Fit algorithm packs them pairwise into dk bins, each loaded at
// exactly 1 - eps' in one dimension. R1 = dk items of size eps' * 1^d
// arriving just before the R0 departures with duration mu; each fits (and
// exactly fills) one distinct bin, pinning all dk bins open for ~mu more.
//
// Parameter choice: eps = 1/(2 d^2 k) satisfies d^2*eps*k < 1 and
// eps(1+d) < 1; eps' = eps/4 satisfies eps' < eps and d*eps > 2*eps'.
AdversarialInstance anyfit_lower_bound(std::size_t k, std::size_t d,
                                       double mu, double delta) {
  if (k < 1) throw std::invalid_argument("anyfit_lower_bound: k >= 1");
  if (d < 1) throw std::invalid_argument("anyfit_lower_bound: d >= 1");
  if (mu < 1.0) throw std::invalid_argument("anyfit_lower_bound: mu >= 1");
  if (!(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("anyfit_lower_bound: delta in (0,1)");
  }
  const double dd = static_cast<double>(d);
  const double eps = 1.0 / (2.0 * dd * dd * static_cast<double>(k));
  const double eps_p = eps / 4.0;
  if (eps * (1.0 + dd) >= 1.0) {
    throw std::invalid_argument("anyfit_lower_bound: k too small for d");
  }

  AdversarialInstance out;
  out.target = "AnyFit";
  Instance inst(d);

  // R0: labels 1..2dk in order; label 2m-1 is the m-th odd item.
  for (std::size_t m = 1; m <= d * k; ++m) {
    const std::size_t group = (m - 1) / k;  // 0-based group index i-1
    inst.add(0.0, 1.0,
             RVec::axis(d, group, 1.0 - dd * eps, eps));  // odd label 2m-1
    inst.add(0.0, 1.0, RVec(d, dd * eps - eps_p));        // even label 2m
  }
  // R1: dk fillers of size eps' * 1^d arriving delta before the departures.
  const Time r1_arrival = 1.0 - delta;
  for (std::size_t i = 0; i < d * k; ++i) {
    inst.add(r1_arrival, r1_arrival + mu, RVec(d, eps_p));
  }

  out.instance = std::move(inst);
  out.predicted_bins = d * k;
  // Each of the dk bins opens at 0 and holds an R1 item until 1-delta+mu.
  out.predicted_online_cost =
      static_cast<double>(d * k) * (mu + 1.0 - delta);
  // OPT: one bin B0 for all of G0 and R1 (usage 1-delta+mu... from 0), plus
  // k bins holding one odd item per group each (usage 1).
  out.predicted_opt_upper =
      static_cast<double>(k) + (mu + 1.0 - delta);
  return out;
}

}  // namespace dvbp::gen
