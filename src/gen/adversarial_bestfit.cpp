#include <stdexcept>

#include "gen/adversarial.hpp"

namespace dvbp::gen {

// Best Fit lure gadget (witnesses Theorem 7 / [22]).
//
// Phase i (at time i-1, for i = 1..k):
//   filler f_i: size 1 - s_i, active [i-1, i-0.5)
//   tiny   t_i: size s_i, active [i-0.75, k+1)
// with s_i = 0.2 * 0.75^(i-1), strictly decreasing.
//
// Why Best Fit loses: when f_i arrives, the open bins hold exactly the
// tinies t_1..t_{i-1}; none can take it (s_j + 1 - s_i > 1 because
// s_j > s_i), so f_i opens bin B_i. When t_i arrives 0.25 later, B_i (load
// ~1) is the most-loaded bin that still fits it exactly, so Best Fit puts
// t_i there -- and when f_i departs, t_i is stranded alone in B_i until the
// horizon k+1. Result: k bins open from phase start to k+1,
// cost(BF) = sum_i (k+1-(i-1)) ... >= k^2/2.
//
// Why OPT doesn't: all tinies fit together in one bin
// (sum s_i < 0.8 < 1) open for ~k+1, and the fillers reuse a second bin
// back-to-back (they never overlap), costing k * 0.5. OPT <= (k+1) + k/2.
// First Fit recovers the same behaviour online: it stacks every tiny into
// the earliest tiny bin.
//
// The ratio grows ~ k/3, i.e. without bound as k -> infinity (mu grows with
// k; no function of d or the input length caps it, matching Thm 7).
AdversarialInstance bestfit_unbounded(std::size_t k) {
  if (k < 1) throw std::invalid_argument("bestfit_unbounded: k >= 1");
  if (k > 40) {
    // s_i decays geometrically; beyond ~40 phases the tiny-size gaps fall
    // toward the capacity tolerance and the gadget's strict inequalities
    // degrade.
    throw std::invalid_argument("bestfit_unbounded: k <= 40");
  }

  AdversarialInstance out;
  out.target = "BestFit";
  Instance inst(1);
  const Time horizon = static_cast<Time>(k) + 1.0;
  double tiny = 0.2;
  double online_cost = 0.0;
  for (std::size_t i = 1; i <= k; ++i) {
    const Time phase = static_cast<Time>(i - 1);
    inst.add(phase, phase + 0.5, RVec{1.0 - tiny});       // filler f_i
    inst.add(phase + 0.25, horizon, RVec{tiny});          // tiny t_i
    online_cost += horizon - phase;  // bin B_i open [phase, horizon)
    tiny *= 0.75;
  }

  out.instance = std::move(inst);
  out.predicted_bins = k;
  out.predicted_online_cost = online_cost;
  out.predicted_opt_upper = horizon + static_cast<double>(k) * 0.5;
  return out;
}

}  // namespace dvbp::gen
