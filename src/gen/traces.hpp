// Extension workloads beyond the paper's uniform model (Sec. 7). These keep
// the same (n, T, mu, B) envelope but vary the distributional shape, to
// probe how robust the Figure 4 ranking is:
//
//  * Zipf durations: heavy-tailed session lengths (cloud-gaming-like);
//  * bursty arrivals: arrivals clustered into bursts (flash crowds);
//  * correlated sizes: one dominant resource per item, others correlated
//    with it (VM-shaped demands) -- stresses the multi-dimensional packing.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "gen/uniform.hpp"
#include "stats/rng.hpp"

namespace dvbp::gen {

/// Durations ~ Zipf(alpha) over {1..mu} (alpha > 0; larger = heavier head,
/// i.e. more short jobs); sizes/arrivals as in the uniform model.
struct ZipfDurationParams {
  UniformParams base;
  double alpha = 1.2;
};
Instance zipf_duration_instance(const ZipfDurationParams& params,
                                Xoshiro256pp& rng);

/// Arrivals grouped into `bursts` clusters at uniform-random centers; each
/// item's arrival is its cluster center plus uniform jitter in
/// [0, burst_width]. Durations/sizes as in the uniform model.
struct BurstyArrivalParams {
  UniformParams base;
  std::size_t bursts = 10;
  std::int64_t burst_width = 5;
};
Instance bursty_arrival_instance(const BurstyArrivalParams& params,
                                 Xoshiro256pp& rng);

/// Arrivals follow a diurnal (sinusoidal) intensity over the span:
/// rate(t) proportional to 1 + amplitude * sin(2*pi*t/period + phase).
/// Models the day/night cycle of interactive cloud workloads; sizes and
/// durations as in the uniform model.
struct DiurnalArrivalParams {
  UniformParams base;
  double amplitude = 0.8;  ///< in [0, 1): peak/trough rate contrast
  double period = 0.0;     ///< 0 selects one full cycle over the span
  double phase = 0.0;
};
Instance diurnal_arrival_instance(const DiurnalArrivalParams& params,
                                  Xoshiro256pp& rng);

/// Each item picks a dominant dimension with a uniform size in {1..B};
/// every other dimension gets rho * dominant + (1-rho) * fresh uniform,
/// rounded to the {1..B} grid. rho = 0 recovers independent sizes; rho = 1
/// makes demands fully proportional.
struct CorrelatedSizeParams {
  UniformParams base;
  double rho = 0.8;
};
Instance correlated_size_instance(const CorrelatedSizeParams& params,
                                  Xoshiro256pp& rng);

}  // namespace dvbp::gen
