// The Section 7 synthetic workload, parameterized exactly as Table 2:
//
//   d   number of dimensions            {1, 2, 5}
//   n   sequence length                 1000
//   mu  max item duration (integral)    {1, 2, 5, 10, 100, 200}
//   T   sequence span                   1000
//   B   bin size (integral)             100
//
// Each item draws an integral size uniformly from {1,...,B}^d (normalized
// by B to fit the unit bin), an integral arrival uniformly from [0, T-mu],
// and an integral duration uniformly from [1, mu]. Items are emitted in
// arrival order.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "stats/rng.hpp"

namespace dvbp::gen {

struct UniformParams {
  std::size_t d = 1;       ///< dimensions
  std::size_t n = 1000;    ///< items
  std::int64_t mu = 10;    ///< max duration (min is 1)
  std::int64_t span = 1000;  ///< T: arrivals fall in [0, T - mu]
  std::int64_t bin_size = 100;  ///< B: sizes in {1..B}/B

  /// Throws std::invalid_argument when inconsistent (e.g. mu > span).
  void validate() const;
};

/// Generates one random instance. Deterministic in (params, rng state).
Instance uniform_instance(const UniformParams& params, Xoshiro256pp& rng);

/// Convenience: fresh RNG derived from (seed, trial).
Instance uniform_instance(const UniformParams& params, std::uint64_t seed,
                          std::uint64_t trial = 0);

}  // namespace dvbp::gen
