#include "cloud/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace dvbp::cloud {

ClusterReport run_cluster(const ServerSpec& spec, std::vector<Job> jobs,
                          Policy& policy, const BillingModel& billing,
                          obs::Observer* observer) {
  spec.validate();

  // Jobs must be fed to the online algorithm in arrival order.
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival < b.arrival;
  });

  Instance inst(spec.capacity.dim());
  for (const Job& job : jobs) {
    inst.add(job.arrival, job.departure, spec.normalize(job.demand));
  }

  SimOptions opts;
  opts.observer = observer;
  const SimResult sim = simulate(inst, policy, opts);

  ClusterReport report;
  report.servers_rented = sim.bins_opened;
  report.peak_concurrent = sim.max_open_bins;
  report.total_usage_time = sim.cost;
  report.placement = sim.packing.assignment();

  report.rentals.reserve(sim.packing.num_bins());
  for (const BinRecord& bin : sim.packing.bins()) {
    ServerRental rental;
    rental.server = bin.id;
    rental.usage = bin.usage();
    rental.bill = billing.charge(rental.usage);
    rental.jobs_served = bin.items.size();
    report.total_bill += rental.bill;
    report.rentals.push_back(rental);
  }

  // Utilization: integral of used normalized volume over integral of rented
  // volume (one unit of volume per open server per unit time).
  double used = 0.0;
  const double d = static_cast<double>(inst.dim());
  for (const Item& r : inst.items()) {
    used += r.size.l1() / d * r.duration();
  }
  if (report.total_usage_time > 0.0) {
    report.avg_utilization = used / report.total_usage_time;
  }
  return report;
}

}  // namespace dvbp::cloud
