// Billing models for rented servers. The paper's objective (eq. (1)) is the
// continuous usage time; real "pay-as-you-go" clouds bill in quanta (e.g.
// per started hour, per minute) [26]. QuantizedBilling lets the examples
// show how the DVBP usage-time objective tracks actual rental bills.
#pragma once

#include <memory>
#include <string>

#include "core/interval.hpp"

namespace dvbp::cloud {

class BillingModel {
 public:
  virtual ~BillingModel() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Cost of renting one server for the given usage period.
  virtual double charge(const Interval& usage) const = 0;
};

/// cost = rate * usage length. Exactly the paper's objective when rate = 1.
class ContinuousBilling final : public BillingModel {
 public:
  explicit ContinuousBilling(double rate_per_unit_time = 1.0)
      : rate_(rate_per_unit_time) {}
  std::string_view name() const noexcept override { return "continuous"; }
  double charge(const Interval& usage) const override {
    return rate_ * usage.length();
  }
  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// cost = rate * quantum * ceil(usage length / quantum): every started
/// billing quantum is charged in full.
class QuantizedBilling final : public BillingModel {
 public:
  QuantizedBilling(double quantum, double rate_per_quantum);
  std::string_view name() const noexcept override { return "quantized"; }
  double charge(const Interval& usage) const override;
  double quantum() const noexcept { return quantum_; }

 private:
  double quantum_;
  double rate_;
};

}  // namespace dvbp::cloud
