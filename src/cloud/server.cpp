#include "cloud/server.hpp"

#include <stdexcept>

namespace dvbp::cloud {

void ServerSpec::validate() const {
  if (capacity.dim() == 0) {
    throw std::invalid_argument("ServerSpec: empty capacity");
  }
  if (!resource_names.empty() && resource_names.size() != capacity.dim()) {
    throw std::invalid_argument(
        "ServerSpec: resource_names/capacity dimension mismatch");
  }
  for (std::size_t j = 0; j < capacity.dim(); ++j) {
    if (!(capacity[j] > 0.0)) {
      throw std::invalid_argument("ServerSpec: non-positive capacity");
    }
  }
}

RVec ServerSpec::normalize(const RVec& demand) const {
  if (demand.dim() != capacity.dim()) {
    throw std::invalid_argument("ServerSpec::normalize: dimension mismatch");
  }
  RVec out(demand.dim());
  for (std::size_t j = 0; j < demand.dim(); ++j) {
    out[j] = demand[j] / capacity[j];
    if (out[j] > 1.0 + kCapacityEps) {
      throw std::invalid_argument(
          "ServerSpec::normalize: demand exceeds capacity in dimension " +
          std::to_string(j));
    }
  }
  return out;
}

}  // namespace dvbp::cloud
