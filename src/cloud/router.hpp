// Routing policies for the sharded placement service.
//
// A Router decides, at admission time and in the producer's thread, which
// Dispatcher shard receives a job. The decision is irrevocable (like the
// placement itself): the job's departure is steered to the same shard so the
// shard sees a self-consistent substream.
//
// Three built-in policies:
//   round-robin  -- atomic counter modulo K; perfectly balanced item counts,
//                   assignment depends on global admission order only.
//   rendezvous   -- highest-random-weight hash of (job id, shard); a pure
//                   function of the job id and K, so the assignment is
//                   independent of thread interleaving and queue timing
//                   (pinned by tests/test_sweep_determinism.cpp).
//   least-usage  -- argmin of the per-shard load estimates the service
//                   maintains (periodically refreshed Dispatcher load
//                   snapshots plus queued-but-unapplied arrivals).
//
// All route() implementations are thread-safe and wait-free; the sharded
// service calls them concurrently from every producer thread.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/types.hpp"

namespace dvbp::cloud {

enum class RouterKind : std::uint8_t {
  kRoundRobin = 0,
  kRendezvous = 1,
  kLeastUsage = 2,
};

/// Parses "round-robin" | "rendezvous" | "least-usage" (the harness CLI
/// spelling). Throws std::invalid_argument for anything else.
RouterKind parse_router(std::string_view name);

/// The CLI spelling of `kind`.
std::string_view router_name(RouterKind kind) noexcept;

class Router {
 public:
  virtual ~Router() = default;

  virtual RouterKind kind() const noexcept = 0;
  std::string_view name() const noexcept { return router_name(kind()); }

  /// Picks the shard for `job`. `shard_loads` holds the service's current
  /// per-shard load estimates (size == shard count, always >= 1); policies
  /// that do not balance on load ignore it. Must be thread-safe.
  virtual std::size_t route(ItemId job,
                            std::span<const double> shard_loads) noexcept = 0;

  // --- Checkpointing (src/persist/) -----------------------------------
  // Routing state that must survive a crash for post-recovery routing to
  // match an uninterrupted run. Round-robin's word is its admission
  // counter; rendezvous is a pure function of (job id, shard count) with
  // compile-time mixing constants, and least-usage re-derives its loads
  // from the recovered shards -- both carry 0.

  /// One word of durable routing state (0 for stateless routers).
  virtual std::uint64_t persistent_state() const noexcept { return 0; }

  /// Restores a word captured by persistent_state(). Only meaningful on a
  /// freshly constructed router.
  virtual void restore_persistent_state(std::uint64_t) noexcept {}
};

/// Constructs a router for `shards` >= 1 shards. Throws
/// std::invalid_argument when `shards` is 0.
std::unique_ptr<Router> make_router(RouterKind kind, std::size_t shards);

/// The rendezvous score used by the rendezvous router: a splitmix64-style
/// mix of (job, shard). Exposed so tests can pin the assignment function
/// itself, not just its observable effects.
std::uint64_t rendezvous_score(ItemId job, std::size_t shard) noexcept;

}  // namespace dvbp::cloud
