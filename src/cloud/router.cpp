#include "cloud/router.hpp"

#include <atomic>
#include <stdexcept>

namespace dvbp::cloud {

RouterKind parse_router(std::string_view name) {
  if (name == "round-robin") return RouterKind::kRoundRobin;
  if (name == "rendezvous") return RouterKind::kRendezvous;
  if (name == "least-usage") return RouterKind::kLeastUsage;
  throw std::invalid_argument(
      "parse_router: unknown router '" + std::string(name) +
      "' (expected round-robin | rendezvous | least-usage)");
}

std::string_view router_name(RouterKind kind) noexcept {
  switch (kind) {
    case RouterKind::kRoundRobin: return "round-robin";
    case RouterKind::kRendezvous: return "rendezvous";
    case RouterKind::kLeastUsage: return "least-usage";
  }
  return "unknown";
}

std::uint64_t rendezvous_score(ItemId job, std::size_t shard) noexcept {
  // splitmix64 finalizer over a job/shard combination. Any fixed mix works;
  // what matters is that the score depends on nothing but (job, shard).
  std::uint64_t x = static_cast<std::uint64_t>(job) * 0x9E3779B97F4A7C15ull ^
                    (static_cast<std::uint64_t>(shard) + 1) *
                        0xC2B2AE3D27D4EB4Full;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

namespace {

class RoundRobinRouter final : public Router {
 public:
  explicit RoundRobinRouter(std::size_t shards) : shards_(shards) {}
  RouterKind kind() const noexcept override {
    return RouterKind::kRoundRobin;
  }
  std::size_t route(ItemId, std::span<const double>) noexcept override {
    return next_.fetch_add(1, std::memory_order_relaxed) % shards_;
  }
  std::uint64_t persistent_state() const noexcept override {
    return next_.load(std::memory_order_relaxed);
  }
  void restore_persistent_state(std::uint64_t v) noexcept override {
    next_.store(v, std::memory_order_relaxed);
  }

 private:
  std::size_t shards_;
  std::atomic<std::uint64_t> next_{0};
};

class RendezvousRouter final : public Router {
 public:
  explicit RendezvousRouter(std::size_t shards) : shards_(shards) {}
  RouterKind kind() const noexcept override {
    return RouterKind::kRendezvous;
  }
  std::size_t route(ItemId job, std::span<const double>) noexcept override {
    std::size_t best = 0;
    std::uint64_t best_score = rendezvous_score(job, 0);
    for (std::size_t s = 1; s < shards_; ++s) {
      const std::uint64_t score = rendezvous_score(job, s);
      if (score > best_score) {
        best = s;
        best_score = score;
      }
    }
    return best;
  }

 private:
  std::size_t shards_;
};

class LeastUsageRouter final : public Router {
 public:
  explicit LeastUsageRouter(std::size_t shards) : shards_(shards) {}
  RouterKind kind() const noexcept override {
    return RouterKind::kLeastUsage;
  }
  std::size_t route(ItemId, std::span<const double> loads) noexcept override {
    // Ties break toward the lowest shard index, so a cold start with all
    // estimates equal degrades to filling shard 0 first until the pending
    // counters (folded into `loads` by the service) push traffic outward.
    std::size_t best = 0;
    for (std::size_t s = 1; s < loads.size() && s < shards_; ++s) {
      if (loads[s] < loads[best]) best = s;
    }
    return best;
  }

 private:
  std::size_t shards_;
};

}  // namespace

std::unique_ptr<Router> make_router(RouterKind kind, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("make_router: shards must be >= 1");
  }
  switch (kind) {
    case RouterKind::kRoundRobin:
      return std::make_unique<RoundRobinRouter>(shards);
    case RouterKind::kRendezvous:
      return std::make_unique<RendezvousRouter>(shards);
    case RouterKind::kLeastUsage:
      return std::make_unique<LeastUsageRouter>(shards);
  }
  throw std::invalid_argument("make_router: unknown router kind");
}

}  // namespace dvbp::cloud
