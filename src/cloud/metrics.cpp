#include "cloud/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/event.hpp"

namespace dvbp::cloud {

double StepSeries::time_average() const noexcept {
  if (steps.size() < 2) return steps.empty() ? 0.0 : steps.back().second;
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    const double len = steps[i + 1].first - steps[i].first;
    weighted += steps[i].second * len;
    total += len;
  }
  return total > 0.0 ? weighted / total : steps.back().second;
}

double StepSeries::peak() const noexcept {
  double p = 0.0;
  for (const auto& [t, v] : steps) p = std::max(p, v);
  return p;
}

StepSeries open_bin_series(const SimResult& sim) {
  if (sim.timeline.empty()) {
    throw std::invalid_argument(
        "open_bin_series: run the simulation with record_timeline");
  }
  StepSeries s;
  s.steps.reserve(sim.timeline.size());
  for (const auto& [t, n] : sim.timeline) {
    s.steps.emplace_back(t, static_cast<double>(n));
  }
  return s;
}

StepSeries utilization_series(const Instance& inst, const SimResult& sim) {
  if (sim.timeline.empty()) {
    throw std::invalid_argument(
        "utilization_series: run the simulation with record_timeline");
  }
  StepSeries s;
  s.steps.reserve(sim.timeline.size());
  const double d = static_cast<double>(inst.dim());
  for (const auto& [t, n] : sim.timeline) {
    if (n == 0) {
      s.steps.emplace_back(t, 0.0);
      continue;
    }
    const double used = inst.load_at(t).l1() / d;
    s.steps.emplace_back(t, used / static_cast<double>(n));
  }
  return s;
}

}  // namespace dvbp::cloud
