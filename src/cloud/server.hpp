// Server specification: the physical/rented machine type of the cloud
// scenarios (paper Sec. 1 motivation). A cluster rents identical servers of
// one spec; job demands in raw units are normalized against the capacity
// vector to obtain the unit-bin DVBP instance.
#pragma once

#include <string>
#include <vector>

#include "core/rvec.hpp"

namespace dvbp::cloud {

struct ServerSpec {
  std::string name;         ///< e.g. "gpu.4xlarge"
  std::vector<std::string> resource_names;  ///< e.g. {"vCPU","GiB","Gbps"}
  RVec capacity;            ///< per-resource capacity, raw units (> 0 each)

  /// Throws std::invalid_argument when capacity/resource names disagree or
  /// any capacity is non-positive.
  void validate() const;

  /// demand (raw units) -> normalized size in [0,1]^d. Throws when the
  /// demand exceeds capacity in some dimension.
  RVec normalize(const RVec& demand) const;
};

}  // namespace dvbp::cloud
