// ShardedDispatcher: a thread-safe placement service over K Dispatcher
// shards.
//
// The paper's allocator is inherently sequential: every placement decision
// depends on the full bin state. To serve heavy arrival traffic the service
// layer partitions the stream instead -- K independent Dispatcher shards,
// each owned by a dedicated worker thread and fed through a bounded MPSC
// queue. A Router (cloud/router.hpp) picks the shard at admission time, in
// the producer's thread; the job's departure is steered to the same shard,
// so each shard observes a self-consistent substream and its competitive
// behavior is exactly that of a serial Dispatcher on that substream.
//
// Equivalence contract (pinned by tests/test_sharded_parity.cpp):
//   * K = 1, any router: the service reproduces the serial Dispatcher --
//     and hence simulate() -- bin for bin on any monotone event feed.
//   * K > 1: shard s's packing equals a serial Dispatcher fed shard s's
//     substream in admission order, and the global cost is the sum of the
//     per-shard costs at every timestamp.
//
// Memory layout: each shard's Dispatcher owns its own slab allocators and
// SoA open-bin table (core/open_bin_table.hpp, core/pool.hpp), so the
// SIMD feasibility scan and the pooled usage-node recycling are per-shard
// and share no cache lines across workers. The least-usage router's
// load_snapshot is refreshed from the shard table's contiguous lanes
// (Dispatcher::total_active_load), not by walking BinState objects.
//
// Timestamps: each worker applies its queue in FIFO order and clamps event
// times to be monotone within the shard (an op whose timestamp lags the
// shard clock is applied at the shard clock, the way an ingestion front-end
// stamps requests). With a single producer the feed is already monotone and
// no clamping ever fires.
//
// Consistency: cost_so_far() / open_bins() / jobs_active() aggregate the
// shards under their mutexes and are safe to call at any time, but reflect
// only *applied* ops -- call drain() first for an exact figure. snapshot()
// and shard_packing() additionally require quiescence (drain() and no
// concurrent producers) and materialize real Packing objects.
//
// Observability: with a MetricRegistry attached, each shard registers
//   dvbp.shard.<i>.queue_depth            gauge, ops waiting in the queue
//   dvbp.shard.<i>.batch_size             histogram, ops per drain
//   dvbp.shard.<i>.placement_latency_ns   histogram, enqueue -> applied
//   dvbp.shard.<i>.ops_applied_total      counter, survives shutdown
// and the shard's Dispatcher feeds the shared dvbp.alloc.* instruments
// (aggregated across shards) plus an optional per-shard Tracer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cloud/router.hpp"
#include "core/dispatcher.hpp"
#include "core/packing.hpp"
#include "core/policies/policy.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "persist/journal.hpp"
#include "persist/recovery.hpp"
#include "tenancy/accountant.hpp"
#include "tenancy/arbiter.hpp"

namespace dvbp::obs {
class Tracer;  // obs/trace.hpp
}  // namespace dvbp::obs

namespace dvbp::cloud {

struct ShardedOptions {
  std::size_t shards = 1;
  RouterKind router = RouterKind::kRoundRobin;
  double bin_capacity = 1.0;
  /// Per-shard queue bound; producers block when a shard's queue is full.
  std::size_t queue_capacity = 4096;
  /// Max ops a worker applies per drain (one lock round-trip per batch).
  std::size_t max_batch = 256;
  /// Applied ops between refreshes of the shard load snapshot the
  /// least-usage router reads.
  std::size_t snapshot_every = 64;
  /// Borrowed, nullable; receives the per-shard queue/batch/latency
  /// instruments and the shared dvbp.alloc.* allocator metrics.
  obs::MetricRegistry* metrics = nullptr;
  /// Borrowed per-shard tracers: empty (tracing off) or size == shards.
  std::vector<obs::Tracer*> shard_tracers;

  // --- Durability (src/persist/, docs/DURABILITY.md) -------------------

  /// Root journal directory; empty disables journaling. Each shard worker
  /// owns `<journal_dir>/shard-<s>` exclusively -- journal appends never
  /// take a cross-shard lock. Construction recovers every shard from its
  /// directory (checkpoint restore + journal replay) before the workers
  /// start, rebuilding the global job table and router state.
  std::string journal_dir;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kInterval;
  std::size_t fsync_interval_ops = 256;
  /// Per-shard: checkpoint after this many journaled ops; 0 disables.
  std::size_t checkpoint_every = 0;

  // --- Multi-tenancy (src/tenancy/, docs/TENANCY.md) --------------------

  /// Number of tenants; 0 disables tenancy entirely (no accountants, no
  /// per-arrival tenant bookkeeping -- the pre-tenancy behavior, bit for
  /// bit). When > 0 every shard owns a tenancy::UsageAccountant hooked
  /// into its Dispatcher, arrivals carry their tenant label through the
  /// queue and the journal, and settle_tenants() merges the shard ledgers
  /// into an Arbiter settlement at quiescence.
  std::uint32_t tenants = 0;
};

/// Knobs for rebalance_shards() (docs/MIGRATION.md). A move is a
/// depart-on-source + arrive-on-destination under the same global job id,
/// journaled on both shards (source made durable first, so a crash in
/// between can only lose the destination arrival -- the job recovers as
/// departed -- never duplicate it).
struct ShardRebalanceConfig {
  /// Trigger: move while max shard load > skew_ratio * min shard load.
  double skew_ratio = 1.5;
  /// Stop once the absolute max-min load gap falls below this.
  double min_gap = 0.25;
  /// Migration budget: at most this many jobs moved per call.
  std::size_t max_moves = 16;
};

struct ShardRebalanceReport {
  std::size_t moves = 0;
  double moved_volume = 0.0;  ///< sum of moved jobs' L1 sizes
  double skew_before = 0.0;   ///< max/min load ratio at entry
  double skew_after = 0.0;    ///< max/min load ratio at exit
};

/// Completion hook for asynchronous submissions (the network front-end,
/// src/net/server.cpp). The owning shard worker calls op_applied() exactly
/// once per accepted try_arrive/try_depart, after the op has been applied
/// to the shard's Dispatcher (and appended to its journal when durability
/// is on), *before* the op counts as applied for drain() -- so when
/// drain() returns every accepted op's completion has already fired.
/// Called from shard worker threads with no shard lock held; it must not
/// block on anything that waits for shard progress.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  /// `cookie` is the value passed at submission; `job` is the service
  /// global job id of the op.
  virtual void op_applied(std::uint64_t cookie, JobId job) noexcept = 0;
};

class ShardedDispatcher {
 public:
  /// `factory(shard)` builds the policy instance shard `shard` owns; it is
  /// called once per shard at construction (policies are stateful and not
  /// thread-safe, so they are never shared). Throws std::invalid_argument
  /// on bad options.
  using PolicyFactory = std::function<PolicyPtr(std::size_t shard)>;
  ShardedDispatcher(std::size_t dim, const PolicyFactory& factory,
                    ShardedOptions options = {});

  /// Drains every queued op, then stops and joins the workers: shutdown
  /// with a non-empty queue still applies everything already enqueued.
  /// Worker-side errors are swallowed here (read them via drain() before
  /// destruction if you care).
  ~ShardedDispatcher();

  ShardedDispatcher(const ShardedDispatcher&) = delete;
  ShardedDispatcher& operator=(const ShardedDispatcher&) = delete;

  /// Admits a job: validates the size, routes it to a shard, and enqueues
  /// the placement (applied asynchronously by the shard worker, in FIFO
  /// order). Returns the service-global job id immediately. Blocks while
  /// the target shard's queue is full. Thread-safe.
  JobId arrive(Time now, RVec size,
               Time expected_departure =
                   std::numeric_limits<Time>::infinity(),
               TenantId tenant = kNoTenant);

  /// Marks `job` finished: enqueues the departure on the shard that owns
  /// it. Throws std::invalid_argument for unknown or already-departed jobs
  /// (checked eagerly, so racing double-departs fail deterministically in
  /// exactly one caller). Thread-safe.
  void depart(Time now, JobId job);

  // --- Asynchronous admission (the network front-end) ------------------
  //
  // Non-blocking variants for callers that must never park a thread on a
  // full shard queue (an epoll event loop): instead of blocking, they
  // return "no" and the caller converts that into backpressure (a typed
  // RETRY_LATER response). When a sink is supplied, the shard worker calls
  // sink->op_applied(cookie, job) once the op has been applied -- the
  // completion hookup that lets a server answer a request only when the
  // placement actually happened.

  /// Like arrive(), but returns std::nullopt instead of blocking when the
  /// routed shard's queue is full (the op is NOT admitted; a burned job id
  /// is retired internally). Validation errors still throw. Thread-safe.
  std::optional<JobId> try_arrive(
      Time now, RVec size,
      Time expected_departure = std::numeric_limits<Time>::infinity(),
      std::shared_ptr<CompletionSink> sink = nullptr,
      std::uint64_t cookie = 0, TenantId tenant = kNoTenant);

  /// Like depart(), but returns false instead of blocking when the owning
  /// shard's queue is full (the job is NOT marked departed and the caller
  /// may retry). Unknown/double departs still throw. Thread-safe.
  bool try_depart(Time now, JobId job,
                  std::shared_ptr<CompletionSink> sink = nullptr,
                  std::uint64_t cookie = 0);

  /// Blocks until every op enqueued before the call has been applied, then
  /// rethrows the first worker-side error, if any.
  void drain();

  /// Forces an fsync on every live shard journal (no-op when durability is
  /// off). The graceful-drain path calls this after drain() so that an
  /// acknowledged-then-drained state is on disk even under
  /// FsyncPolicy::kInterval. Thread-safe. A journal that fails here is
  /// poisoned exactly as a worker-side failure would poison it; the error
  /// surfaces through the next drain().
  void sync_journals();

  // --- Global view -----------------------------------------------------

  std::size_t dim() const noexcept { return dim_; }
  std::size_t shards() const noexcept { return shards_.size(); }
  RouterKind router() const noexcept { return router_->kind(); }

  /// Ops admitted (arrivals + departures enqueued so far). Summed over the
  /// shards; exact once the producers that matter have returned.
  std::uint64_t ops_enqueued() const noexcept;
  /// Ops the workers have applied so far.
  std::uint64_t ops_applied() const;

  std::size_t jobs_admitted() const;
  /// Shard `job` was routed to (fixed at arrive()).
  std::size_t shard_of(JobId job) const;

  /// Sum of the per-shard eq. (1) costs at `at` -- exact for historical
  /// timestamps, reflects applied ops only. Thread-safe.
  double cost_so_far(Time at) const;
  std::size_t open_bins() const;
  std::size_t bins_opened() const;
  std::size_t jobs_active() const;

  // --- Per-shard view --------------------------------------------------

  double shard_cost_so_far(std::size_t shard, Time at) const;
  std::size_t shard_open_bins(std::size_t shard) const;
  std::size_t shard_bins_opened(std::size_t shard) const;
  std::size_t shard_jobs_admitted(std::size_t shard) const;

  // --- Quiescent snapshots (drain() first; throw std::logic_error while
  // --- ops are in flight) ----------------------------------------------

  /// Shard `shard`'s packing in shard-local job/bin ids -- directly
  /// comparable against a serial Dispatcher fed the shard's substream.
  Packing shard_packing(std::size_t shard) const;

  /// The merged global packing: bin ids renumbered shard-major (shard 0's
  /// bins first, in opening order), items as service-global job ids.
  Packing snapshot() const;

  /// Global job id of shard-local job `local` on `shard`.
  JobId global_job(std::size_t shard, JobId local) const;

  /// The job's admission record on its shard (applied, possibly clamped,
  /// arrival time; actual departure once departed). Quiescent only.
  const Item& job_item(JobId job) const;

  /// How shard `shard` recovered at construction (all-defaults when
  /// journaling is off or the directory was empty: a cold start).
  const persist::RecoveryReport& shard_recovery(std::size_t shard) const;

  /// Shard-level rebalancing: while the shard loads skew beyond
  /// `config.skew_ratio`, moves jobs (largest first, bounded by half the
  /// load gap) from the most- to the least-loaded shard, re-routing each
  /// job's ownership so later departs land on the new shard. Requires
  /// quiescence (drain() first, no concurrent producers) -- the whole
  /// call runs with the service idle, mutating shard state under the
  /// shard mutexes and bypassing the queues. At most `config.max_moves`
  /// jobs move per call. Journaled when durability is on.
  ShardRebalanceReport rebalance_shards(
      Time now, const ShardRebalanceConfig& config = {});

  /// Read-only view of shard `shard`'s live dispatcher, for invariant
  /// checking in tests. Quiescent only.
  const Dispatcher& shard_dispatcher(std::size_t shard) const;

  // --- Multi-tenancy (ShardedOptions::tenants > 0 only) -----------------

  /// Quiescent credit settlement: closes each shard accountant's epoch at
  /// `now`, merges the per-tenant usage integrals across shards, settles
  /// `arbiter` with the merged vector, and -- when durability is on --
  /// journals the settled credit state as one kTenantCredits frame on
  /// shard 0 (recovered via shard_recovery(0).tenant_credits). Returns the
  /// merged per-tenant usage of the epoch (the fairness tracker's input).
  /// Requires quiescence, like snapshot(). Throws std::logic_error when
  /// tenancy is off, std::invalid_argument on a tenant-count mismatch.
  std::vector<double> settle_tenants(Time now, tenancy::Arbiter& arbiter);

  /// Shard `shard`'s usage ledger; null when tenancy is off. Quiescent
  /// reads only (the owning worker mutates it on every op).
  const tenancy::UsageAccountant* shard_accountant(std::size_t shard) const;

 private:
  struct Op {
    enum class Kind : std::uint8_t { kArrive, kDepart } kind = Kind::kArrive;
    Time time = 0.0;
    JobId job = kNoItem;  // global id
    RVec size;            // arrivals only
    Time expected_departure = 0.0;
    TenantId tenant = kNoTenant;  // arrivals only
    std::chrono::steady_clock::time_point enqueued{};  // metrics only
    std::shared_ptr<CompletionSink> sink;  // null for synchronous callers
    std::uint64_t cookie = 0;
  };

  /// A fired-after-apply completion, staged by apply_batch and delivered
  /// by the worker outside the shard lock.
  struct Completion {
    std::shared_ptr<CompletionSink> sink;
    std::uint64_t cookie = 0;
    JobId job = kNoItem;
  };

  struct Shard {
    // Placement state: guarded by `mu`.
    mutable std::mutex mu;
    PolicyPtr policy;
    std::unique_ptr<obs::Observer> observer;  // null when obs is off
    std::unique_ptr<Dispatcher> dispatcher;
    /// Per-shard usage ledger (null when tenancy is off); hooked into the
    /// dispatcher, so it accrues under `mu` with every applied op.
    std::unique_ptr<tenancy::UsageAccountant> accountant;
    std::vector<JobId> global_of_local;  // local JobId -> global JobId

    // Queue: guarded by `qmu`.
    std::mutex qmu;
    std::condition_variable not_full;
    std::condition_variable not_empty;
    std::deque<Op> queue;
    bool stop = false;
    /// queue.size() mirror, maintained inside qmu critical sections; lets
    /// the worker spin-poll for new work without taking the lock.
    std::atomic<std::size_t> qsize{0};
    std::atomic<bool> stopping{false};
    /// Ops enqueued to this shard. Kept per-shard (and summed on read) so
    /// concurrent producers do not serialize on one global counter line.
    std::atomic<std::uint64_t> ops_enqueued{0};

    // Router signals (written by the worker / producers, read by route()).
    std::atomic<double> load_snapshot{0.0};
    std::atomic<std::int64_t> pending_arrivals{0};

    // Cached instruments (null when metrics are off).
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* placement_latency = nullptr;
    obs::Counter* ops_applied_total = nullptr;

    // Durability (null/default when journaling is off). The journal is
    // owned by this shard's worker: appends/commits happen inside
    // apply_batch under `mu`, one commit per batch (group commit).
    std::string journal_path;  ///< <journal_dir>/shard-<s>
    std::unique_ptr<persist::JournalWriter> journal;
    persist::RecoveryReport recovery;
    std::uint64_t ops_since_checkpoint = 0;
    bool journal_dead = false;  ///< sticky after a persistence failure

    std::thread worker;
  };

  /// Per-job admission record. Lives in chunked, pointer-stable storage so
  /// the arrive/depart hot paths never share a lock: ids come from an
  /// atomic counter, `shard`/`departed` are per-record atomics, and
  /// `local` is written by the owning shard's worker only (readers must be
  /// quiescent; the happens-before edge is the ops_applied_ release/
  /// acquire pair in drain()).
  struct JobRec {
    std::atomic<std::uint32_t> shard{0};
    std::atomic<bool> departed{false};  // set eagerly in depart()
    JobId local = kNoItem;              // written by the worker when applied
  };

  /// Job records are allocated in chunks of 2^kJobChunkBits; the chunk
  /// directory is a fixed array of atomic pointers, so readers index it
  /// without locks. Caps the service at kMaxChunks << kJobChunkBits
  /// (~67M) jobs -- far beyond any single run, and checked in arrive().
  static constexpr std::size_t kJobChunkBits = 13;
  static constexpr std::size_t kJobChunkSize = 1u << kJobChunkBits;
  static constexpr std::size_t kMaxChunks = 1u << 13;

  JobRec& job_rec(JobId job) const {
    return job_chunks_[job >> kJobChunkBits].load(
        std::memory_order_acquire)[job & (kJobChunkSize - 1)];
  }

  /// Validation, routing, job-id allocation, and record setup shared by
  /// arrive() and try_arrive(); returns the ready-to-enqueue op and the
  /// routed shard via `target_out`.
  Op prepare_arrive(Time now, RVec size, Time expected_departure,
                    std::shared_ptr<CompletionSink> sink,
                    std::uint64_t cookie, TenantId tenant,
                    std::size_t& target_out);
  void enqueue(std::size_t shard_idx, Op op);
  /// Non-blocking enqueue: returns false (leaving `op` untouched) when the
  /// shard queue is at capacity or shutdown has started.
  bool try_enqueue(std::size_t shard_idx, Op& op);
  void worker_loop(std::size_t shard_idx);
  void apply_batch(Shard& shard, std::vector<Op>& batch,
                   std::vector<Completion>& completions);
  void require_quiescent() const;
  JobRec& checked_job_rec(JobId job, const char* caller) const;

  std::string shard_journal_dir(std::size_t shard_idx) const;
  void recover_shard(std::size_t shard_idx);
  void rebuild_job_table();
  void checkpoint_shard(Shard& shard);
  void record_worker_error();

  std::size_t dim_;
  ShardedOptions options_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_job_{0};
  std::array<std::atomic<JobRec*>, kMaxChunks> job_chunks_{};
  std::mutex chunk_mu_;  // serializes chunk allocation only

  std::atomic<std::uint64_t> ops_applied_{0};
  std::atomic<int> drain_waiters_{0};
  mutable std::mutex drain_mu_;
  mutable std::condition_variable drain_cv_;
  mutable std::mutex error_mu_;
  std::exception_ptr worker_error_;        // guarded by error_mu_
};

}  // namespace dvbp::cloud
