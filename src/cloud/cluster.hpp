// Cluster: the application-facing front-end. Jobs with raw resource
// demands are dispatched online onto rented servers of one spec using any
// dvbp Policy; the report carries the rental ledger, the bill under a
// chosen billing model, and utilization metrics.
//
// This is the layer the paper's motivating scenarios live in: VM placement
// on physical servers (provider view) and cloud gaming session dispatch
// onto rented servers (user view).
#pragma once

#include <string>
#include <vector>

#include "cloud/billing.hpp"
#include "cloud/server.hpp"
#include "core/policies/policy.hpp"
#include "core/simulator.hpp"

namespace dvbp::cloud {

struct Job {
  std::string name;      ///< free-form label ("player-42", "vm-web-3")
  Time arrival = 0.0;
  Time departure = 0.0;
  RVec demand;           ///< raw units, same dimension as the ServerSpec
};

struct ServerRental {
  BinId server = kNoBin;
  Interval usage;
  double bill = 0.0;
  std::size_t jobs_served = 0;
};

struct ClusterReport {
  std::size_t servers_rented = 0;    ///< total distinct rentals
  std::size_t peak_concurrent = 0;   ///< max servers active at once
  double total_usage_time = 0.0;     ///< the DVBP objective, eq. (1)
  double total_bill = 0.0;           ///< under the billing model
  /// Time-average fraction of rented capacity actually used (mean over
  /// dimensions of demand-volume / capacity-volume).
  double avg_utilization = 0.0;
  std::vector<ServerRental> rentals;
  /// job index -> server that served it.
  std::vector<BinId> placement;
};

/// Dispatches `jobs` in arrival order with `policy` onto servers of `spec`,
/// billing each rental with `billing`. Throws std::invalid_argument for
/// jobs that could never fit a server. `observer` (borrowed, nullable)
/// receives per-decision telemetry from the underlying engine (see
/// obs/observer.hpp).
ClusterReport run_cluster(const ServerSpec& spec, std::vector<Job> jobs,
                          Policy& policy, const BillingModel& billing,
                          obs::Observer* observer = nullptr);

}  // namespace dvbp::cloud
