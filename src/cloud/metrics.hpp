// Timeline metrics over a finished simulation: open-server counts and
// utilization as piecewise-constant time series, plus summary statistics.
#pragma once

#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/simulator.hpp"

namespace dvbp::cloud {

/// A right-open step function: value of step i holds on [t_i, t_{i+1}).
struct StepSeries {
  std::vector<std::pair<Time, double>> steps;

  /// Time-average of the series over its support (0 when empty/degenerate).
  double time_average() const noexcept;
  double peak() const noexcept;
};

/// Open-bin counts over time. Requires SimOptions::record_timeline.
StepSeries open_bin_series(const SimResult& sim);

/// Fraction of open capacity in use over time (mean over dimensions of
/// total active demand / number of open bins). Requires record_timeline.
StepSeries utilization_series(const Instance& inst, const SimResult& sim);

}  // namespace dvbp::cloud
