#include "cloud/sharded_dispatcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/serial.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/fault.hpp"

namespace dvbp::cloud {

namespace {

/// Powers-of-two bounds for the ops-per-drain histogram.
std::vector<double> batch_size_bounds(std::size_t max_batch) {
  std::vector<double> bounds;
  for (std::size_t b = 1; b < max_batch; b *= 2) {
    bounds.push_back(static_cast<double>(b));
  }
  bounds.push_back(static_cast<double>(max_batch));
  return bounds;
}

}  // namespace

ShardedDispatcher::ShardedDispatcher(std::size_t dim,
                                     const PolicyFactory& factory,
                                     ShardedOptions options)
    : dim_(dim), options_(std::move(options)) {
  if (dim_ == 0) {
    throw std::invalid_argument("ShardedDispatcher: dim must be >= 1");
  }
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedDispatcher: shards must be >= 1");
  }
  if (options_.bin_capacity < 1.0) {
    throw std::invalid_argument(
        "ShardedDispatcher: bin_capacity must be >= 1");
  }
  if (options_.queue_capacity == 0 || options_.max_batch == 0 ||
      options_.snapshot_every == 0) {
    throw std::invalid_argument(
        "ShardedDispatcher: queue_capacity, max_batch, and snapshot_every "
        "must be >= 1");
  }
  if (!options_.shard_tracers.empty() &&
      options_.shard_tracers.size() != options_.shards) {
    throw std::invalid_argument(
        "ShardedDispatcher: shard_tracers must be empty or have one entry "
        "per shard");
  }
  if (!factory) {
    throw std::invalid_argument("ShardedDispatcher: null policy factory");
  }

  router_ = make_router(options_.router, options_.shards);

  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = factory(s);
    if (shard->policy == nullptr) {
      throw std::invalid_argument(
          "ShardedDispatcher: policy factory returned null for shard " +
          std::to_string(s));
    }
    obs::Tracer* tracer =
        options_.shard_tracers.empty() ? nullptr : options_.shard_tracers[s];
    if (options_.metrics != nullptr || tracer != nullptr) {
      shard->observer =
          std::make_unique<obs::Observer>(options_.metrics, tracer);
    }
    shard->dispatcher = std::make_unique<Dispatcher>(
        dim_, *shard->policy, options_.bin_capacity, shard->observer.get());
    if (options_.tenants > 0) {
      shard->accountant =
          std::make_unique<tenancy::UsageAccountant>(options_.tenants);
      shard->dispatcher->set_usage_hook(shard->accountant.get());
    }
    if (options_.metrics != nullptr) {
      const std::string prefix = "dvbp.shard." + std::to_string(s) + ".";
      shard->queue_depth = &options_.metrics->gauge(prefix + "queue_depth");
      shard->batch_size = &options_.metrics->histogram(
          prefix + "batch_size", batch_size_bounds(options_.max_batch));
      shard->placement_latency =
          &options_.metrics->histogram(prefix + "placement_latency_ns");
      shard->ops_applied_total =
          &options_.metrics->counter(prefix + "ops_applied_total");
    }
    shards_.push_back(std::move(shard));
  }
  // Durable mode: recover every shard from its journal directory -- each
  // shard independently, no cross-shard coordination -- then rebuild the
  // global job table and router state from the recovered shards. Runs
  // before the workers start, so recovery needs no locks.
  if (!options_.journal_dir.empty()) {
    for (std::size_t s = 0; s < shards_.size(); ++s) recover_shard(s);
    rebuild_job_table();
  }
  // Workers start only after every shard is fully constructed.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { worker_loop(s); });
  }
}

std::string ShardedDispatcher::shard_journal_dir(
    std::size_t shard_idx) const {
  return options_.journal_dir + "/shard-" + std::to_string(shard_idx);
}

void ShardedDispatcher::recover_shard(std::size_t shard_idx) {
  Shard& shard = *shards_[shard_idx];
  shard.journal_path = shard_journal_dir(shard_idx);
  persist::RecoveryManager manager(shard.journal_path, options_.metrics);
  // Journal frames carry service-global job ids; replay maps them onto
  // shard-local ids exactly the way the live path does (dense, in
  // admission order).
  std::unordered_map<JobId, JobId> local_of_global;
  shard.recovery = manager.run(
      [&](const persist::CheckpointData& ckpt) {
        if (ckpt.policy_name != shard.policy->name()) {
          throw persist::PersistError(
              "ShardedDispatcher: shard " + std::to_string(shard_idx) +
              " checkpoint was written by policy '" + ckpt.policy_name +
              "', refusing to restore into '" +
              std::string(shard.policy->name()) + "'");
        }
        serial::Reader disp_in(ckpt.dispatcher_state);
        shard.dispatcher->restore_state(disp_in);
        shard.policy->reset();
        serial::Reader pol_in(ckpt.policy_state);
        shard.policy->restore_state(pol_in);
        serial::Reader extra(ckpt.extra);
        const std::uint64_t n = extra.u64();
        shard.global_of_local.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
          const JobId global = static_cast<JobId>(extra.u64());
          local_of_global.emplace(global,
                                  static_cast<JobId>(
                                      shard.global_of_local.size()));
          shard.global_of_local.push_back(global);
        }
        // Tenancy checkpoints append the shard accountant's ledger after
        // the job map; pre-tenancy checkpoints simply end here.
        if (!extra.done()) {
          if (shard.accountant == nullptr) {
            throw persist::PersistError(
                "ShardedDispatcher: shard checkpoint carries tenant state "
                "but tenancy is off (set ShardedOptions::tenants)");
          }
          shard.accountant->restore_state(extra);
        }
        if (!extra.done()) {
          throw serial::SerialError(
              "ShardedDispatcher: trailing bytes in shard checkpoint");
        }
        if (shard.global_of_local.size() !=
            shard.dispatcher->jobs_admitted()) {
          throw persist::PersistError(
              "ShardedDispatcher: shard checkpoint job map does not match "
              "its dispatcher state");
        }
      },
      [&](const persist::JournalRecord& rec) {
        // The journaled time/expected-departure are the post-clamp values
        // the worker actually applied, so replay passes them verbatim.
        if (rec.kind == persist::OpKind::kArrive) {
          const JobId global = static_cast<JobId>(rec.job);
          shard.dispatcher->arrive(rec.time, rec.size,
                                   rec.expected_departure, rec.tenant);
          local_of_global.emplace(
              global,
              static_cast<JobId>(shard.global_of_local.size()));
          shard.global_of_local.push_back(global);
        } else if (rec.kind == persist::OpKind::kDepart) {
          const auto it = local_of_global.find(static_cast<JobId>(rec.job));
          if (it == local_of_global.end()) {
            throw persist::PersistError(
                "ShardedDispatcher: journal departs job " +
                std::to_string(rec.job) + " the shard never admitted");
          }
          shard.dispatcher->depart(rec.time, it->second);
        }
        // kAdvance: clock note only; the shard clock moves on apply.
        // kTenantCredits: captured into recovery.tenant_credits by run().
      });
  persist::JournalOptions jopts;
  jopts.fsync = options_.fsync;
  jopts.fsync_interval_ops = options_.fsync_interval_ops;
  jopts.metrics = options_.metrics;
  shard.journal = std::make_unique<persist::JournalWriter>(
      shard.journal_path, shard.recovery.next_seq, jopts);
  shard.load_snapshot.store(shard.dispatcher->total_active_load(),
                            std::memory_order_relaxed);
}

void ShardedDispatcher::rebuild_job_table() {
  std::uint64_t next = 0;
  for (const auto& shard : shards_) {
    for (const JobId global : shard->global_of_local) {
      next = std::max(next, static_cast<std::uint64_t>(global) + 1);
    }
  }
  if (next == 0) return;  // cold start
  if (next > static_cast<std::uint64_t>(kMaxChunks) * kJobChunkSize) {
    throw persist::PersistError(
        "ShardedDispatcher: recovered job ids exceed the job table");
  }
  next_job_.store(next, std::memory_order_release);
  const std::size_t chunks =
      (static_cast<std::size_t>(next) + kJobChunkSize - 1) >> kJobChunkBits;
  for (std::size_t c = 0; c < chunks; ++c) {
    job_chunks_[c].store(new JobRec[kJobChunkSize],
                         std::memory_order_release);
  }
  // Default every recovered id to "departed": an id whose arrival frame
  // did not survive on its shard (it was admitted but lost in the crash)
  // must make a stale depart() fail cleanly, not dereference kNoItem.
  for (std::uint64_t id = 0; id < next; ++id) {
    JobRec& rec = job_rec(static_cast<JobId>(id));
    rec.departed.store(true, std::memory_order_relaxed);
    rec.local = kNoItem;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    for (std::size_t local = 0; local < shard.global_of_local.size();
         ++local) {
      JobRec& rec = job_rec(shard.global_of_local[local]);
      // A cross-shard-migrated job (rebalance_shards: depart on the
      // source, arrive on the destination) appears in both shards'
      // journals. The shard where it is still active owns it; when it is
      // active nowhere (migrated then departed) the first claim stands.
      const bool active_here =
          shard.dispatcher->bin_of(static_cast<JobId>(local)) != kNoBin;
      if (rec.local != kNoItem && !active_here) continue;
      rec.shard.store(static_cast<std::uint32_t>(s),
                      std::memory_order_relaxed);
      rec.local = static_cast<JobId>(local);
      rec.departed.store(!active_here, std::memory_order_relaxed);
    }
  }
  // Round-robin's counter advanced once per admission in the original
  // run; rendezvous is a pure function and least-usage re-derives from
  // the load snapshots refreshed in recover_shard().
  router_->restore_persistent_state(next);
}

ShardedDispatcher::~ShardedDispatcher() {
  for (auto& shard : shards_) {
    shard->stopping.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(shard->qmu);
      shard->stop = true;
    }
    shard->not_empty.notify_all();
    shard->not_full.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  for (auto& chunk : job_chunks_) {
    delete[] chunk.load(std::memory_order_acquire);
  }
}

ShardedDispatcher::Op ShardedDispatcher::prepare_arrive(
    Time now, RVec size, Time expected_departure,
    std::shared_ptr<CompletionSink> sink, std::uint64_t cookie,
    TenantId tenant, std::size_t& target_out) {
  // Validate here, in the producer, so the asynchronous apply cannot throw
  // for caller mistakes (mirrors Dispatcher::arrive's checks).
  if (size.dim() != dim_) {
    throw std::invalid_argument(
        "ShardedDispatcher::arrive: dimension mismatch");
  }
  if (!size.is_nonnegative() || !size.fits_in_capacity(1.0)) {
    throw std::invalid_argument(
        "ShardedDispatcher::arrive: size outside [0,1]^d");
  }
  if (!(expected_departure > now)) {
    throw std::invalid_argument(
        "ShardedDispatcher::arrive: expected departure must exceed arrival");
  }

  std::size_t target = 0;
  if (router_->kind() == RouterKind::kLeastUsage) {
    std::vector<double> loads(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      // Snapshot load plus queued-but-unapplied arrivals: keeps a burst
      // from piling onto one shard between snapshot refreshes.
      loads[s] =
          shards_[s]->load_snapshot.load(std::memory_order_relaxed) +
          static_cast<double>(std::max<std::int64_t>(
              0, shards_[s]->pending_arrivals.load(
                     std::memory_order_relaxed)));
    }
    target = router_->route(0, loads);
  }

  const std::uint64_t id = next_job_.fetch_add(1, std::memory_order_relaxed);
  if (id >= static_cast<std::uint64_t>(kMaxChunks) * kJobChunkSize) {
    throw std::length_error(
        "ShardedDispatcher::arrive: job id space exhausted");
  }
  const JobId job = static_cast<JobId>(id);
  const std::size_t chunk = job >> kJobChunkBits;
  if (job_chunks_[chunk].load(std::memory_order_acquire) == nullptr) {
    std::lock_guard<std::mutex> lock(chunk_mu_);
    if (job_chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      job_chunks_[chunk].store(new JobRec[kJobChunkSize],
                               std::memory_order_release);
    }
  }
  if (router_->kind() != RouterKind::kLeastUsage) {
    target = router_->route(job, {});
  }
  job_rec(job).shard.store(static_cast<std::uint32_t>(target),
                           std::memory_order_release);

  Op op;
  op.kind = Op::Kind::kArrive;
  op.time = now;
  op.job = job;
  op.size = std::move(size);
  op.expected_departure = expected_departure;
  op.tenant = tenant;
  op.sink = std::move(sink);
  op.cookie = cookie;
  if (options_.metrics != nullptr) {
    op.enqueued = std::chrono::steady_clock::now();
  }
  if (router_->kind() == RouterKind::kLeastUsage) {
    // Only the least-usage router reads this; skip the shared-line RMW for
    // the routers that do not balance on load.
    shards_[target]->pending_arrivals.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  target_out = target;
  return op;
}

JobId ShardedDispatcher::arrive(Time now, RVec size,
                                Time expected_departure, TenantId tenant) {
  std::size_t target = 0;
  Op op = prepare_arrive(now, std::move(size), expected_departure, nullptr,
                         0, tenant, target);
  const JobId job = op.job;
  enqueue(target, std::move(op));
  return job;
}

std::optional<JobId> ShardedDispatcher::try_arrive(
    Time now, RVec size, Time expected_departure,
    std::shared_ptr<CompletionSink> sink, std::uint64_t cookie,
    TenantId tenant) {
  std::size_t target = 0;
  Op op = prepare_arrive(now, std::move(size), expected_departure,
                         std::move(sink), cookie, tenant, target);
  const JobId job = op.job;
  if (try_enqueue(target, op)) return job;
  // Rejected by backpressure: the job id was already published, so retire
  // it -- a stray depart() for it fails cleanly ("already departed") and
  // quiescent readers see local == kNoItem, like a recovered-but-lost id.
  job_rec(job).departed.store(true, std::memory_order_release);
  if (router_->kind() == RouterKind::kLeastUsage) {
    shards_[target]->pending_arrivals.fetch_sub(1, std::memory_order_relaxed);
  }
  return std::nullopt;
}

ShardedDispatcher::JobRec& ShardedDispatcher::checked_job_rec(
    JobId job, const char* caller) const {
  if (job >= next_job_.load(std::memory_order_acquire) ||
      job_chunks_[job >> kJobChunkBits].load(std::memory_order_acquire) ==
          nullptr) {
    throw std::invalid_argument(std::string("ShardedDispatcher::") + caller +
                                ": unknown job");
  }
  return job_rec(job);
}

void ShardedDispatcher::depart(Time now, JobId job) {
  JobRec& rec = checked_job_rec(job, "depart");
  // exchange() makes racing double-departs fail deterministically in
  // exactly one caller.
  if (rec.departed.exchange(true, std::memory_order_acq_rel)) {
    throw std::invalid_argument(
        "ShardedDispatcher::depart: job already departed");
  }
  const std::size_t target = rec.shard.load(std::memory_order_acquire);
  Op op;
  op.kind = Op::Kind::kDepart;
  op.time = now;
  op.job = job;
  if (options_.metrics != nullptr) {
    op.enqueued = std::chrono::steady_clock::now();
  }
  enqueue(target, std::move(op));
}

bool ShardedDispatcher::try_depart(Time now, JobId job,
                                   std::shared_ptr<CompletionSink> sink,
                                   std::uint64_t cookie) {
  JobRec& rec = checked_job_rec(job, "depart");
  if (rec.departed.exchange(true, std::memory_order_acq_rel)) {
    throw std::invalid_argument(
        "ShardedDispatcher::depart: job already departed");
  }
  const std::size_t target = rec.shard.load(std::memory_order_acquire);
  Op op;
  op.kind = Op::Kind::kDepart;
  op.time = now;
  op.job = job;
  op.sink = std::move(sink);
  op.cookie = cookie;
  if (options_.metrics != nullptr) {
    op.enqueued = std::chrono::steady_clock::now();
  }
  if (try_enqueue(target, op)) return true;
  // Backpressure: roll the departed flag back so the caller can retry.
  // Note the rollback is not linearizable against a *concurrent* depart of
  // the same job by another caller (it could observe "already departed"
  // during our window); the network front-end owns each job id via a
  // single connection, so the race cannot arise there.
  rec.departed.store(false, std::memory_order_release);
  return false;
}

void ShardedDispatcher::enqueue(std::size_t shard_idx, Op op) {
  Shard& shard = *shards_[shard_idx];
  shard.ops_enqueued.fetch_add(1, std::memory_order_relaxed);
  std::size_t depth;
  bool was_empty;
  {
    std::unique_lock<std::mutex> lock(shard.qmu);
    shard.not_full.wait(lock, [&] {
      return shard.stop || shard.queue.size() < options_.queue_capacity;
    });
    if (shard.stop) {
      throw std::logic_error(
          "ShardedDispatcher: enqueue after shutdown started");
    }
    was_empty = shard.queue.empty();
    shard.queue.push_back(std::move(op));
    depth = shard.queue.size();
    shard.qsize.store(depth, std::memory_order_release);
  }
  if (shard.queue_depth != nullptr) {
    shard.queue_depth->set(static_cast<double>(depth));
  }
  // The worker only sleeps on an empty queue (it rechecks the predicate
  // under qmu before waiting), so only the empty -> non-empty transition
  // needs a wakeup; skipping the rest keeps the producer hot path cheap.
  if (was_empty) shard.not_empty.notify_one();
}

bool ShardedDispatcher::try_enqueue(std::size_t shard_idx, Op& op) {
  Shard& shard = *shards_[shard_idx];
  std::size_t depth;
  bool was_empty;
  {
    std::unique_lock<std::mutex> lock(shard.qmu);
    if (shard.stop || shard.queue.size() >= options_.queue_capacity) {
      return false;
    }
    // Counted before the push (like enqueue(), which counts before even
    // taking the lock) so ops_applied_ can never transiently exceed
    // ops_enqueued() and fool require_quiescent().
    shard.ops_enqueued.fetch_add(1, std::memory_order_relaxed);
    was_empty = shard.queue.empty();
    shard.queue.push_back(std::move(op));
    depth = shard.queue.size();
    shard.qsize.store(depth, std::memory_order_release);
  }
  if (shard.queue_depth != nullptr) {
    shard.queue_depth->set(static_cast<double>(depth));
  }
  if (was_empty) shard.not_empty.notify_one();
  return true;
}

void ShardedDispatcher::worker_loop(std::size_t shard_idx) {
  Shard& shard = *shards_[shard_idx];
  std::vector<Op> batch;
  batch.reserve(options_.max_batch);
  std::vector<Completion> completions;
  for (;;) {
    // Spin briefly before sleeping: under sustained load the queue refills
    // within microseconds, and skipping the condvar round-trip (futex wake
    // + scheduler latency per empty->non-empty transition) is what keeps
    // a lightly-loaded shard's throughput from being wakeup-bound. Falls
    // through to a normal blocking wait when the spin finds nothing.
    for (int spin = 0;
         spin < 4000 &&
         shard.qsize.load(std::memory_order_acquire) == 0 &&
         !shard.stopping.load(std::memory_order_acquire);
         ++spin) {
      // Donate the slice periodically: on an oversubscribed machine the
      // producer that would refill this queue may be waiting for this very
      // core, and a blind spin would burn the whole quantum starving it.
      // With spare cores and nothing runnable, yield() returns immediately
      // and the loop stays hot.
      if ((spin & 63) == 63) std::this_thread::yield();
    }
    std::size_t depth_after;
    {
      std::unique_lock<std::mutex> lock(shard.qmu);
      shard.not_empty.wait(
          lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested and fully drained
      while (!shard.queue.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      depth_after = shard.queue.size();
      shard.qsize.store(depth_after, std::memory_order_release);
    }
    shard.not_full.notify_all();
    if (shard.queue_depth != nullptr) {
      shard.queue_depth->set(static_cast<double>(depth_after));
    }
    if (shard.batch_size != nullptr) {
      shard.batch_size->observe(static_cast<double>(batch.size()));
    }

    apply_batch(shard, batch, completions);

    // Completions fire after the batch's journal commit and outside the
    // shard lock, but BEFORE the applied counter publishes progress: when
    // drain() returns, every accepted op's completion has already run --
    // the guarantee the server's graceful drain leans on (every accepted
    // request gets its response before the drain snapshot is taken).
    for (Completion& c : completions) {
      c.sink->op_applied(c.cookie, c.job);
    }
    completions.clear();

    // Publish progress, then notify only if somebody is draining. Both
    // sides use seq_cst (Dekker pattern: applied-store/waiters-load here,
    // waiters-store/applied-load in drain()), and the empty lock keeps the
    // notify from slipping between the drainer's predicate check and its
    // wait.
    ops_applied_.fetch_add(batch.size());
    if (drain_waiters_.load() > 0) {
      { std::lock_guard<std::mutex> lock(drain_mu_); }
      drain_cv_.notify_all();
    }
    batch.clear();
  }
}

void ShardedDispatcher::apply_batch(Shard& shard, std::vector<Op>& batch,
                                    std::vector<Completion>& completions) {
  std::lock_guard<std::mutex> lock(shard.mu);
  Dispatcher& dispatcher = *shard.dispatcher;
  std::size_t since_snapshot = 0;
  std::size_t journaled_ops = 0;
  for (Op& op : batch) {
    if (op.sink != nullptr) {
      completions.push_back({std::move(op.sink), op.cookie, op.job});
    }
    try {
      // Per-shard monotone clamp: multiple producers can interleave, so an
      // op's timestamp may lag the shard clock; it is applied at the clock
      // (the way an ingestion front-end stamps requests). Single-producer
      // feeds are monotone and never clamped.
      const Time t = std::max(op.time, dispatcher.last_event_time());
      if (op.kind == Op::Kind::kArrive) {
        const JobId local = static_cast<JobId>(dispatcher.jobs_admitted());
        // The advisory departure can be overtaken by the clamp; it is only
        // a clairvoyant hint, so degrade it to "unknown" rather than throw.
        const Time expected =
            op.expected_departure > t
                ? op.expected_departure
                : std::numeric_limits<Time>::infinity();
        // The journal records exactly what arrive() is called with --
        // post-clamp time, degraded hint -- so replay reproduces the run
        // bit-exactly by passing the frame verbatim.
        RVec journal_size;
        const bool journal_op =
            shard.journal != nullptr && !shard.journal_dead;
        if (journal_op) journal_size = op.size;
        dispatcher.arrive(t, std::move(op.size), expected, op.tenant);
        shard.global_of_local.push_back(op.job);
        // `local` is worker-owned: the only other readers are the FIFO-
        // later depart op (applied by this same worker) and quiescent
        // accessors, which synchronize through ops_applied_ in drain().
        job_rec(op.job).local = local;
        if (router_->kind() == RouterKind::kLeastUsage) {
          shard.pending_arrivals.fetch_sub(1, std::memory_order_relaxed);
        }
        if (journal_op) {
          try {
            shard.journal->append(persist::OpKind::kArrive, t, op.job,
                                  expected, &journal_size, kNoBin, false,
                                  op.tenant);
            ++journaled_ops;
          } catch (...) {
            shard.journal_dead = true;
            record_worker_error();
          }
        }
      } else {
        dispatcher.depart(t, job_rec(op.job).local);
        if (shard.journal != nullptr && !shard.journal_dead) {
          try {
            shard.journal->append(persist::OpKind::kDepart, t, op.job);
            ++journaled_ops;
          } catch (...) {
            shard.journal_dead = true;
            record_worker_error();
          }
        }
      }
    } catch (...) {
      // A failure here is a service bug (producer-side validation screens
      // caller mistakes); remember the first error for drain() and keep
      // counting ops so nobody deadlocks waiting for them.
      record_worker_error();
    }
    if (shard.ops_applied_total != nullptr) shard.ops_applied_total->inc();
    if (shard.placement_latency != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - op.enqueued;
      shard.placement_latency->observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
    if (++since_snapshot >= options_.snapshot_every) {
      since_snapshot = 0;
      shard.load_snapshot.store(dispatcher.total_active_load(),
                                std::memory_order_relaxed);
    }
  }
  shard.load_snapshot.store(dispatcher.total_active_load(),
                            std::memory_order_relaxed);
  // Group commit: the whole drained batch goes down with one write(2) and
  // at most one fsync. A commit failure (I/O error, injected fault)
  // permanently kills this shard's journal -- memory may now be ahead of
  // the durable state, so the service must be abandoned and recovered; the
  // error surfaces through drain().
  if (shard.journal != nullptr && !shard.journal_dead && journaled_ops > 0) {
    try {
      shard.journal->commit();
      shard.ops_since_checkpoint += journaled_ops;
      if (options_.checkpoint_every > 0 &&
          shard.ops_since_checkpoint >= options_.checkpoint_every) {
        checkpoint_shard(shard);
      }
    } catch (...) {
      shard.journal_dead = true;
      record_worker_error();
    }
  }
}

void ShardedDispatcher::checkpoint_shard(Shard& shard) {
  // Never claim ops the journal could still lose.
  shard.journal->sync();
  persist::CheckpointData data;
  data.seq = shard.journal->next_seq() - 1;
  data.policy_name = std::string(shard.policy->name());
  serial::Writer disp_out;
  shard.dispatcher->save_state(disp_out);
  data.dispatcher_state = disp_out.take();
  serial::Writer pol_out;
  shard.policy->save_state(pol_out);
  data.policy_state = pol_out.take();
  serial::Writer extra;
  extra.u64(shard.global_of_local.size());
  for (const JobId global : shard.global_of_local) extra.u64(global);
  // Trailing accountant ledger, matching the optional tail recover_shard
  // reads; omitted entirely when tenancy is off.
  if (shard.accountant != nullptr) shard.accountant->save_state(extra);
  data.extra = extra.take();
  persist::write_checkpoint(shard.journal_path, data);
  shard.journal->rotate();
  persist::fault_point("checkpoint.truncated");
  shard.ops_since_checkpoint = 0;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("dvbp.persist.checkpoints_total").inc();
  }
}

void ShardedDispatcher::record_worker_error() {
  std::lock_guard<std::mutex> error_lock(error_mu_);
  if (!worker_error_) worker_error_ = std::current_exception();
}

const persist::RecoveryReport& ShardedDispatcher::shard_recovery(
    std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_recovery: bad shard");
  }
  return shards_[shard]->recovery;
}

std::uint64_t ShardedDispatcher::ops_enqueued() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->ops_enqueued.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedDispatcher::drain() {
  const std::uint64_t target = ops_enqueued();
  if (ops_applied_.load() < target) {
    drain_waiters_.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(drain_mu_);
      drain_cv_.wait(lock, [&] { return ops_applied_.load() >= target; });
    }
    drain_waiters_.fetch_sub(1);
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  if (worker_error_) std::rethrow_exception(worker_error_);
}

void ShardedDispatcher::sync_journals() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    // The worker touches the journal only inside apply_batch under
    // shard.mu, so holding it here excludes concurrent appends.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.journal == nullptr || shard.journal_dead) continue;
    try {
      shard.journal->sync();
    } catch (...) {
      shard.journal_dead = true;
      record_worker_error();
    }
  }
}

std::uint64_t ShardedDispatcher::ops_applied() const {
  return ops_applied_.load(std::memory_order_acquire);
}

std::size_t ShardedDispatcher::jobs_admitted() const {
  return static_cast<std::size_t>(
      next_job_.load(std::memory_order_acquire));
}

std::size_t ShardedDispatcher::shard_of(JobId job) const {
  return checked_job_rec(job, "shard_of")
      .shard.load(std::memory_order_acquire);
}

double ShardedDispatcher::cost_so_far(Time at) const {
  double total = 0.0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += shard_cost_so_far(s, at);
  }
  return total;
}

std::size_t ShardedDispatcher::open_bins() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dispatcher->open_bins();
  }
  return total;
}

std::size_t ShardedDispatcher::bins_opened() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dispatcher->bins_opened();
  }
  return total;
}

std::size_t ShardedDispatcher::jobs_active() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->dispatcher->jobs_active();
  }
  return total;
}

double ShardedDispatcher::shard_cost_so_far(std::size_t shard,
                                            Time at) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_cost_so_far: bad shard");
  }
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->dispatcher->cost_so_far(at);
}

std::size_t ShardedDispatcher::shard_open_bins(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_open_bins: bad shard");
  }
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->dispatcher->open_bins();
}

std::size_t ShardedDispatcher::shard_bins_opened(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_bins_opened: bad shard");
  }
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->dispatcher->bins_opened();
}

std::size_t ShardedDispatcher::shard_jobs_admitted(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_jobs_admitted: bad shard");
  }
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->dispatcher->jobs_admitted();
}

void ShardedDispatcher::require_quiescent() const {
  if (ops_applied_.load(std::memory_order_acquire) != ops_enqueued()) {
    throw std::logic_error(
        "ShardedDispatcher: snapshot requires quiescence (call drain() "
        "with no concurrent producers)");
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  if (worker_error_) std::rethrow_exception(worker_error_);
}

Packing ShardedDispatcher::shard_packing(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_packing: bad shard");
  }
  require_quiescent();
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  // assignment[j] = last bin j was packed into -- identical to a
  // records() scan without migration, and still correct when migration
  // lists a job in several bins (core/rebalancer.hpp).
  return shards_[shard]->dispatcher->packing();
}

Packing ShardedDispatcher::snapshot() const {
  require_quiescent();
  // Bin ids are renumbered shard-major: shard s's bins keep their relative
  // opening order and live at [offset(s), offset(s) + bins_opened(s)).
  std::vector<BinId> offsets(shards_.size(), 0);
  std::size_t total_bins = 0;
  std::size_t total_jobs = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    offsets[s] = static_cast<BinId>(total_bins);
    total_bins += shards_[s]->dispatcher->bins_opened();
    total_jobs += shards_[s]->dispatcher->jobs_admitted();
  }

  std::vector<BinId> assignment(total_jobs, kNoBin);
  std::vector<BinRecord> bins;
  bins.reserve(total_bins);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    const Shard& shard = *shards_[s];
    for (const BinRecord& rec : shard.dispatcher->records()) {
      BinRecord merged = rec;
      merged.id = rec.id + offsets[s];
      for (ItemId& item : merged.items) {
        item = shard.global_of_local[item];
      }
      bins.push_back(std::move(merged));
    }
    // Assignment comes from each shard's last-bin table, not the record
    // scan: under migration a job is listed in every bin it ever
    // occupied. A cross-shard-migrated job appears in two shards'
    // local tables; its final owner per the job table wins.
    for (std::size_t local = 0; local < shard.global_of_local.size();
         ++local) {
      const JobId global = shard.global_of_local[local];
      if (job_rec(global).shard.load(std::memory_order_acquire) !=
          static_cast<std::uint32_t>(s)) {
        continue;
      }
      assignment[global] =
          shard.dispatcher->last_bin_of(static_cast<JobId>(local)) +
          offsets[s];
    }
  }
  return Packing(std::move(assignment), std::move(bins));
}

JobId ShardedDispatcher::global_job(std::size_t shard, JobId local) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::global_job: bad shard");
  }
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  if (local >= shards_[shard]->global_of_local.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::global_job: unknown local job");
  }
  return shards_[shard]->global_of_local[local];
}

const Item& ShardedDispatcher::job_item(JobId job) const {
  require_quiescent();
  const JobRec& rec = checked_job_rec(job, "job_item");
  const std::uint32_t shard = rec.shard.load(std::memory_order_acquire);
  const JobId local = rec.local;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->dispatcher->items()[local];
}

const Dispatcher& ShardedDispatcher::shard_dispatcher(
    std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_dispatcher: bad shard");
  }
  require_quiescent();
  return *shards_[shard]->dispatcher;
}

const tenancy::UsageAccountant* ShardedDispatcher::shard_accountant(
    std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedDispatcher::shard_accountant: bad shard");
  }
  return shards_[shard]->accountant.get();
}

std::vector<double> ShardedDispatcher::settle_tenants(
    Time now, tenancy::Arbiter& arbiter) {
  require_quiescent();
  if (options_.tenants == 0) {
    throw std::logic_error(
        "ShardedDispatcher::settle_tenants: tenancy is off "
        "(ShardedOptions::tenants == 0)");
  }
  if (arbiter.num_tenants() != options_.tenants) {
    throw std::invalid_argument(
        "ShardedDispatcher::settle_tenants: arbiter tenant count does not "
        "match ShardedOptions::tenants");
  }
  // Close the epoch on every shard at the same instant, then merge the
  // per-tenant integrals. Quiescence makes the merged vector exact: no op
  // is mid-flight, so every shard's ledger covers the same history.
  std::vector<double> usage(options_.tenants, 0.0);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.accountant->on_advance(
        std::max(now, shard.accountant->last_event()),
        shard.dispatcher->open_bins());
    const std::vector<double> cut = shard.accountant->cut_epoch();
    for (std::uint32_t t = 0; t < options_.tenants; ++t) usage[t] += cut[t];
  }
  arbiter.settle(now, usage);
  // One authoritative credit frame, journaled on shard 0: recovery of that
  // shard restores the newest durably settled balances.
  Shard& shard0 = *shards_[0];
  std::lock_guard<std::mutex> lock(shard0.mu);
  if (shard0.journal != nullptr && !shard0.journal_dead) {
    try {
      shard0.journal->append_credits(now, arbiter.state_bytes());
      shard0.journal->commit();
      shard0.ops_since_checkpoint += 1;
    } catch (...) {
      shard0.journal_dead = true;
      record_worker_error();
    }
  }
  return usage;
}

namespace {

double load_skew(const std::vector<double>& loads) {
  const double mx = *std::max_element(loads.begin(), loads.end());
  const double mn = *std::min_element(loads.begin(), loads.end());
  if (mn <= 1e-12) {
    return mx <= 1e-12 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return mx / mn;
}

}  // namespace

ShardRebalanceReport ShardedDispatcher::rebalance_shards(
    Time now, const ShardRebalanceConfig& config) {
  require_quiescent();
  ShardRebalanceReport report;
  if (shards_.size() < 2) {
    report.skew_before = report.skew_after = 1.0;
    return report;
  }

  std::vector<double> loads(shards_.size(), 0.0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    loads[s] = shards_[s]->dispatcher->total_active_load();
  }
  report.skew_before = load_skew(loads);

  while (report.moves < config.max_moves) {
    const std::size_t src = static_cast<std::size_t>(
        std::max_element(loads.begin(), loads.end()) - loads.begin());
    const std::size_t dst = static_cast<std::size_t>(
        std::min_element(loads.begin(), loads.end()) - loads.begin());
    const double gap = loads[src] - loads[dst];
    if (gap < config.min_gap) break;
    if (loads[src] <= config.skew_ratio * loads[dst]) break;

    Shard& source = *shards_[src];
    Shard& dest = *shards_[dst];

    // Pick the largest active job that does not overshoot: moving more
    // than half the gap would just invert the skew.
    JobId local = kNoItem;
    JobId global = kNoItem;
    RVec size;
    Time expected = 0.0;
    TenantId tenant = kNoTenant;
    {
      std::lock_guard<std::mutex> lock(source.mu);
      const Dispatcher& d = *source.dispatcher;
      double best_l1 = 0.0;
      for (JobId j = 0; j < d.jobs_admitted(); ++j) {
        if (d.bin_of(j) == kNoBin) continue;
        const double l1 = d.items()[j].size.l1();
        if (l1 <= gap / 2.0 + 1e-12 && l1 > best_l1) {
          best_l1 = l1;
          local = j;
        }
      }
      if (local == kNoItem) break;  // only oversized jobs left
      global = source.global_of_local[local];
      size = d.items()[local].size;
      expected = d.items()[local].departure;  // still the advisory value
      tenant = d.items()[local].tenant;  // billing follows the job
    }

    // Depart on the source and make it durable BEFORE the destination
    // arrival exists anywhere: a crash between the two steps then loses
    // the arrival (the job recovers as departed) and can never resurrect
    // the job on both shards.
    {
      std::lock_guard<std::mutex> lock(source.mu);
      const Time t = std::max(now, source.dispatcher->last_event_time());
      source.dispatcher->depart(t, local);
      if (source.journal != nullptr && !source.journal_dead) {
        try {
          source.journal->append(persist::OpKind::kDepart, t, global);
          source.journal->commit();
          source.journal->sync();
        } catch (...) {
          source.journal_dead = true;
          record_worker_error();
        }
      }
      source.load_snapshot.store(source.dispatcher->total_active_load(),
                                 std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(dest.mu);
      const Time t = std::max(now, dest.dispatcher->last_event_time());
      const Time exp =
          expected > t ? expected : std::numeric_limits<Time>::infinity();
      const JobId dest_local =
          static_cast<JobId>(dest.dispatcher->jobs_admitted());
      RVec journal_size;
      const bool journal_op = dest.journal != nullptr && !dest.journal_dead;
      if (journal_op) journal_size = size;
      const double l1 = size.l1();
      dest.dispatcher->arrive(t, std::move(size), exp, tenant);
      dest.global_of_local.push_back(global);
      JobRec& rec = job_rec(global);
      rec.shard.store(static_cast<std::uint32_t>(dst),
                      std::memory_order_release);
      rec.local = dest_local;
      if (journal_op) {
        try {
          dest.journal->append(persist::OpKind::kArrive, t, global, exp,
                               &journal_size, kNoBin, false, tenant);
          dest.journal->commit();
        } catch (...) {
          dest.journal_dead = true;
          record_worker_error();
        }
      }
      dest.load_snapshot.store(dest.dispatcher->total_active_load(),
                               std::memory_order_relaxed);
      loads[src] -= l1;
      loads[dst] += l1;
      report.moved_volume += l1;
    }
    ++report.moves;
  }

  report.skew_after = load_skew(loads);
  return report;
}

}  // namespace dvbp::cloud
