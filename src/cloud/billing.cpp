#include "cloud/billing.hpp"

#include <cmath>
#include <stdexcept>
#include "core/types.hpp"  // robust_ceil

namespace dvbp::cloud {

QuantizedBilling::QuantizedBilling(double quantum, double rate_per_quantum)
    : quantum_(quantum), rate_(rate_per_quantum) {
  if (!(quantum > 0.0)) {
    throw std::invalid_argument("QuantizedBilling: quantum must be > 0");
  }
}

double QuantizedBilling::charge(const Interval& usage) const {
  const double len = usage.length();
  if (len <= 0.0) return 0.0;
  // Guard the epsilon so that an exactly-full quantum is not double-billed
  // due to floating division noise.
  const double quanta = robust_ceil(len / quantum_);
  return rate_ * std::max(1.0, quanta);
}

}  // namespace dvbp::cloud
