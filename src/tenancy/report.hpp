// Welfare / instant-fairness / utilization reporting, mirroring the
// metrics of Karma's simulator (docs/TENANCY.md).
//
//   * welfare          -- fair-share-weighted mean of each tenant's
//                         satisfaction (admitted demand / requested
//                         demand); 1.0 when nobody was pushed back.
//   * instant_fairness -- Jain's fairness index over the tenants'
//                         share-normalized usage, computed per settlement
//                         epoch and averaged weighted by epoch length
//                         ("how fair was the allocation at each instant",
//                         not just in aggregate).
//   * utilization      -- total billed demand integral divided by total
//                         bin-seconds (eq. (1) cost): how much of the
//                         capacity the allocator kept busy actually served
//                         tenant demand.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "tenancy/accountant.hpp"
#include "tenancy/arbiter.hpp"
#include "tenancy/gate.hpp"

namespace dvbp::tenancy {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) in [1/n, 1]; defined
/// as 1 (perfectly fair) when every component is zero.
double jain_index(std::span<const double> x);

/// Accumulates the per-epoch fairness samples. Feed it each settlement
/// epoch's usage vector (before or after Arbiter::settle; it only reads).
class FairnessTracker {
 public:
  explicit FairnessTracker(std::uint32_t num_tenants);

  /// One settlement epoch of length `epoch_len` with per-tenant usage
  /// integrals `usage` and normalized fair shares `shares`. Usage is
  /// normalized by share before the Jain index, so weighted economies are
  /// judged against their weights. Zero-length epochs are ignored.
  void on_epoch(double epoch_len, std::span<const double> usage,
                std::span<const double> shares);

  /// Epoch-length-weighted mean Jain index; 1.0 before any epoch.
  double instant_fairness() const;
  std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  std::uint32_t num_tenants_;
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
  std::uint64_t epochs_ = 0;
};

struct TenantReportRow {
  TenantId tenant = 0;
  double fair_share = 0.0;
  std::uint64_t requested_jobs = 0;
  std::uint64_t admitted_jobs = 0;
  std::uint64_t denied_jobs = 0;
  double requested_units = 0.0;
  double admitted_units = 0.0;
  double billed_utilization = 0.0;      ///< demand integral
  double attributed_bin_seconds = 0.0;  ///< eq. (1) cost share
  double credits = 0.0;                 ///< final balance
};

struct FairnessReport {
  std::vector<TenantReportRow> rows;
  double welfare = 1.0;
  double instant_fairness = 1.0;
  double utilization = 0.0;
  double total_bin_seconds = 0.0;
  double credit_sum = 0.0;
  double public_injected = 0.0;
  std::uint64_t settlements = 0;
};

/// Assembles the report from the live tenancy objects at end of run.
FairnessReport build_report(const UsageAccountant& accountant,
                            const Arbiter& arbiter,
                            const AdmissionGate& gate,
                            const FairnessTracker& tracker);

/// Plain-text table (the harness --tenants output).
std::string render_report(const FairnessReport& report);

}  // namespace dvbp::tenancy
