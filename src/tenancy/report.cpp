#include "tenancy/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dvbp::tenancy {

double jain_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (!(sum_sq > 0.0)) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

FairnessTracker::FairnessTracker(std::uint32_t num_tenants)
    : num_tenants_(num_tenants) {
  if (num_tenants == 0) {
    throw std::invalid_argument("FairnessTracker: need >= 1 tenant");
  }
}

void FairnessTracker::on_epoch(double epoch_len,
                               std::span<const double> usage,
                               std::span<const double> shares) {
  if (usage.size() != num_tenants_ || shares.size() != num_tenants_) {
    throw std::invalid_argument("FairnessTracker::on_epoch: size mismatch");
  }
  if (!(epoch_len > 0.0)) return;
  // Share-normalize so a tenant using exactly its weighted entitlement
  // scores the same as every other such tenant.
  std::vector<double> norm(num_tenants_, 0.0);
  for (std::uint32_t t = 0; t < num_tenants_; ++t) {
    norm[t] = shares[t] > 0.0 ? usage[t] / shares[t] : 0.0;
  }
  weighted_sum_ += epoch_len * jain_index(norm);
  weight_ += epoch_len;
  ++epochs_;
}

double FairnessTracker::instant_fairness() const {
  return weight_ > 0.0 ? weighted_sum_ / weight_ : 1.0;
}

FairnessReport build_report(const UsageAccountant& accountant,
                            const Arbiter& arbiter,
                            const AdmissionGate& gate,
                            const FairnessTracker& tracker) {
  FairnessReport report;
  const std::uint32_t n = arbiter.num_tenants();
  report.rows.reserve(n);
  double welfare_num = 0.0;
  double welfare_den = 0.0;
  double billed_total = 0.0;
  for (std::uint32_t t = 0; t < n; ++t) {
    TenantReportRow row;
    row.tenant = t;
    row.fair_share = arbiter.fair_share(t);
    row.admitted_jobs = gate.admitted_jobs(t);
    row.denied_jobs = gate.denied_jobs(t);
    row.requested_jobs = row.admitted_jobs + row.denied_jobs;
    row.requested_units = gate.requested_units(t);
    row.admitted_units = gate.admitted_units(t);
    row.billed_utilization = accountant.demand_integral(t);
    row.attributed_bin_seconds = accountant.attributed_bin_seconds(t);
    row.credits = arbiter.credits(t);
    billed_total += row.billed_utilization;
    if (row.requested_units > 0.0) {
      welfare_num +=
          row.fair_share * (row.admitted_units / row.requested_units);
      welfare_den += row.fair_share;
    }
    report.rows.push_back(row);
  }
  report.welfare = welfare_den > 0.0 ? welfare_num / welfare_den : 1.0;
  report.instant_fairness = tracker.instant_fairness();
  report.total_bin_seconds = accountant.total_bin_seconds();
  report.utilization = report.total_bin_seconds > 0.0
                           ? billed_total / report.total_bin_seconds
                           : 0.0;
  report.credit_sum = arbiter.credit_sum();
  report.public_injected = arbiter.public_injected();
  report.settlements = arbiter.settlements();
  return report;
}

std::string render_report(const FairnessReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "tenant  share   req_jobs  adm_jobs  req_units  adm_units  "
                "billed_util  bin_sec     credits\n");
  out += line;
  for (const TenantReportRow& row : report.rows) {
    std::snprintf(line, sizeof(line),
                  "%-7u %-7.3f %-9llu %-9llu %-10.3f %-10.3f %-12.3f "
                  "%-11.3f %-10.3f\n",
                  row.tenant, row.fair_share,
                  static_cast<unsigned long long>(row.requested_jobs),
                  static_cast<unsigned long long>(row.admitted_jobs),
                  row.requested_units, row.admitted_units,
                  row.billed_utilization, row.attributed_bin_seconds,
                  row.credits);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "welfare=%.4f instant_fairness=%.4f utilization=%.4f "
                "bin_seconds=%.3f\n",
                report.welfare, report.instant_fairness, report.utilization,
                report.total_bin_seconds);
  out += line;
  std::snprintf(line, sizeof(line),
                "credit_sum=%.4f public_injected=%.4f settlements=%llu\n",
                report.credit_sum, report.public_injected,
                static_cast<unsigned long long>(report.settlements));
  out += line;
  return out;
}

}  // namespace dvbp::tenancy
