#include "tenancy/gate.hpp"

namespace dvbp::tenancy {

AdmissionGate::AdmissionGate(Arbiter& arbiter, obs::MetricRegistry* metrics,
                             obs::Tracer* tracer)
    : arbiter_(arbiter), tracer_(tracer),
      admitted_jobs_(arbiter.num_tenants(), 0),
      denied_jobs_(arbiter.num_tenants(), 0),
      requested_units_(arbiter.num_tenants(), 0.0),
      admitted_units_(arbiter.num_tenants(), 0.0) {
  if (metrics != nullptr) {
    admitted_metric_ = &metrics->counter("dvbp.tenant.admitted_total");
    denied_metric_ = &metrics->counter("dvbp.tenant.denied_total");
    settlements_metric_ =
        &metrics->counter("dvbp.tenant.settlements_total");
    credit_sum_metric_ = &metrics->gauge("dvbp.tenant.credit_sum");
    public_injected_metric_ =
        &metrics->gauge("dvbp.tenant.public_injected");
    credit_sum_metric_->set(arbiter_.credit_sum());
  }
}

bool AdmissionGate::admit(Time now, TenantId tenant, const RVec& size,
                          ItemId item) {
  const double units = size.linf();
  bool ok;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t t = slot(tenant);
    requested_units_[t] += units;
    ok = arbiter_.admit(tenant, units);
    if (ok) {
      admitted_units_[t] += units;
      ++admitted_jobs_[t];
    } else {
      ++denied_jobs_[t];
    }
  }
  if (ok) {
    if (admitted_metric_ != nullptr) admitted_metric_->inc();
  } else {
    if (denied_metric_ != nullptr) denied_metric_->inc();
  }
  if (tracer_ != nullptr && tracer_->active()) {
    obs::TraceEvent ev;
    ev.kind = ok ? obs::TraceEventKind::kAdmit : obs::TraceEventKind::kDeny;
    ev.time = now;
    ev.item = item;
    ev.tenant = tenant;
    tracer_->emit(ev);
  }
  return ok;
}

void AdmissionGate::release(TenantId tenant, const RVec& size) {
  release_units(tenant, size.linf());
}

void AdmissionGate::release_units(TenantId tenant, double units) {
  std::lock_guard<std::mutex> lock(mu_);
  arbiter_.release(tenant, units);
}

void AdmissionGate::settle(Time now, std::span<const double> usage) {
  std::lock_guard<std::mutex> lock(mu_);
  arbiter_.settle(now, usage);
  if (settlements_metric_ != nullptr) settlements_metric_->inc();
  if (credit_sum_metric_ != nullptr) {
    credit_sum_metric_->set(arbiter_.credit_sum());
  }
  if (public_injected_metric_ != nullptr) {
    public_injected_metric_->set(arbiter_.public_injected());
  }
}

std::uint64_t AdmissionGate::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sum = 0;
  for (std::uint64_t c : admitted_jobs_) sum += c;
  return sum;
}

std::uint64_t AdmissionGate::denied_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sum = 0;
  for (std::uint64_t c : denied_jobs_) sum += c;
  return sum;
}

std::uint64_t AdmissionGate::admitted_jobs(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_jobs_[slot(tenant)];
}

std::uint64_t AdmissionGate::denied_jobs(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_jobs_[slot(tenant)];
}

double AdmissionGate::requested_units(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return requested_units_[slot(tenant)];
}

double AdmissionGate::admitted_units(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_units_[slot(tenant)];
}

}  // namespace dvbp::tenancy
