#include "tenancy/accountant.hpp"

#include <algorithm>
#include <stdexcept>

namespace dvbp::tenancy {

UsageAccountant::UsageAccountant(std::uint32_t num_tenants)
    : demand_(num_tenants, 0.0), integral_(num_tenants, 0.0),
      epoch_mark_(num_tenants, 0.0), attributed_(num_tenants, 0.0) {
  if (num_tenants == 0) {
    throw std::invalid_argument("UsageAccountant: need >= 1 tenant");
  }
}

void UsageAccountant::accrue(Time now, std::size_t open_bins) {
  if (!started_) {
    started_ = true;
    last_ = now;
    return;
  }
  const double dt = now - last_;
  if (dt <= 0.0) return;
  double total = 0.0;
  for (std::size_t t = 0; t < demand_.size(); ++t) {
    integral_[t] += demand_[t] * dt;
    total += demand_[t];
  }
  const double bins = static_cast<double>(open_bins) * dt;
  bin_seconds_ += bins;
  if (total > 0.0) {
    for (std::size_t t = 0; t < demand_.size(); ++t) {
      attributed_[t] += bins * (demand_[t] / total);
    }
  } else {
    unattributed_ += bins;
  }
  last_ = now;
}

void UsageAccountant::on_arrive(TenantId tenant, Time now, const RVec& size,
                                std::size_t open_bins) {
  accrue(now, open_bins);
  demand_[slot(tenant)] += size.linf();
}

void UsageAccountant::on_depart(TenantId tenant, Time now, const RVec& size,
                                std::size_t open_bins) {
  accrue(now, open_bins);
  // Subtracting the exact value added at arrival leaves at most float
  // residue; clamp so an "idle" tenant reads exactly zero demand.
  double& d = demand_[slot(tenant)];
  d = std::max(0.0, d - size.linf());
}

void UsageAccountant::on_advance(Time now, std::size_t open_bins) {
  accrue(now, open_bins);
}

double UsageAccountant::active_demand(TenantId tenant) const {
  return demand_[slot(tenant)];
}

double UsageAccountant::demand_integral(TenantId tenant) const {
  return integral_[slot(tenant)];
}

double UsageAccountant::attributed_bin_seconds(TenantId tenant) const {
  return attributed_[slot(tenant)];
}

std::vector<double> UsageAccountant::peek_epoch() const {
  std::vector<double> usage(demand_.size());
  for (std::size_t t = 0; t < demand_.size(); ++t) {
    usage[t] = integral_[t] - epoch_mark_[t];
  }
  return usage;
}

void UsageAccountant::commit_epoch() { epoch_mark_ = integral_; }

std::vector<double> UsageAccountant::cut_epoch() {
  std::vector<double> usage = peek_epoch();
  commit_epoch();
  return usage;
}

void UsageAccountant::save_state(serial::Writer& out) const {
  out.u32(static_cast<std::uint32_t>(demand_.size()));
  for (double d : demand_) out.f64(d);
  for (double v : integral_) out.f64(v);
  for (double v : epoch_mark_) out.f64(v);
  for (double v : attributed_) out.f64(v);
  out.f64(bin_seconds_);
  out.f64(unattributed_);
  out.f64(last_);
  out.u8(started_ ? 1 : 0);
}

void UsageAccountant::restore_state(serial::Reader& in) {
  const std::uint32_t n = in.u32();
  if (n != demand_.size()) {
    throw serial::SerialError(
        "UsageAccountant::restore_state: tenant-count mismatch");
  }
  for (double& d : demand_) d = in.f64();
  for (double& v : integral_) v = in.f64();
  for (double& v : epoch_mark_) v = in.f64();
  for (double& v : attributed_) v = in.f64();
  bin_seconds_ = in.f64();
  unattributed_ = in.f64();
  last_ = in.f64();
  started_ = in.u8() != 0;
}

}  // namespace dvbp::tenancy
