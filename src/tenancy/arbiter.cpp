#include "tenancy/arbiter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dvbp::tenancy {

namespace {
/// Slack for credit/quota comparisons, matching kCapacityEps in spirit:
/// settlement arithmetic accumulates float residue the gate must not turn
/// into spurious denials.
constexpr double kCreditEps = 1e-9;
}  // namespace

Arbiter::Arbiter(ArbiterConfig config) : config_(std::move(config)) {
  const std::uint32_t n = config_.num_tenants;
  if (n == 0) {
    throw std::invalid_argument("Arbiter: need >= 1 tenant");
  }
  if (!config_.fair_shares.empty() && config_.fair_shares.size() != n) {
    throw std::invalid_argument(
        "Arbiter: fair_shares must be empty or one per tenant");
  }
  if (config_.alpha < 0.0 || config_.price < 0.0 ||
      config_.init_credits < 0.0 || !(config_.capacity_units > 0.0)) {
    throw std::invalid_argument("Arbiter: negative economy parameter");
  }
  shares_.assign(n, 1.0 / static_cast<double>(n));
  if (!config_.fair_shares.empty()) {
    double sum = 0.0;
    for (double w : config_.fair_shares) {
      if (!(w >= 0.0) || !std::isfinite(w)) {
        throw std::invalid_argument("Arbiter: fair shares must be >= 0");
      }
      sum += w;
    }
    if (!(sum > 0.0)) {
      throw std::invalid_argument("Arbiter: fair shares sum to zero");
    }
    for (std::uint32_t t = 0; t < n; ++t) {
      shares_[t] = config_.fair_shares[t] / sum;
    }
  }
  credits_.assign(n, config_.init_credits);
  inflight_.assign(n, 0.0);
}

double Arbiter::fair_share(TenantId tenant) const {
  return shares_[slot(tenant)];
}

double Arbiter::quota(TenantId tenant) const {
  return shares_[slot(tenant)] * config_.capacity_units;
}

bool Arbiter::admit(TenantId tenant, double demand_units) {
  if (!(demand_units >= 0.0)) {
    throw std::invalid_argument("Arbiter::admit: negative demand");
  }
  const std::uint32_t t = slot(tenant);
  const double projected = inflight_[t] + demand_units;
  const double q = quota(t);
  if (projected <= q + kCreditEps) {
    inflight_[t] = projected;
    return true;
  }
  // Over quota: borrowing requires a balance covering the overage. The
  // credits are not deducted here -- settlement charges realized usage --
  // but the balance bounds how far over a tenant can run at once.
  const double overage = projected - q;
  if (credits_[t] + kCreditEps >= config_.price * overage) {
    inflight_[t] = projected;
    return true;
  }
  return false;
}

void Arbiter::release(TenantId tenant, double demand_units) {
  if (!(demand_units >= 0.0)) {
    throw std::invalid_argument("Arbiter::release: negative demand");
  }
  double& f = inflight_[slot(tenant)];
  f = std::max(0.0, f - demand_units);
}

void Arbiter::settle(Time now, std::span<const double> usage) {
  const std::size_t n = credits_.size();
  if (usage.size() != n) {
    throw std::invalid_argument("Arbiter::settle: usage size mismatch");
  }
  if (settled_once_ && now < last_settle_ - kTimeEps) {
    throw std::invalid_argument("Arbiter::settle: time went backwards");
  }
  const double epoch = settled_once_ ? std::max(0.0, now - last_settle_)
                                     : 0.0;

  double total = 0.0;
  for (double u : usage) {
    if (!(u >= 0.0)) {
      throw std::invalid_argument("Arbiter::settle: negative usage");
    }
    total += u;
  }

  if (total > 0.0) {
    // Entitlement is the proportional slice of what was actually used this
    // epoch, so transfers are exactly zero-sum: sum(over) == sum(under).
    double sum_under = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      sum_under += std::max(0.0, shares_[t] * total - usage[t]);
    }
    if (sum_under > kCreditEps) {
      double pool = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const double over = std::max(0.0, usage[t] - shares_[t] * total);
        // Charge capped at the balance: a tenant can never overdraw.
        const double pay = std::min(credits_[t], config_.price * over);
        credits_[t] -= pay;
        pool += pay;
      }
      for (std::size_t t = 0; t < n; ++t) {
        const double under = std::max(0.0, shares_[t] * total - usage[t]);
        credits_[t] += pool * (under / sum_under);
      }
    }
  }

  if (config_.alpha > 0.0 && epoch > 0.0) {
    for (std::size_t t = 0; t < n; ++t) {
      const double grant = config_.alpha * shares_[t] * epoch;
      credits_[t] += grant;
      public_injected_ += grant;
    }
  }

  last_settle_ = std::max(last_settle_, now);
  settled_once_ = true;
  ++settlements_;
}

double Arbiter::credits(TenantId tenant) const {
  return credits_[slot(tenant)];
}

double Arbiter::inflight(TenantId tenant) const {
  return inflight_[slot(tenant)];
}

double Arbiter::credit_sum() const {
  double sum = 0.0;
  for (double c : credits_) sum += c;
  return sum;
}

void Arbiter::save_state(serial::Writer& out) const {
  out.u32(static_cast<std::uint32_t>(credits_.size()));
  for (double c : credits_) out.f64(c);
  for (double f : inflight_) out.f64(f);
  out.f64(public_injected_);
  out.u64(settlements_);
  out.f64(last_settle_);
  out.u8(settled_once_ ? 1 : 0);
}

void Arbiter::restore_state(serial::Reader& in) {
  const std::uint32_t n = in.u32();
  if (n != credits_.size()) {
    throw serial::SerialError(
        "Arbiter::restore_state: tenant-count mismatch");
  }
  for (double& c : credits_) c = in.f64();
  for (double& f : inflight_) f = in.f64();
  public_injected_ = in.f64();
  settlements_ = in.u64();
  last_settle_ = in.f64();
  settled_once_ = in.u8() != 0;
}

std::vector<std::uint8_t> Arbiter::state_bytes() const {
  serial::Writer out;
  save_state(out);
  return out.take();
}

}  // namespace dvbp::tenancy
