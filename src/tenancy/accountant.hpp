// UsageAccountant: per-tenant usage metering over the dispatcher's event
// stream (docs/TENANCY.md).
//
// Implements core's TenantUsageHook. Between allocator events the active
// demand of every tenant and the open-bin count are constant, so accruing
// each interval [last event, event) at the pre-event state integrates both
// exactly:
//
//   demand_integral(t)  = INT active_demand_t dt     -- billed utilization
//   attributed(t)       = INT open_bins * demand_t / total_demand dt
//
// The second is the eq. (1) objective (total bin usage time) split across
// tenants in proportion to their instantaneous demand -- the cost
// attribution rule of Lee & Tang's DVBP evaluation. Demand is measured in
// bin units: the l-inf norm of the item size, i.e. the fraction of one bin
// the item's dominant dimension occupies (the paper's utilization measure,
// Lemma 1).
//
// Items with tenant kNoTenant (or out of range) are charged to tenant 0,
// so a mislabeled stream inflates "the house" rather than crashing or
// silently dropping usage.
//
// Not thread-safe: one accountant per dispatcher, driven by that
// dispatcher's single owner (each shard of the sharded service owns one).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/rvec.hpp"
#include "core/serial.hpp"
#include "core/types.hpp"

namespace dvbp::tenancy {

class UsageAccountant final : public TenantUsageHook {
 public:
  explicit UsageAccountant(std::uint32_t num_tenants);

  std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(demand_.size());
  }

  // --- TenantUsageHook (called by the Dispatcher) -----------------------
  void on_arrive(TenantId tenant, Time now, const RVec& size,
                 std::size_t open_bins) override;
  void on_depart(TenantId tenant, Time now, const RVec& size,
                 std::size_t open_bins) override;
  void on_advance(Time now, std::size_t open_bins) override;

  // --- Ledgers ----------------------------------------------------------

  /// Current active demand of `tenant`, in bin units (sum of l-inf sizes).
  double active_demand(TenantId tenant) const;
  /// Billed utilization: INT active_demand dt up to the last event.
  double demand_integral(TenantId tenant) const;
  /// `tenant`'s demand-proportional share of total bin-seconds so far.
  double attributed_bin_seconds(TenantId tenant) const;
  /// INT open_bins dt observed so far (the live eq. (1) objective);
  /// bin-seconds metered while no tenant had demand stay unattributed.
  double total_bin_seconds() const noexcept { return bin_seconds_; }
  double unattributed_bin_seconds() const noexcept { return unattributed_; }
  Time last_event() const noexcept { return last_; }

  /// Per-tenant demand-integral deltas since the previous cut (the
  /// settlement epoch the Arbiter consumes), and advances the cut marks.
  /// Does NOT advance the clock -- call on_advance first if time passed
  /// since the last dispatcher event.
  std::vector<double> cut_epoch();

  /// Demand-integral deltas accrued since the previous cut, without
  /// advancing the marks (for merging shard accountants: sum the peeks,
  /// then commit_epoch() on each).
  std::vector<double> peek_epoch() const;
  void commit_epoch();

  // --- Crash safety (opaque blob inside checkpoints) --------------------
  void save_state(serial::Writer& out) const;
  void restore_state(serial::Reader& in);

 private:
  std::uint32_t slot(TenantId tenant) const noexcept {
    return tenant < demand_.size() ? tenant : 0;
  }
  void accrue(Time now, std::size_t open_bins);

  std::vector<double> demand_;        // active demand, bin units
  std::vector<double> integral_;      // INT demand dt
  std::vector<double> epoch_mark_;    // integral_ at the last cut
  std::vector<double> attributed_;    // demand-share-weighted bin-seconds
  double bin_seconds_ = 0.0;
  double unattributed_ = 0.0;
  Time last_ = 0.0;
  bool started_ = false;
};

}  // namespace dvbp::tenancy
