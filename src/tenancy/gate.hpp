// AdmissionGate: the Arbiter's front-end binding -- quota decisions plus
// the dvbp.tenant.* metric family and admit/deny trace records.
//
// Sits between a traffic source and any placement engine (serial
// Dispatcher, DurableDispatcher, ShardedDispatcher, the network server):
// ask admit() before submitting an arrival, call release() when an
// admitted job departs (or when the submission is abandoned). Because the
// gate runs before routing, its decision sequence depends only on the
// arrival sequence -- never on the shard count -- which keeps admission
// deterministic across service topologies.
//
// The gate also keeps the per-tenant demand totals (requested vs admitted)
// the welfare report needs; the arbiter itself only sees bin units.
//
// Thread-safety: admit()/release() take an internal lock, so concurrent
// producers (the network server's event loops) may share one gate. The
// decision order under concurrency is the lock-acquisition order.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tenancy/arbiter.hpp"

namespace dvbp::tenancy {

class AdmissionGate {
 public:
  /// `arbiter` is borrowed and must outlive the gate. `metrics` and
  /// `tracer` are borrowed, nullable.
  explicit AdmissionGate(Arbiter& arbiter,
                         obs::MetricRegistry* metrics = nullptr,
                         obs::Tracer* tracer = nullptr);

  /// Gate one arrival: returns true when the arbiter admits it (demand
  /// booked in flight). `item` only labels the trace record.
  bool admit(Time now, TenantId tenant, const RVec& size,
             ItemId item = kNoItem);

  /// Releases demand booked by a successful admit().
  void release(TenantId tenant, const RVec& size);
  /// Same, for callers that kept only the l-inf units (the network server
  /// holds units, not the full vector, in its job table).
  void release_units(TenantId tenant, double units);

  /// Settles the arbiter and refreshes the settlement metrics (see
  /// Arbiter::settle for semantics).
  void settle(Time now, std::span<const double> usage);

  Arbiter& arbiter() noexcept { return arbiter_; }
  const Arbiter& arbiter() const noexcept { return arbiter_; }

  std::uint64_t admitted_total() const;
  std::uint64_t denied_total() const;
  std::uint64_t admitted_jobs(TenantId tenant) const;
  std::uint64_t denied_jobs(TenantId tenant) const;
  /// Total demand (bin units) tenant asked for / got through the gate.
  double requested_units(TenantId tenant) const;
  double admitted_units(TenantId tenant) const;

 private:
  std::uint32_t slot(TenantId tenant) const noexcept {
    return tenant < admitted_jobs_.size()
               ? tenant
               : 0;
  }

  Arbiter& arbiter_;
  obs::Tracer* tracer_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> admitted_jobs_;
  std::vector<std::uint64_t> denied_jobs_;
  std::vector<double> requested_units_;
  std::vector<double> admitted_units_;

  // Cached instruments (null when metrics are off).
  obs::Counter* admitted_metric_ = nullptr;
  obs::Counter* denied_metric_ = nullptr;
  obs::Counter* settlements_metric_ = nullptr;
  obs::Gauge* credit_sum_metric_ = nullptr;
  obs::Gauge* public_injected_metric_ = nullptr;
};

}  // namespace dvbp::tenancy
