// Arbiter: credit-based fair-share arbitration among selfish tenants, in
// the spirit of Karma (docs/TENANCY.md; PAPERS.md).
//
// Each tenant owns a fair share f_t (normalized to sum 1) of the cluster's
// admission capacity. Credits meter deviation from that share over time:
//
//   * Admission gate. A tenant whose projected in-flight demand stays
//     within its quota f_t * capacity_units is admitted outright. Beyond
//     the quota, admission requires a credit balance covering the overage
//     (price * overage); otherwise the arrival is pushed back
//     (RETRY_LATER), never queued invisibly.
//   * Settlement. At each settlement epoch the realized usage integrals
//     (from UsageAccountant::cut_epoch) are compared against the
//     proportional entitlement f_t * total_usage. Borrowers (over users)
//     pay price * overage -- capped at their balance, so NO TENANT EVER
//     OVERDRAWS -- into a pool that is redistributed to donors (under
//     users) pro rata to how far under they ran. Transfers are zero-sum:
//     the credit supply is conserved.
//   * Alpha-public block. Like Karma's public slice, an alpha fraction of
//     credits is injected from outside the tenant economy at each
//     settlement (alpha * f_t * epoch_length each), tracked separately in
//     public_injected() so conservation stays checkable:
//       credit_sum() == initial supply + public_injected()   (up to fp).
//
// Strategy-proofness (tested in tests/test_tenancy.cpp): inflating a
// demand vector raises the tenant's usage integral, which raises its
// settlement charge and drains its balance until the gate pushes back --
// the inflated tenant ends with FEWER jobs served and no better credit
// balance than truthful play, while the arbiter keeps the other tenants'
// instant fairness at or above the ungated baseline.
//
// Every decision is deterministic arithmetic over the call sequence (no
// RNG, no clocks), so a front-end that gates arrivals before routing makes
// identical decisions for any shard count -- the property fuzzed in
// tests/test_tenancy_fuzz.cpp.
//
// Not thread-safe: the gate runs in the admission front-end (one producer
// or an external lock), settlement at quiescence.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/serial.hpp"
#include "core/types.hpp"

namespace dvbp::tenancy {

struct ArbiterConfig {
  std::uint32_t num_tenants = 1;
  /// Relative fair shares; empty means uniform. Normalized to sum 1 at
  /// construction. Must be nonnegative with a positive sum.
  std::vector<double> fair_shares;
  /// Credits injected per unit fair share per unit time at settlement
  /// (Karma's public block). 0 keeps the credit supply closed.
  double alpha = 0.0;
  /// Total admission capacity in bin units (l-inf demand); quota of tenant
  /// t is fair_share(t) * capacity_units. Infinity disables the quota gate
  /// (every arrival admitted; settlement still runs).
  double capacity_units = std::numeric_limits<double>::infinity();
  /// Starting balance of every tenant.
  double init_credits = 0.0;
  /// Credits charged per bin-unit-second of over-entitlement usage, and
  /// required per bin unit of over-quota in-flight demand at the gate.
  double price = 1.0;
};

class Arbiter {
 public:
  explicit Arbiter(ArbiterConfig config);

  const ArbiterConfig& config() const noexcept { return config_; }
  std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(credits_.size());
  }

  /// Normalized fair share of `tenant`.
  double fair_share(TenantId tenant) const;
  /// Admission quota in bin units: fair_share * capacity_units.
  double quota(TenantId tenant) const;

  /// Admission gate: true admits a job of `demand_units` (l-inf size) and
  /// books it in flight; false means over quota with insufficient credits
  /// -- the caller answers RETRY_LATER and must NOT place the job.
  bool admit(TenantId tenant, double demand_units);
  /// Releases in-flight demand booked by a successful admit() (call on
  /// departure, or when a gated-then-rejected submission is abandoned).
  void release(TenantId tenant, double demand_units);

  /// Settles the epoch ending at `now`: usage[t] is tenant t's demand
  /// integral over the epoch (UsageAccountant::cut_epoch). Charges
  /// borrowers, pays donors, injects the alpha-public block. Throws
  /// std::invalid_argument on a size mismatch or time regression.
  void settle(Time now, std::span<const double> usage);

  double credits(TenantId tenant) const;
  double inflight(TenantId tenant) const;
  /// Sum of all balances; conservation invariant:
  /// credit_sum() == num_tenants * init_credits + public_injected() (fp).
  double credit_sum() const;
  double public_injected() const noexcept { return public_injected_; }
  std::uint64_t settlements() const noexcept { return settlements_; }
  Time last_settle() const noexcept { return last_settle_; }

  // --- Crash safety (journaled as kTenantCredits frames) ----------------
  void save_state(serial::Writer& out) const;
  void restore_state(serial::Reader& in);
  /// Convenience: save_state into a fresh byte buffer.
  std::vector<std::uint8_t> state_bytes() const;

 private:
  std::uint32_t slot(TenantId tenant) const noexcept {
    return tenant < credits_.size() ? tenant : 0;
  }

  ArbiterConfig config_;
  std::vector<double> shares_;   // normalized
  std::vector<double> credits_;
  std::vector<double> inflight_;
  double public_injected_ = 0.0;
  std::uint64_t settlements_ = 0;
  Time last_settle_ = 0.0;
  bool settled_once_ = false;
};

}  // namespace dvbp::tenancy
