// IntervalSet: a union of disjoint half-open intervals, kept sorted.
//
// Used to compute span(R) -- the total measure of time at least one item is
// active (paper Sec. 2) -- and per-bin usage periods in packings.
#pragma once

#include <vector>

#include "core/interval.hpp"

namespace dvbp {

class IntervalSet {
 public:
  IntervalSet() = default;

  /// Insert an interval, merging with any intervals it touches or overlaps.
  /// Adjacent intervals ([0,1) + [1,2)) merge into one.
  void add(Interval iv);

  /// Total measure of the union.
  Time measure() const noexcept;

  /// Number of maximal disjoint intervals.
  std::size_t count() const noexcept { return parts_.size(); }

  bool empty() const noexcept { return parts_.empty(); }

  /// True if t lies in some interval of the set.
  bool contains(Time t) const noexcept;

  /// Convex hull [min lo, max hi); empty interval when the set is empty.
  Interval hull() const noexcept;

  const std::vector<Interval>& parts() const noexcept { return parts_; }

  /// Union with another set.
  void merge(const IntervalSet& other);

  void clear() noexcept { parts_.clear(); }

  bool operator==(const IntervalSet& other) const noexcept {
    return parts_ == other.parts_;
  }

 private:
  std::vector<Interval> parts_;  // sorted by lo, pairwise disjoint
};

}  // namespace dvbp
