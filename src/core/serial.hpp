// Binary serialization primitives shared by the checkpoint/journal layer
// (src/persist/) and the state-snapshot hooks on Dispatcher, BinState, and
// the policies.
//
// The encoding is deliberately dumb: little-endian fixed-width integers and
// raw IEEE-754 bit patterns for doubles. Raw bits matter: recovery must
// reproduce bin loads and timestamps *bit-exactly* (a 1-ulp difference in a
// load component can flip a future fits() decision and fork the packing),
// so floating-point values are never round-tripped through text.
//
// Reader errors are typed (SerialError) and every read is bounds-checked --
// this code parses bytes that may come from a torn or corrupted file, so an
// overrun must surface as an exception, never as UB.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dvbp::serial {

// The wire format (journal segments, checkpoints, and the network frames of
// src/net/) is little-endian with raw IEEE-754 float bits. Writer/Reader
// assemble integers byte-by-byte, so they would work on any host, but the
// persisted artifacts and the RPC protocol are *defined* as little-endian
// IEEE-754 -- assert the assumptions a port would have to revisit instead
// of silently shipping frames a big-endian or non-IEC-559 host cannot
// exchange with the rest of the fleet. (Round-trip coverage lives in
// tests/test_net_frame.cpp.)
static_assert(std::endian::native == std::endian::little,
              "dvbp wire format is little-endian; big-endian hosts need "
              "byte-order conversion audited before this assert is relaxed");
static_assert(std::numeric_limits<double>::is_iec559 &&
                  sizeof(double) == 8,
              "dvbp wire format stores raw IEEE-754 binary64 bit patterns");
static_assert(std::numeric_limits<float>::is_iec559 &&
                  sizeof(float) == 4,
              "dvbp wire format assumes IEEE-754 binary32 floats");

/// Thrown by Reader on malformed input (overrun, oversized string, ...).
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to a growable byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Raw IEEE-754 bit pattern (see file comment: never through text).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed nested blob (e.g. a policy's opaque state).
  void blob(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a borrowed byte range.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::size_t remaining() const noexcept { return len_ - pos_; }
  bool done() const noexcept { return pos_ == len_; }

 private:
  void need(std::size_t n) const {
    if (len_ - pos_ < n) {
      throw SerialError("serial::Reader: truncated input (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(len_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) -- the checksum
/// framing every journal frame and checkpoint file. Detects all single-byte
/// corruptions and all burst errors up to 32 bits, which is what the
/// torn-tail fuzz test (tests/test_persist_recovery.cpp) leans on.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                           std::uint32_t seed = 0) noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& buf) noexcept {
  return crc32(buf.data(), buf.size());
}

}  // namespace dvbp::serial
