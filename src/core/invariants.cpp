#include "core/invariants.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "core/bin_state.hpp"
#include "core/dispatcher.hpp"
#include "core/fits.hpp"

namespace dvbp {

namespace {

// Incremental load bookkeeping accumulates rounding error relative to a
// fresh sum; tolerate a little more than kCapacityEps per dimension.
constexpr double kLoadEps = 1e-7;

std::string bin_str(BinId bin) { return "bin " + std::to_string(bin); }

}  // namespace

std::optional<std::string> PackingInvariantChecker::check(
    const Dispatcher& d) {
  // --- Invariant 1: open-bin loads --------------------------------------
  std::unordered_map<JobId, BinId> placed;  // job -> hosting open bin
  std::size_t active_in_bins = 0;
  for (const BinView& view : d.open_views()) {
    const BinState* bin = d.open_bin_state(view.id);
    if (bin == nullptr) {
      return bin_str(view.id) + " has a view but no open state";
    }
    RVec sum(d.dim());
    for (ItemId job : bin->active_items()) {
      if (job >= d.jobs_admitted()) {
        return bin_str(view.id) + " lists unknown job " +
               std::to_string(job);
      }
      const RVec& size = d.items()[job].size;
      for (std::size_t k = 0; k < d.dim(); ++k) sum[k] += size[k];
      auto [it, fresh] = placed.emplace(job, view.id);
      if (!fresh) {
        return "job " + std::to_string(job) + " active in " +
               bin_str(it->second) + " and " + bin_str(view.id);
      }
      ++active_in_bins;
    }
    for (std::size_t k = 0; k < d.dim(); ++k) {
      if (std::abs(sum[k] - bin->load()[k]) > kLoadEps) {
        std::ostringstream os;
        os << bin_str(view.id) << " load drift in dim " << k << ": stored "
           << bin->load()[k] << " vs recomputed " << sum[k];
        return os.str();
      }
      // The audit's capacity verdict uses the same fits.hpp threshold and
      // predicate as the placement paths (scalar and SIMD), so a load the
      // engine admitted can never be rejected here by one ulp.
      if (!fits_under_threshold(sum[k], fits_threshold(bin->capacity()))) {
        std::ostringstream os;
        os << bin_str(view.id) << " over capacity in dim " << k << ": "
           << sum[k] << " > " << bin->capacity();
        return os.str();
      }
    }
    if (view.num_items != bin->num_active()) {
      return bin_str(view.id) + " view item count out of sync";
    }
  }

  // --- Invariant 2: every live job placed exactly once ------------------
  if (d.jobs_active() < d.jobs_evicted()) {
    return "more evicted jobs than active jobs";
  }
  if (active_in_bins != d.jobs_active() - d.jobs_evicted()) {
    return "active job count mismatch: bins hold " +
           std::to_string(active_in_bins) + ", dispatcher reports " +
           std::to_string(d.jobs_active() - d.jobs_evicted());
  }
  for (JobId job = 0; job < d.jobs_admitted(); ++job) {
    const BinId bin = d.bin_of(job);
    const auto it = placed.find(job);
    if (bin == kNoBin) {
      if (it != placed.end()) {
        return "job " + std::to_string(job) +
               " is departed/evicted but still active in " +
               bin_str(it->second);
      }
      continue;
    }
    if (it == placed.end() || it->second != bin) {
      return "job " + std::to_string(job) + " assigned to " +
             bin_str(bin) + " but not active there";
    }
    if (d.last_bin_of(job) != bin) {
      return "job " + std::to_string(job) + " last_bin_of disagrees with "
             "its live assignment";
    }
  }

  // --- Invariant 3: closed bins immutable, cost monotone ----------------
  if (closed_seen_.size() < d.bins_opened()) {
    closed_seen_.resize(d.bins_opened());
  }
  for (const BinRecord& rec : d.records()) {
    const bool open = d.open_bin_state(rec.id) != nullptr;
    ClosedBin& seen = closed_seen_[rec.id];
    if (seen.seen) {
      if (open) return bin_str(rec.id) + " reopened after closing";
      if (rec.opened != seen.opened || rec.closed != seen.closed ||
          rec.items.size() != seen.items) {
        return bin_str(rec.id) + " closed record mutated";
      }
      continue;
    }
    if (open) continue;
    if (rec.closed < rec.opened - kTimeEps) {
      return bin_str(rec.id) + " closed before it opened";
    }
    seen = ClosedBin{rec.opened, rec.closed, rec.items.size(), true};
  }
  const double closed_usage = d.closed_usage();
  const double cost = d.cost_so_far(d.last_event_time());
  if (have_watermarks_) {
    if (closed_usage < last_closed_usage_ - kTimeEps) {
      return "closed usage decreased";
    }
    if (cost < last_cost_ - kTimeEps) {
      return "cost_so_far decreased at the event horizon";
    }
  }
  last_closed_usage_ = closed_usage;
  last_cost_ = cost;
  have_watermarks_ = true;
  return std::nullopt;
}

std::optional<std::string> PackingInvariantChecker::check_budget(
    const MigrationBudgetUsage& usage) {
  if (static_cast<double>(usage.migrations) >
      usage.migration_credits + 1e-9) {
    std::ostringstream os;
    os << "migration budget overdrawn: " << usage.migrations
       << " migrations vs " << usage.migration_credits << " credits";
    return os.str();
  }
  if (usage.volume > usage.volume_credits + 1e-9) {
    std::ostringstream os;
    os << "volume budget overdrawn: " << usage.volume << " vs "
       << usage.volume_credits << " credits";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace dvbp
