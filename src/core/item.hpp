// Item: one job/VM request of the DVBP problem (paper Sec. 2.1).
//
// An item r is the tuple (a(r), e(r), s(r)): arrival time, departure time,
// and d-dimensional size. Its active interval is half-open [a, e).
#pragma once

#include <iosfwd>
#include <string>

#include "core/interval.hpp"
#include "core/rvec.hpp"
#include "core/types.hpp"

namespace dvbp {

struct Item {
  ItemId id = kNoItem;   ///< Index within its Instance; also arrival order.
  Time arrival = 0.0;    ///< a(r)
  Time departure = 0.0;  ///< e(r); item has departed at this instant.
  RVec size;             ///< s(r) in [0,1]^d
  TenantId tenant = kNoTenant;  ///< submitting tenant (src/tenancy/)

  Item() = default;
  Item(ItemId id_, Time arrival_, Time departure_, RVec size_,
       TenantId tenant_ = kNoTenant)
      : id(id_), arrival(arrival_), departure(departure_),
        size(std::move(size_)), tenant(tenant_) {}

  /// Active interval I(r) = [a(r), e(r)).
  Interval interval() const noexcept { return Interval(arrival, departure); }

  /// Duration l(I(r)) = e(r) - a(r).
  Time duration() const noexcept { return departure - arrival; }

  /// True while lo <= t < departure.
  bool active_at(Time t) const noexcept { return interval().contains(t); }

  /// Time-space utilization u(r) = ||s(r)||_inf * l(I(r)) (paper Lemma 1).
  double utilization() const noexcept { return size.linf() * duration(); }

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Item& item);

}  // namespace dvbp
