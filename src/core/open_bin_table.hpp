// OpenBinTable: structure-of-arrays mirror of the open bins' load vectors.
//
// BinState keeps each bin's load as one RVec (array-of-structures): good
// for serialization and single-bin updates, but the per-arrival scan
// touches every open bin and pays a pointer chase through BinView::load
// plus a cache line per bin. This table stores the SAME doubles
// transposed: dimension j of all open bins is one contiguous lane,
// padded to the SIMD width. The Any Fit feasibility scan
// `load + s(r) <= cap + eps` then tests 4 bins per AVX2 instruction
// (2 with SSE2), and Best/Worst Fit measures are computed from the lanes
// with exactly the same scalar operation order as measure_load() on an
// RVec.
//
// Bit-exactness contract (pinned by tests/golden_packings.inc and the
// -DDVBP_DISABLE_SIMD CI job): every lane entry holds bit-identical
// values to the owning BinState's load_ -- both are updated with the
// same IEEE-754 additions and subtractions in the same order -- and
// every kernel (AVX2, SSE2, scalar) evaluates the fits.hpp predicate
// `load[j] + add[j] <= threshold` with one add and one ordered,
// non-signaling <= per dimension against the same precomputed threshold.
// The only latitude a kernel has is how many bins it tests per
// instruction; the per-bin decision is identical, so SIMD and scalar
// builds produce the same packing, bit for bit. Padding slots are
// poisoned with +inf so vector tests can run over them without admitting
// a phantom bin (+inf + x compares false under <=).
//
// Slots are in opening order and match the engines' open_order_/views_
// arrays position for position; erase_slot compacts exactly like the
// engines' close_slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fits.hpp"
#include "core/types.hpp"

namespace dvbp {

class OpenBinTable {
 public:
  /// Slots per widest SIMD register; lanes are padded to a multiple.
  static constexpr std::size_t kSimdWidth = 4;  // AVX2: 4 doubles

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit OpenBinTable(std::size_t dim, double capacity = 1.0)
      : dim_(dim),
        capacity_(capacity),
        threshold_(fits_threshold(capacity)) {}

  std::size_t dim() const noexcept { return dim_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  double capacity() const noexcept { return capacity_; }
  /// The exact double every feasibility comparison tests against
  /// (fits_threshold(capacity)).
  double threshold() const noexcept { return threshold_; }

  /// Appends a zero-load slot (a freshly opened bin).
  void push_back_zero();

  /// Appends a slot with the given load bits (checkpoint restore). Copies
  /// raw values -- no arithmetic -- so restored lanes match load_ exactly.
  void push_back_raw(const double* load);

  /// load[slot] += add, with the same per-dimension IEEE adds (in
  /// dimension order) as RVec::operator+= on the owning bin.
  void add(std::size_t slot, const double* add);

  /// load[slot] -= sub, then clamp each dimension to >= 0 -- mirrors the
  /// departure path RVec::operator-= followed by clamp_nonnegative().
  void sub_clamped(std::size_t slot, const double* sub);

  /// Removes `slot`, shifting later slots down one (opening order is
  /// preserved, matching close_slot). One memmove per lane.
  void erase_slot(std::size_t slot);

  /// Drops every slot.
  void clear() noexcept;

  /// Scalar reference predicate for one slot.
  bool fits(std::size_t slot, const double* add) const;

  /// Earliest slot (opening order) where `add` fits, or npos -- First
  /// Fit's whole decision in one call.
  std::size_t find_first_fit(const double* add) const;

  /// Latest fitting slot, or npos (Last Fit).
  std::size_t find_last_fit(const double* add) const;

  /// Appends every fitting slot to `out_slots` in opening order (generic
  /// Any Fit path; `out_slots` is NOT cleared).
  void collect_fitting(const double* add,
                       std::vector<std::uint32_t>& out_slots) const;

  /// Best Fit: among fitting slots, the one with the maximal load
  /// measure, ties toward the earliest slot; npos when none fit.
  /// `measure` matches LoadMeasure's underlying values (0 = Linf,
  /// 1 = L1, 2 = L2) and is computed exactly as measure_load() computes
  /// it from the bin's RVec.
  std::size_t find_best_fit(const double* add, int measure) const;

  /// Worst Fit: minimal measure among fitting slots, ties toward the
  /// earliest slot; npos when none fit.
  std::size_t find_worst_fit(const double* add, int measure) const;

  /// Sum of every slot's L1 load -- the "total usage" signal the sharded
  /// service's least-usage router balances on. Summed per slot, inner
  /// loop over dimensions, reproducing `for bin: total += load.l1()` on
  /// the AoS state bit for bit (loads are nonnegative, so l1's abs is the
  /// identity); routing decisions are unchanged by the SoA rewrite.
  double total_load() const noexcept;

  /// Lane pointer for dimension j: entry [slot] equals the owning bin's
  /// load()[j], bit for bit. Valid for size() slots.
  const double* lane(std::size_t j) const noexcept {
    return lanes_.data() + j * stride_;
  }

  /// Name of the kernel the runtime dispatch selected ("avx2", "sse2",
  /// or "scalar") -- diagnostics and the no-SIMD CI assertion.
  static const char* active_kernel() noexcept;

 private:
  void ensure_capacity(std::size_t want_slots);
  double measure_slot(std::size_t slot, int measure) const;
  double* mutable_lane(std::size_t j) noexcept {
    return lanes_.data() + j * stride_;
  }

  std::size_t dim_;
  double capacity_;
  double threshold_;
  std::size_t size_ = 0;       // open bins (slots)
  std::size_t stride_ = 0;     // padded slots per lane, multiple of width
  std::vector<double> lanes_;  // dim_ lanes of stride_ doubles each
};

}  // namespace dvbp
