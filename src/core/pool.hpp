// Slab/pool allocators for the placement hot path.
//
// The event loop used to pay one allocator round-trip per bin open (vector
// reallocation + BinView repatching) and two per item lifetime (the
// active_/departures_ vectors inside BinState). Both disappear here:
//
//  * StableVector<T>: a chunked slab. push_back never moves existing
//    elements, so pointers and references into it are stable for the life
//    of the container -- BinState addresses handed to BinView::load, and
//    Item addresses handed to policies, never dangle or need repatching.
//    Indexing is two loads (chunk pointer, then element); chunks are
//    allocated geometrically like vector's growth but never copied.
//
//  * UsagePool: a free-listed slab of usage-interval nodes
//    {item, departure, next}. Every open bin's active set is a singly
//    linked list threaded through the pool; add/remove of an item is a
//    pointer splice plus a free-list push -- no per-event new/delete.
//    Nodes are uint32-indexed, so a bin's whole active set costs 16
//    bytes/item and the pool serves every bin of an Engine/Dispatcher
//    from the same few slabs (the MrWSI bin.c exemplar builds its packing
//    core on exactly this mempool shape).
//
// Neither container is thread-safe; each Dispatcher (one per shard in the
// sharded service) owns its own instances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace dvbp {

/// Chunked slab vector: amortized O(1) push_back with STABLE addresses.
/// Supports exactly what the engines need: emplace_back, operator[],
/// size, and forward iteration. Elements are destroyed only when the
/// container is destroyed or clear()ed -- there is no erase.
template <typename T>
class StableVector {
 public:
  /// Elements per chunk; 64 keeps a chunk of BinState around 8KiB and
  /// makes the chunk math a shift instead of a division.
  static constexpr std::size_t kChunkSize = 64;

  StableVector() = default;
  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;
  StableVector(StableVector&&) noexcept = default;
  StableVector& operator=(StableVector&&) noexcept = default;
  ~StableVector() { clear(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept {
    return *ptr(chunks_[i / kChunkSize].get(), i % kChunkSize);
  }
  const T& operator[](std::size_t i) const noexcept {
    return *ptr(chunks_[i / kChunkSize].get(), i % kChunkSize);
  }

  T& back() noexcept { return (*this)[size_ - 1]; }
  const T& back() const noexcept { return (*this)[size_ - 1]; }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<Storage[]>(kChunkSize));
    }
    T* slot = ptr(chunks_[size_ / kChunkSize].get(), size_ % kChunkSize);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Destroys every element; keeps the slabs for reuse.
  void clear() noexcept {
    for (std::size_t i = size_; i > 0; --i) (*this)[i - 1].~T();
    size_ = 0;
  }

  template <bool Const>
  class Iter {
   public:
    using Parent = std::conditional_t<Const, const StableVector, StableVector>;
    using Ref = std::conditional_t<Const, const T&, T&>;
    Iter(Parent* p, std::size_t i) : p_(p), i_(i) {}
    Ref operator*() const noexcept { return (*p_)[i_]; }
    Iter& operator++() noexcept {
      ++i_;
      return *this;
    }
    bool operator!=(const Iter& o) const noexcept { return i_ != o.i_; }

   private:
    Parent* p_;
    std::size_t i_;
  };

  Iter<false> begin() noexcept { return {this, 0}; }
  Iter<false> end() noexcept { return {this, size_}; }
  Iter<true> begin() const noexcept { return {this, 0}; }
  Iter<true> end() const noexcept { return {this, size_}; }

 private:
  struct alignas(T) Storage {
    unsigned char bytes[sizeof(T)];
  };
  static T* ptr(Storage* chunk, std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(chunk[i].bytes));
  }
  static const T* ptr(const Storage* chunk, std::size_t i) noexcept {
    return std::launder(reinterpret_cast<const T*>(chunk[i].bytes));
  }

  std::vector<std::unique_ptr<Storage[]>> chunks_;
  std::size_t size_ = 0;
};

/// One usage interval: item `item` occupies its bin until `departure`.
/// `next` threads the owning bin's active list through the pool.
struct UsageNode {
  ItemId item = kNoItem;
  Time departure = 0.0;
  std::uint32_t next = 0;
};

/// Free-listed slab of UsageNodes, shared by every bin of one
/// Engine/Dispatcher. Indices (not pointers) identify nodes, so the
/// backing slabs can be StableVector chunks and a node handle is 4 bytes.
class UsagePool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  std::uint32_t alloc(ItemId item, Time departure) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx] = UsageNode{item, departure, kNil};
    return idx;
  }

  void release(std::uint32_t idx) noexcept {
    nodes_[idx].next = free_head_;
    free_head_ = idx;
  }

  UsageNode& operator[](std::uint32_t idx) noexcept { return nodes_[idx]; }
  const UsageNode& operator[](std::uint32_t idx) const noexcept {
    return nodes_[idx];
  }

  /// Nodes ever allocated (live + free-listed); capacity diagnostics.
  std::size_t slab_size() const noexcept { return nodes_.size(); }

 private:
  StableVector<UsageNode> nodes_;
  std::uint32_t free_head_ = kNil;
};

/// Free-listed doubly-linked list of BinIds over a chunked slab --
/// std::list's splice-to-front interface without its per-node heap
/// allocations. Node handles are uint32 slab indices (stable for the
/// node's lifetime), so a caller can keep a BinId -> node map and erase
/// or move-to-front in O(1) without searching. MoveToFront's MRU list is
/// the intended customer: one list per policy, nodes recycled through the
/// free list as bins open and close.
class IndexList {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  bool empty() const noexcept { return head_ == kNil; }
  std::size_t size() const noexcept { return size_; }
  std::uint32_t head() const noexcept { return head_; }

  BinId front() const noexcept { return nodes_[head_].value; }
  BinId value(std::uint32_t node) const noexcept {
    return nodes_[node].value;
  }
  std::uint32_t next(std::uint32_t node) const noexcept {
    return nodes_[node].next;
  }

  /// Inserts `value` at the front; returns its node handle.
  std::uint32_t push_front(BinId value) {
    const std::uint32_t idx = alloc(value);
    link_front(idx);
    ++size_;
    return idx;
  }

  /// Inserts `value` at the back; returns its node handle (restore path).
  std::uint32_t push_back(BinId value) {
    const std::uint32_t idx = alloc(value);
    Node& n = nodes_[idx];
    n.prev = tail_;
    n.next = kNil;
    if (tail_ != kNil) {
      nodes_[tail_].next = idx;
    } else {
      head_ = idx;
    }
    tail_ = idx;
    ++size_;
    return idx;
  }

  /// Unlinks `node` and recycles it through the free list.
  void erase(std::uint32_t node) noexcept {
    unlink(node);
    nodes_[node].next = free_head_;
    free_head_ = node;
    --size_;
  }

  /// Moves `node` to the front (no-op when already there).
  void move_to_front(std::uint32_t node) noexcept {
    if (head_ == node) return;
    unlink(node);
    link_front(node);
  }

  /// Empties the list; keeps the slab for reuse.
  void clear() noexcept {
    // Thread every live node onto the free list in one walk.
    std::uint32_t cur = head_;
    while (cur != kNil) {
      const std::uint32_t nxt = nodes_[cur].next;
      nodes_[cur].next = free_head_;
      free_head_ = cur;
      cur = nxt;
    }
    head_ = tail_ = kNil;
    size_ = 0;
  }

 private:
  struct Node {
    BinId value = kNoBin;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;  ///< doubles as the free-list link
  };

  std::uint32_t alloc(BinId value) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx] = Node{value, kNil, kNil};
    return idx;
  }

  void link_front(std::uint32_t node) noexcept {
    Node& n = nodes_[node];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil) {
      nodes_[head_].prev = node;
    } else {
      tail_ = node;
    }
    head_ = node;
  }

  void unlink(std::uint32_t node) noexcept {
    Node& n = nodes_[node];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      tail_ = n.prev;
    }
  }

  StableVector<Node> nodes_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace dvbp
