#include "core/instance_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/event.hpp"
#include "core/types.hpp"  // robust_ceil

namespace dvbp {

InstanceStats analyze(const Instance& inst) {
  InstanceStats stats;
  stats.dim = inst.dim();
  stats.n = inst.size();
  if (inst.empty()) return stats;

  stats.span = inst.span();
  stats.mu = inst.mu();
  stats.min_duration = inst.min_duration();
  stats.max_duration = inst.max_duration();
  double total_duration = 0.0;
  stats.mean_size.assign(inst.dim(), 0.0);
  stats.max_size.assign(inst.dim(), 0.0);
  for (const Item& r : inst.items()) {
    total_duration += r.duration();
    for (std::size_t j = 0; j < inst.dim(); ++j) {
      stats.mean_size[j] += r.size[j];
      stats.max_size[j] = std::max(stats.max_size[j], r.size[j]);
    }
  }
  stats.mean_duration = total_duration / static_cast<double>(inst.size());
  for (double& m : stats.mean_size) m /= static_cast<double>(inst.size());

  // Concurrency / height profile and the Lemma 1 bounds, one event sweep.
  // (Duplicated from opt/lower_bounds to keep core free of an opt
  // dependency; agreement is asserted by tests.)
  RVec load(inst.dim());
  std::size_t active = 0;
  double height_integral = 0.0;
  double concurrency_integral = 0.0;
  const auto events = build_event_stream(inst);
  Time prev = events.front().time;
  for (const Event& ev : events) {
    if (ev.time > prev) {
      height_integral += load.linf() * (ev.time - prev);
      stats.height_bound +=
          robust_ceil(load.linf()) * (ev.time - prev);
      concurrency_integral +=
          static_cast<double>(active) * (ev.time - prev);
      prev = ev.time;
    }
    if (ev.kind == EventKind::kArrival) {
      load += inst[ev.item].size;
      ++active;
      stats.peak_concurrency = std::max(stats.peak_concurrency, active);
      stats.peak_height = std::max(stats.peak_height, load.linf());
    } else {
      load -= inst[ev.item].size;
      load.clamp_nonnegative();
      --active;
    }
  }
  stats.mean_height = height_integral / stats.span;
  stats.mean_concurrency = concurrency_integral / stats.span;
  stats.utilization_bound =
      inst.total_utilization() / static_cast<double>(inst.dim());
  return stats;
}

std::string InstanceStats::report() const {
  std::ostringstream os;
  os << "items: " << n << "  dim: " << dim << "  span: " << span << '\n';
  os << "durations: min " << min_duration << ", mean " << mean_duration
     << ", max " << max_duration << "  (mu = " << mu << ")\n";
  os << "concurrency: mean " << mean_concurrency << ", peak "
     << peak_concurrency << '\n';
  os << "load height ||s(R,t)||_inf: mean " << mean_height << ", peak "
     << peak_height << '\n';
  os << "per-dimension size mean/max:";
  for (std::size_t j = 0; j < mean_size.size(); ++j) {
    os << "  [" << j << "] " << mean_size[j] << '/' << max_size[j];
  }
  os << '\n';
  os << "OPT floor (Lemma 1): height " << height_bound << ", utilization "
     << utilization_bound << '\n';
  return os.str();
}

}  // namespace dvbp
