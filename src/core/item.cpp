#include "core/item.hpp"

#include <ostream>
#include <sstream>

namespace dvbp {

std::string Item::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Item& item) {
  os << "Item{id=" << item.id << ", I=[" << item.arrival << ", "
     << item.departure << "), s=" << item.size;
  if (item.tenant != kNoTenant) os << ", tenant=" << item.tenant;
  return os << '}';
}

}  // namespace dvbp
