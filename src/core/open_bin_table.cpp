#include "core/open_bin_table.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#if !defined(DVBP_DISABLE_SIMD) && defined(__x86_64__)
#define DVBP_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dvbp {

namespace {

constexpr double kPoison = std::numeric_limits<double>::infinity();

/// Slots examined per kernel call: one 64-bit fit mask. The scans below
/// early-exit at this granularity, so a First Fit that lands in the first
/// chunk never pays for the rest of the table.
constexpr std::size_t kChunkSlots = 64;

/// All kernels compute the identical predicate: bit s of the result is
/// set iff lanes[j*stride + base + s] + add[j] <= thr for every j < dim.
/// `count` is a multiple of the SIMD width; slots past size() hold
/// +inf and therefore never set their bit.
using FitMaskFn = std::uint64_t (*)(const double* lanes, std::size_t dim,
                                    std::size_t stride, std::size_t base,
                                    std::size_t count, const double* add,
                                    double thr);

// [[maybe_unused]]: in SIMD builds the dispatch below never names this
// function (SSE2 is the x86-64 floor), but it IS the semantics reference
// and the only kernel under -DDVBP_DISABLE_SIMD.
[[maybe_unused]] std::uint64_t fit_mask_scalar(
    const double* lanes, std::size_t dim, std::size_t stride,
    std::size_t base, std::size_t count, const double* add, double thr) {
  std::uint64_t mask = 0;
  for (std::size_t s = 0; s < count; ++s) {
    bool ok = true;
    for (std::size_t j = 0; j < dim; ++j) {
      if (!fits_under_threshold(lanes[j * stride + base + s] + add[j], thr)) {
        ok = false;
        break;
      }
    }
    if (ok) mask |= std::uint64_t{1} << s;
  }
  return mask;
}

#if DVBP_SIMD_X86

// SSE2 is part of the x86-64 baseline; no target attribute needed.
// _mm_cmple_pd is ordered and quiet: NaN/inf lanes compare false,
// matching the scalar `sum <= thr`.
std::uint64_t fit_mask_sse2(const double* lanes, std::size_t dim,
                            std::size_t stride, std::size_t base,
                            std::size_t count, const double* add,
                            double thr) {
  std::uint64_t mask = 0;
  const __m128d thrv = _mm_set1_pd(thr);
  for (std::size_t s = 0; s < count; s += 2) {
    __m128d ok = _mm_castsi128_pd(_mm_set1_epi64x(-1));
    int bits = 0x3;
    for (std::size_t j = 0; j < dim; ++j) {
      const __m128d load = _mm_loadu_pd(lanes + j * stride + base + s);
      const __m128d sum = _mm_add_pd(load, _mm_set1_pd(add[j]));
      ok = _mm_and_pd(ok, _mm_cmple_pd(sum, thrv));
      // Group-level early exit, mirroring the scalar kernel's per-slot
      // dimension break: once no slot in the group can fit, the
      // remaining dimensions cannot set a bit, so skip them. Crucial
      // when one hot dimension rejects almost every bin.
      bits = _mm_movemask_pd(ok);
      if (bits == 0) break;
    }
    mask |= static_cast<std::uint64_t>(bits) << s;
  }
  return mask;
}

// Compiled for AVX2 via the function target attribute so the rest of the
// translation unit keeps the portable baseline; selected at runtime only
// when the CPU reports the feature. _CMP_LE_OQ is the ordered quiet <=,
// the exact vector counterpart of the scalar predicate.
__attribute__((target("avx2"))) std::uint64_t fit_mask_avx2(
    const double* lanes, std::size_t dim, std::size_t stride,
    std::size_t base, std::size_t count, const double* add, double thr) {
  std::uint64_t mask = 0;
  const __m256d thrv = _mm256_set1_pd(thr);
  for (std::size_t s = 0; s < count; s += 4) {
    __m256d ok = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    int bits = 0xF;
    for (std::size_t j = 0; j < dim; ++j) {
      const __m256d load = _mm256_loadu_pd(lanes + j * stride + base + s);
      const __m256d sum = _mm256_add_pd(load, _mm256_set1_pd(add[j]));
      ok = _mm256_and_pd(ok, _mm256_cmp_pd(sum, thrv, _CMP_LE_OQ));
      // Group-level early exit (see fit_mask_sse2): a dead group cannot
      // come back, so stop testing its remaining dimensions.
      bits = _mm256_movemask_pd(ok);
      if (bits == 0) break;
    }
    mask |= static_cast<std::uint64_t>(bits) << s;
  }
  return mask;
}

#endif  // DVBP_SIMD_X86

struct KernelDispatch {
  FitMaskFn fn;
  const char* name;
};

const KernelDispatch& kernel() {
  static const KernelDispatch d = [] {
#if DVBP_SIMD_X86
    if (__builtin_cpu_supports("avx2")) {
      return KernelDispatch{fit_mask_avx2, "avx2"};
    }
    return KernelDispatch{fit_mask_sse2, "sse2"};
#else
    return KernelDispatch{fit_mask_scalar, "scalar"};
#endif
  }();
  return d;
}

}  // namespace

const char* OpenBinTable::active_kernel() noexcept { return kernel().name; }

void OpenBinTable::ensure_capacity(std::size_t want_slots) {
  if (want_slots <= stride_) return;
  std::size_t new_stride = std::max<std::size_t>(stride_ * 2, kChunkSlots);
  while (new_stride < want_slots) new_stride *= 2;
  std::vector<double> grown(dim_ * new_stride, kPoison);
  if (size_ > 0) {  // on the first growth lanes_ is empty and lane(j) null
    for (std::size_t j = 0; j < dim_; ++j) {
      std::memcpy(grown.data() + j * new_stride, lane(j),
                  size_ * sizeof(double));
    }
  }
  lanes_.swap(grown);
  stride_ = new_stride;
}

void OpenBinTable::push_back_zero() {
  ensure_capacity(size_ + 1);
  for (std::size_t j = 0; j < dim_; ++j) mutable_lane(j)[size_] = 0.0;
  ++size_;
}

void OpenBinTable::push_back_raw(const double* load) {
  ensure_capacity(size_ + 1);
  for (std::size_t j = 0; j < dim_; ++j) mutable_lane(j)[size_] = load[j];
  ++size_;
}

void OpenBinTable::add(std::size_t slot, const double* add) {
  for (std::size_t j = 0; j < dim_; ++j) mutable_lane(j)[slot] += add[j];
}

void OpenBinTable::sub_clamped(std::size_t slot, const double* sub) {
  for (std::size_t j = 0; j < dim_; ++j) {
    double* entry = mutable_lane(j) + slot;
    *entry -= sub[j];
    *entry = std::max(*entry, 0.0);
  }
}

void OpenBinTable::erase_slot(std::size_t slot) {
  for (std::size_t j = 0; j < dim_; ++j) {
    double* l = mutable_lane(j);
    std::memmove(l + slot, l + slot + 1,
                 (size_ - slot - 1) * sizeof(double));
    l[size_ - 1] = kPoison;
  }
  --size_;
}

void OpenBinTable::clear() noexcept {
  std::fill(lanes_.begin(), lanes_.end(), kPoison);
  size_ = 0;
}

bool OpenBinTable::fits(std::size_t slot, const double* add) const {
  for (std::size_t j = 0; j < dim_; ++j) {
    if (!fits_under_threshold(lane(j)[slot] + add[j], threshold_)) {
      return false;
    }
  }
  return true;
}

namespace {
/// Rounds a chunk's slot count up to the SIMD width; the extra slots are
/// poisoned padding (the stride is a multiple of the width), so they can
/// be tested but never fit.
constexpr std::size_t padded_count(std::size_t want) {
  return (want + OpenBinTable::kSimdWidth - 1) &
         ~(OpenBinTable::kSimdWidth - 1);
}
}  // namespace

std::size_t OpenBinTable::find_first_fit(const double* add) const {
  const KernelDispatch& k = kernel();
  for (std::size_t base = 0; base < size_; base += kChunkSlots) {
    const std::size_t want = std::min(kChunkSlots, size_ - base);
    const std::uint64_t m = k.fn(lanes_.data(), dim_, stride_, base,
                                 padded_count(want), add, threshold_);
    if (m != 0) return base + static_cast<std::size_t>(std::countr_zero(m));
  }
  return npos;
}

std::size_t OpenBinTable::find_last_fit(const double* add) const {
  if (size_ == 0) return npos;
  const KernelDispatch& k = kernel();
  std::size_t base = ((size_ - 1) / kChunkSlots) * kChunkSlots;
  for (;;) {
    const std::size_t want = std::min(kChunkSlots, size_ - base);
    const std::uint64_t m = k.fn(lanes_.data(), dim_, stride_, base,
                                 padded_count(want), add, threshold_);
    if (m != 0) {
      return base + (63 - static_cast<std::size_t>(std::countl_zero(m)));
    }
    if (base == 0) return npos;
    base -= kChunkSlots;
  }
}

void OpenBinTable::collect_fitting(
    const double* add, std::vector<std::uint32_t>& out_slots) const {
  const KernelDispatch& k = kernel();
  for (std::size_t base = 0; base < size_; base += kChunkSlots) {
    const std::size_t want = std::min(kChunkSlots, size_ - base);
    std::uint64_t m = k.fn(lanes_.data(), dim_, stride_, base,
                           padded_count(want), add, threshold_);
    while (m != 0) {
      const std::size_t s = static_cast<std::size_t>(std::countr_zero(m));
      out_slots.push_back(static_cast<std::uint32_t>(base + s));
      m &= m - 1;
    }
  }
}

double OpenBinTable::total_load() const noexcept {
  // Slot-outer, dimension-inner: the same two-level summation (per-bin
  // partial sum folded into the running total) as the AoS
  // `total += bin.load().l1()` loop, so the router signal keeps its
  // exact pre-SoA value.
  double total = 0.0;
  for (std::size_t slot = 0; slot < size_; ++slot) {
    double b = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) b += lane(j)[slot];
    total += b;
  }
  return total;
}

double OpenBinTable::measure_slot(std::size_t slot, int measure) const {
  // Mirrors measure_load() on the owning bin's RVec operation for
  // operation: same accumulation order over dimensions, same std::pow
  // calls for L2, so the scalarized load is bit-identical to the AoS
  // path's and Best/Worst Fit comparisons cannot diverge.
  switch (measure) {
    case 0: {  // LoadMeasure::kLinf -- RVec::linf()
      double m = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) m = std::max(m, lane(j)[slot]);
      return m;
    }
    case 1: {  // LoadMeasure::kL1 -- RVec::l1()
      double s = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) s += lane(j)[slot];
      return s;
    }
    default: {  // LoadMeasure::kL2 -- RVec::lp(2.0)
      double s = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) {
        s += std::pow(lane(j)[slot], 2.0);
      }
      return std::pow(s, 1.0 / 2.0);
    }
  }
}

std::size_t OpenBinTable::find_best_fit(const double* add,
                                        int measure) const {
  const KernelDispatch& k = kernel();
  std::size_t best = npos;
  double best_w = 0.0;
  for (std::size_t base = 0; base < size_; base += kChunkSlots) {
    const std::size_t want = std::min(kChunkSlots, size_ - base);
    std::uint64_t m = k.fn(lanes_.data(), dim_, stride_, base,
                           padded_count(want), add, threshold_);
    while (m != 0) {
      const std::size_t slot =
          base + static_cast<std::size_t>(std::countr_zero(m));
      const double w = measure_slot(slot, measure);
      // Strict > over ascending slots = earliest-opened wins ties,
      // exactly like BestFitPolicy::choose over the fitting list.
      if (best == npos || w > best_w) {
        best = slot;
        best_w = w;
      }
      m &= m - 1;
    }
  }
  return best;
}

std::size_t OpenBinTable::find_worst_fit(const double* add,
                                         int measure) const {
  const KernelDispatch& k = kernel();
  std::size_t best = npos;
  double best_w = 0.0;
  for (std::size_t base = 0; base < size_; base += kChunkSlots) {
    const std::size_t want = std::min(kChunkSlots, size_ - base);
    std::uint64_t m = k.fn(lanes_.data(), dim_, stride_, base,
                           padded_count(want), add, threshold_);
    while (m != 0) {
      const std::size_t slot =
          base + static_cast<std::size_t>(std::countr_zero(m));
      const double w = measure_slot(slot, measure);
      if (best == npos || w < best_w) {
        best = slot;
        best_w = w;
      }
      m &= m - 1;
    }
  }
  return best;
}

}  // namespace dvbp
