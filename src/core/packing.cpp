#include "core/packing.hpp"

#include <algorithm>
#include <sstream>

#include "core/event.hpp"

namespace dvbp {

double Packing::cost() const noexcept {
  double total = 0.0;
  for (const BinRecord& b : bins_) total += b.usage_time();
  return total;
}

std::size_t Packing::open_bins_at(Time t) const noexcept {
  std::size_t n = 0;
  for (const BinRecord& b : bins_) {
    if (b.usage().contains(t)) ++n;
  }
  return n;
}

std::string Packing::to_gantt_csv(const Instance& inst) const {
  std::ostringstream os;
  os << "kind,bin,item,start,end\n";
  for (const BinRecord& b : bins_) {
    os << "bin," << b.id << ",," << b.opened << ',' << b.closed << '\n';
    for (ItemId r : b.items) {
      os << "item," << b.id << ',' << r << ',' << inst[r].arrival << ','
         << inst[r].departure << '\n';
    }
  }
  return os.str();
}

std::optional<std::string> Packing::validate(const Instance& inst) const {
  std::ostringstream err;
  if (assignment_.size() != inst.size()) {
    return "assignment size != instance size";
  }

  // Cross-check the item <-> bin maps.
  std::vector<std::size_t> seen(inst.size(), 0);
  for (std::size_t bi = 0; bi < bins_.size(); ++bi) {
    const BinRecord& b = bins_[bi];
    if (b.id != static_cast<BinId>(bi)) {
      err << "bin " << bi << ": id mismatch";
      return err.str();
    }
    if (b.items.empty()) {
      err << "bin " << bi << ": no items";
      return err.str();
    }
    for (ItemId r : b.items) {
      if (r >= inst.size()) {
        err << "bin " << bi << ": unknown item " << r;
        return err.str();
      }
      ++seen[r];
      if (assignment_[r] != b.id) {
        err << "item " << r << ": assignment disagrees with bin " << bi;
        return err.str();
      }
    }
  }
  for (std::size_t r = 0; r < seen.size(); ++r) {
    if (seen[r] != 1) {
      err << "item " << r << ": packed " << seen[r] << " times";
      return err.str();
    }
  }

  // Usage period: [first arrival, last departure] of the bin's items, and
  // every item's interval must sit inside it.
  for (const BinRecord& b : bins_) {
    Time first_arrival = inst[b.items.front()].arrival;
    Time last_departure = 0.0;
    for (ItemId r : b.items) {
      first_arrival = std::min(first_arrival, inst[r].arrival);
      last_departure = std::max(last_departure, inst[r].departure);
    }
    if (!time_eq(b.opened, first_arrival)) {
      err << "bin " << b.id << ": opened=" << b.opened
          << " != first arrival " << first_arrival;
      return err.str();
    }
    if (!time_eq(b.closed, last_departure)) {
      err << "bin " << b.id << ": closed=" << b.closed
          << " != last departure " << last_departure;
      return err.str();
    }
  }

  // Capacity audit: the load of each bin is piecewise constant between event
  // times; check at every event timestamp (segment start).
  const std::vector<Time> times = event_times(inst);
  for (const BinRecord& b : bins_) {
    for (Time t : times) {
      if (!b.usage().contains(t)) continue;
      RVec load(inst.dim());
      for (ItemId r : b.items) {
        if (inst[r].active_at(t)) load += inst[r].size;
      }
      if (!load.fits_in_capacity(1.0, 1e-7)) {
        err << "bin " << b.id << ": overload at t=" << t
            << " load=" << load.to_string();
        return err.str();
      }
    }
  }

  // No idle gaps: a bin's active item set must be non-empty throughout its
  // usage period (checked at event times inside the period).
  for (const BinRecord& b : bins_) {
    for (Time t : times) {
      if (!b.usage().contains(t)) continue;
      bool any = false;
      for (ItemId r : b.items) {
        if (inst[r].active_at(t)) {
          any = true;
          break;
        }
      }
      if (!any) {
        err << "bin " << b.id << ": idle at t=" << t
            << " inside usage period";
        return err.str();
      }
    }
  }

  return std::nullopt;
}

}  // namespace dvbp
