// Half-open time intervals [lo, hi), matching the paper's item active
// intervals I(r) = [a(r), e(r)).
#pragma once

#include <iosfwd>
#include <string>

#include "core/types.hpp"

namespace dvbp {

struct Interval {
  Time lo = 0.0;
  Time hi = 0.0;

  Interval() = default;
  Interval(Time lo_, Time hi_) : lo(lo_), hi(hi_) {}

  /// Length l(I); empty/degenerate intervals have length 0.
  Time length() const noexcept { return hi > lo ? hi - lo : 0.0; }

  bool empty() const noexcept { return hi <= lo; }

  /// Membership under half-open semantics: lo <= t < hi.
  bool contains(Time t) const noexcept { return lo <= t && t < hi; }

  /// True when the half-open intervals share at least one point.
  bool overlaps(const Interval& other) const noexcept {
    return lo < other.hi && other.lo < hi;
  }

  /// True when `other` is fully inside this interval.
  bool covers(const Interval& other) const noexcept {
    return lo <= other.lo && other.hi <= hi;
  }

  /// Intersection; empty when disjoint.
  Interval intersect(const Interval& other) const noexcept {
    return Interval(lo > other.lo ? lo : other.lo,
                    hi < other.hi ? hi : other.hi);
  }

  /// Smallest interval containing both (the convex hull).
  Interval hull(const Interval& other) const noexcept;

  bool operator==(const Interval& other) const noexcept {
    return lo == other.lo && hi == other.hi;
  }

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace dvbp
