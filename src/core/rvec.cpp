#include "core/rvec.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/fits.hpp"

namespace dvbp {

namespace {

/// Dimension guard for binary operations. This used to be an assert,
/// which vanished under NDEBUG: a d > kInlineDim vector combined with a
/// shorter one then read (or wrote) past the end of the shorter side's
/// heap buffer -- while every d <= kInlineDim mismatch stayed inside the
/// inline array and went unnoticed, which is exactly why the d <= 5
/// golden suites never caught it. The check survives every build mode.
void check_same_dim(std::size_t a, std::size_t b, const char* op) {
  if (a != b) {
    throw std::invalid_argument(std::string("RVec::") + op +
                                ": dimension mismatch (" +
                                std::to_string(a) + " vs " +
                                std::to_string(b) + ")");
  }
}

}  // namespace

RVec::RVec(std::size_t dim) { resize_uninitialized(dim); }

RVec::RVec(std::size_t dim, double fill) {
  resize_uninitialized(dim);
  std::fill(data(), data() + dim_, fill);
}

RVec::RVec(std::initializer_list<double> components) {
  resize_uninitialized(components.size());
  std::copy(components.begin(), components.end(), data());
}

RVec::RVec(const RVec& other) {
  resize_uninitialized(other.dim_);
  std::copy(other.data(), other.data() + dim_, data());
}

RVec::RVec(RVec&& other) noexcept
    : dim_(other.dim_), inline_(other.inline_), heap_(std::move(other.heap_)) {
  other.dim_ = 0;
  other.inline_.fill(0.0);
  other.heap_.clear();
}

RVec& RVec::operator=(const RVec& other) {
  if (this == &other) return *this;
  resize_uninitialized(other.dim_);
  std::copy(other.data(), other.data() + dim_, data());
  return *this;
}

RVec& RVec::operator=(RVec&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  inline_ = other.inline_;
  heap_ = std::move(other.heap_);
  other.dim_ = 0;
  other.inline_.fill(0.0);
  other.heap_.clear();
  return *this;
}

void RVec::resize_uninitialized(std::size_t dim) {
  dim_ = dim;
  if (dim_ > kInlineDim) {
    heap_.resize(dim_);
  } else {
    heap_.clear();
    inline_.fill(0.0);
  }
}

RVec RVec::axis(std::size_t dim, std::size_t axis, double value, double rest) {
  if (axis >= dim) throw std::out_of_range("RVec::axis: axis >= dim");
  RVec v(dim, rest);
  v[axis] = value;
  return v;
}

RVec& RVec::operator+=(const RVec& rhs) {
  check_same_dim(dim_, rhs.dim_, "operator+=");
  double* a = data();
  const double* b = rhs.data();
  for (std::size_t i = 0; i < dim_; ++i) a[i] += b[i];
  return *this;
}

RVec& RVec::operator-=(const RVec& rhs) {
  check_same_dim(dim_, rhs.dim_, "operator-=");
  double* a = data();
  const double* b = rhs.data();
  for (std::size_t i = 0; i < dim_; ++i) a[i] -= b[i];
  return *this;
}

RVec& RVec::operator*=(double c) noexcept {
  double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) a[i] *= c;
  return *this;
}

bool RVec::operator==(const RVec& rhs) const noexcept {
  if (dim_ != rhs.dim_) return false;
  return std::equal(data(), data() + dim_, rhs.data());
}

double RVec::linf() const noexcept {
  double m = 0.0;
  const double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) m = std::max(m, a[i]);
  return m;
}

double RVec::l1() const noexcept {
  double s = 0.0;
  const double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) s += a[i];
  return s;
}

double RVec::lp(double p) const {
  if (p < 1.0) throw std::invalid_argument("RVec::lp: p must be >= 1");
  double s = 0.0;
  const double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) s += std::pow(a[i], p);
  return std::pow(s, 1.0 / p);
}

bool RVec::is_nonnegative(double eps) const noexcept {
  const double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) {
    if (a[i] < -eps) return false;
  }
  return true;
}

bool RVec::fits_in_capacity(double cap, double eps) const noexcept {
  const double* a = data();
  const double threshold = fits_threshold(cap, eps);
  for (std::size_t i = 0; i < dim_; ++i) {
    if (!fits_under_threshold(a[i], threshold)) return false;
  }
  return true;
}

bool RVec::fits_with(const RVec& add, double eps) const {
  check_same_dim(dim_, add.dim_, "fits_with");
  return fits_under_threshold(data(), add.data(), dim_,
                              fits_threshold(1.0, eps));
}

bool RVec::fits_with_capacity(const RVec& add, double cap, double eps) const {
  check_same_dim(dim_, add.dim_, "fits_with_capacity");
  return fits_under_threshold(data(), add.data(), dim_,
                              fits_threshold(cap, eps));
}

void RVec::clamp_nonnegative() noexcept {
  double* a = data();
  for (std::size_t i = 0; i < dim_; ++i) a[i] = std::max(a[i], 0.0);
}

void RVec::max_with(const RVec& other) {
  check_same_dim(dim_, other.dim_, "max_with");
  double* a = data();
  const double* b = other.data();
  for (std::size_t i = 0; i < dim_; ++i) a[i] = std::max(a[i], b[i]);
}

std::string RVec::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RVec& v) {
  os << '(';
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ')';
}

RVec sum(const std::vector<RVec>& vs) {
  if (vs.empty()) return RVec{};
  RVec total(vs.front().dim());
  for (const RVec& v : vs) total += v;
  return total;
}

}  // namespace dvbp
