// Instance analytics: the summary a practitioner wants before choosing a
// dispatch policy -- duration spread (mu drives every bound in the paper),
// load/concurrency profile (how many servers the workload inherently
// needs), and size statistics per dimension.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"

namespace dvbp {

struct InstanceStats {
  std::size_t n = 0;
  std::size_t dim = 0;
  double span = 0.0;
  double mu = 0.0;              ///< max/min duration ratio
  double min_duration = 0.0;
  double max_duration = 0.0;
  double mean_duration = 0.0;
  std::size_t peak_concurrency = 0;    ///< max simultaneously-active items
  double mean_concurrency = 0.0;       ///< time-averaged over the span
  double peak_height = 0.0;            ///< max ||s(R,t)||_inf over time
  double mean_height = 0.0;            ///< time-averaged over the span
  std::vector<double> mean_size;       ///< per-dimension mean item size
  std::vector<double> max_size;        ///< per-dimension max item size
  double utilization_bound = 0.0;      ///< Lemma 1(ii)
  double height_bound = 0.0;           ///< Lemma 1(i)

  /// Multi-line human-readable report.
  std::string report() const;
};

/// Computes the full profile in one event sweep. Empty instances yield a
/// zeroed struct.
InstanceStats analyze(const Instance& inst);

}  // namespace dvbp
