// Order-sensitive FNV-1a hashes over packing decisions. Shared by the
// golden-packing suite (tests/test_golden_packings.cpp), the crash-recovery
// parity suite (tests/test_persist_recovery.cpp), and the network layer
// (src/net/): the Snapshot/Drain RPCs report packing_hash() over the wire
// so a remote client can check bin-for-bin parity against an in-process
// run without shipping the whole packing.
//
// Floating-point fields are hashed as raw IEEE-754 bit patterns: two
// states hash equal only when they are bit-identical, which is exactly the
// recovery and parity contract. The constants and field order are pinned
// by the golden hashes in tests/golden_packings.inc -- do not change them.
#pragma once

#include <bit>
#include <cstdint>

#include "core/dispatcher.hpp"
#include "core/packing.hpp"

namespace dvbp {

inline void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
}

/// Order-sensitive hash of every packing decision: item->bin assignment,
/// per-bin open/close timestamps (exact bit patterns) and item lists.
inline std::uint64_t packing_hash(const Packing& p) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (BinId b : p.assignment()) fnv(h, b);
  for (const BinRecord& rec : p.bins()) {
    fnv(h, rec.id);
    fnv(h, std::bit_cast<std::uint64_t>(rec.opened));
    fnv(h, std::bit_cast<std::uint64_t>(rec.closed));
    for (ItemId r : rec.items) fnv(h, r);
  }
  return h;
}

/// Hash of a live Dispatcher's complete observable allocation state:
/// job->bin assignment, bin usage records, and -- the part a Packing does
/// not carry -- each open bin's exact load bits, occupancy, and latest
/// departure. Two dispatchers with equal hashes have made identical
/// placement decisions AND hold bit-identical open-bin state, so (given
/// equal policy state) their futures coincide.
inline std::uint64_t dispatcher_state_hash(const Dispatcher& d) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  fnv(h, d.jobs_admitted());
  fnv(h, std::bit_cast<std::uint64_t>(d.last_event_time()));
  for (JobId job = 0; job < d.jobs_admitted(); ++job) {
    fnv(h, d.bin_of(static_cast<JobId>(job)));
  }
  for (const BinRecord& rec : d.records()) {
    fnv(h, rec.id);
    fnv(h, std::bit_cast<std::uint64_t>(rec.opened));
    fnv(h, std::bit_cast<std::uint64_t>(rec.closed));
    for (ItemId r : rec.items) fnv(h, r);
  }
  for (const BinView& view : d.open_views()) {
    fnv(h, view.id);
    fnv(h, view.num_items);
    fnv(h, std::bit_cast<std::uint64_t>(view.latest_departure));
    for (double c : *view.load) fnv(h, std::bit_cast<std::uint64_t>(c));
  }
  return h;
}

}  // namespace dvbp
