// Closed-form competitive-ratio bounds from Table 1 of the paper, as
// functions of mu (max/min duration ratio) and d (dimension). bench_table1
// prints these next to empirically measured ratios on the adversarial
// constructions.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace dvbp::bounds {

inline constexpr double kUnbounded = std::numeric_limits<double>::infinity();

/// Thm 5: any Any Fit packing algorithm has CR >= (mu+1)d.
constexpr double any_fit_lower(double mu, double d) { return (mu + 1) * d; }

/// Thm 2: CR(MoveToFront) <= (2mu+1)d + 1.
constexpr double move_to_front_upper(double mu, double d) {
  return (2 * mu + 1) * d + 1;
}

/// Thm 8: CR(MoveToFront) >= max{2mu, (mu+1)d}.
constexpr double move_to_front_lower(double mu, double d) {
  const double a = 2 * mu;
  const double b = (mu + 1) * d;
  return a > b ? a : b;
}

/// Thm 3: CR(FirstFit) <= (mu+2)d + 1.
constexpr double first_fit_upper(double mu, double d) {
  return (mu + 2) * d + 1;
}

/// Thm 5 applied to First Fit: CR(FirstFit) >= (mu+1)d.
constexpr double first_fit_lower(double mu, double d) {
  return any_fit_lower(mu, d);
}

/// Thm 4: CR(NextFit) <= 2*mu*d + 1.
constexpr double next_fit_upper(double mu, double d) { return 2 * mu * d + 1; }

/// Thm 6: CR(NextFit) >= 2*mu*d.
constexpr double next_fit_lower(double mu, double d) { return 2 * mu * d; }

/// Thm 7 ([22]): CR(BestFit) is unbounded, already for d = 1.
constexpr double best_fit_lower(double, double) { return kUnbounded; }
constexpr double best_fit_upper(double, double) { return kUnbounded; }

/// One row of Table 1.
struct TableRow {
  std::string algorithm;
  double lower_1d;   ///< lower bound at d = 1
  double upper_1d;   ///< upper bound at d = 1
  double lower_dd;   ///< lower bound at the given d
  double upper_dd;   ///< upper bound at the given d
};

/// Materializes Table 1 for concrete (mu, d).
std::vector<TableRow> table1(double mu, double d);

}  // namespace dvbp::bounds
