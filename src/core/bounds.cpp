#include "core/bounds.hpp"

namespace dvbp::bounds {

std::vector<TableRow> table1(double mu, double d) {
  std::vector<TableRow> rows;
  rows.push_back({"AnyFit", any_fit_lower(mu, 1), kUnbounded,
                  any_fit_lower(mu, d), kUnbounded});
  rows.push_back({"MoveToFront", move_to_front_lower(mu, 1),
                  move_to_front_upper(mu, 1), move_to_front_lower(mu, d),
                  move_to_front_upper(mu, d)});
  rows.push_back({"FirstFit", first_fit_lower(mu, 1), first_fit_upper(mu, 1),
                  first_fit_lower(mu, d), first_fit_upper(mu, d)});
  rows.push_back({"NextFit", next_fit_lower(mu, 1), next_fit_upper(mu, 1),
                  next_fit_lower(mu, d), next_fit_upper(mu, d)});
  rows.push_back({"BestFit", best_fit_lower(mu, 1), best_fit_upper(mu, 1),
                  best_fit_lower(mu, d), best_fit_upper(mu, d)});
  return rows;
}

}  // namespace dvbp::bounds
