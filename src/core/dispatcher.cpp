#include "core/dispatcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simulator.hpp"  // PolicyViolation
#include "obs/observer.hpp"

namespace dvbp {

Dispatcher::Dispatcher(std::size_t dim, Policy& policy, double bin_capacity,
                       obs::Observer* observer)
    : dim_(dim), policy_(policy), capacity_(bin_capacity), obs_(observer) {
  if (dim_ == 0) {
    throw std::invalid_argument("Dispatcher: dim must be >= 1");
  }
  if (capacity_ < 1.0) {
    throw std::invalid_argument("Dispatcher: bin_capacity must be >= 1");
  }
  policy_.reset();
}

void Dispatcher::check_time(Time now) {
  if (started_ && now < now_ - kTimeEps) {
    throw std::invalid_argument("Dispatcher: time went backwards");
  }
  started_ = true;
  now_ = std::max(now_, now);
}

Dispatcher::Admission Dispatcher::arrive(Time now, RVec size,
                                         Time expected_departure) {
  check_time(now);
  if (size.dim() != dim_) {
    throw std::invalid_argument("Dispatcher::arrive: dimension mismatch");
  }
  if (!size.is_nonnegative() || !size.fits_in_capacity(1.0)) {
    throw std::invalid_argument(
        "Dispatcher::arrive: size outside [0,1]^d");
  }
  if (!(expected_departure > now)) {
    throw std::invalid_argument(
        "Dispatcher::arrive: expected departure must exceed arrival");
  }

  const JobId job = static_cast<JobId>(items_.size());
  items_.emplace_back(job, now, expected_departure, std::move(size));
  const Item& item = items_.back();
  ++active_jobs_;

  views_.clear();
  views_.reserve(open_order_.size());
  for (std::size_t idx : open_order_) {
    const BinState& b = bins_[idx];
    views_.push_back(BinView{b.id(), &b.load(), b.opened_at(),
                             b.num_active(), b.latest_departure(),
                             b.capacity()});
  }
  if (obs_ != nullptr) {
    obs_->on_arrival(now, job,
                     std::span<const double>(item.size.begin(),
                                             item.size.dim()),
                     open_order_.size());
  }
  BinId chosen;
  {
    obs::ScopedTimer timer(obs_ != nullptr ? obs_->decision_latency()
                                           : nullptr);
    chosen = policy_.select_bin(now, item, std::span<const BinView>(views_));
  }
  std::size_t rejections = 0;
  if (obs_ != nullptr && obs_->wants_rejections()) {
    for (std::size_t idx : open_order_) {
      if (!bins_[idx].fits(item.size)) {
        ++rejections;
        obs_->on_reject(now, job, bins_[idx].id());
      }
    }
  }

  Admission admission;
  admission.job = job;
  if (chosen == kNoBin) {
    const BinId id = static_cast<BinId>(bins_.size());
    bins_.emplace_back(id, dim_, now, capacity_);
    records_.push_back(BinRecord{id, now, now, {}});
    open_order_.push_back(bins_.size() - 1);
    if (obs_ != nullptr) obs_->on_open(now, id);
    bins_.back().add(item);
    records_.back().items.push_back(job);
    assignment_.push_back(id);
    policy_.on_open(now, id, item);
    if (obs_ != nullptr) obs_->on_place(now, job, id, true, rejections);
    admission.bin = id;
    admission.opened_new_bin = true;
    return admission;
  }

  auto it = std::find_if(
      open_order_.begin(), open_order_.end(),
      [&](std::size_t idx) { return bins_[idx].id() == chosen; });
  if (it == open_order_.end()) {
    throw PolicyViolation("Dispatcher: policy selected a bin that is not "
                          "open");
  }
  BinState& bin = bins_[*it];
  if (!bin.fits(item.size)) {
    throw PolicyViolation(
        "Dispatcher: policy selected a bin that cannot hold the job");
  }
  bin.add(item);
  records_[bin.id()].items.push_back(job);
  assignment_.push_back(bin.id());
  policy_.on_pack(now, bin.id(), item);
  if (obs_ != nullptr) obs_->on_place(now, job, bin.id(), false, rejections);
  admission.bin = bin.id();
  return admission;
}

void Dispatcher::depart(Time now, JobId job) {
  check_time(now);
  if (job >= items_.size()) {
    throw std::invalid_argument("Dispatcher::depart: unknown job");
  }
  const BinId bin_id = assignment_[job];
  if (bin_id == kNoBin) {
    throw std::invalid_argument("Dispatcher::depart: job already departed");
  }
  // Patch the actual departure so latest-departure bookkeeping is honest.
  items_[job].departure = now;

  auto it = std::find_if(
      open_order_.begin(), open_order_.end(),
      [&](std::size_t idx) { return bins_[idx].id() == bin_id; });
  if (it == open_order_.end()) {
    throw std::logic_error("Dispatcher::depart: bin not open");
  }
  BinState& bin = bins_[*it];
  const bool emptied = bin.remove(items_[job], items_);
  assignment_[job] = kNoBin;
  --active_jobs_;
  if (emptied) {
    records_[bin_id].closed = now;
    open_order_.erase(it);
  }
  if (obs_ != nullptr) {
    obs_->on_depart(now, job, bin_id, emptied);
    if (emptied) obs_->on_close(now, bin_id, bin.opened_at());
  }
  policy_.on_depart(now, bin_id, items_[job], emptied);
}

BinId Dispatcher::bin_of(JobId job) const {
  if (job >= assignment_.size()) {
    throw std::invalid_argument("Dispatcher::bin_of: unknown job");
  }
  return assignment_[job];
}

double Dispatcher::cost_so_far(Time at) const {
  double total = 0.0;
  std::vector<char> open(records_.size(), 0);
  for (std::size_t idx : open_order_) open[bins_[idx].id()] = 1;
  for (const BinRecord& rec : records_) {
    if (open[rec.id]) {
      total += std::max(0.0, at - rec.opened);
    } else {
      total += rec.usage_time();
    }
  }
  return total;
}

}  // namespace dvbp
