#include "core/dispatcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simulator.hpp"  // PolicyViolation
#include "obs/observer.hpp"

namespace dvbp {

Dispatcher::Dispatcher(std::size_t dim, Policy& policy, double bin_capacity,
                       obs::Observer* observer)
    : dim_(dim), policy_(policy), capacity_(bin_capacity), obs_(observer),
      table_(dim, bin_capacity) {
  if (dim_ == 0) {
    throw std::invalid_argument("Dispatcher: dim must be >= 1");
  }
  if (capacity_ < 1.0) {
    throw std::invalid_argument("Dispatcher: bin_capacity must be >= 1");
  }
  policy_.reset();
}

void Dispatcher::check_time(Time now) {
  if (started_ && now < now_ - kTimeEps) {
    throw std::invalid_argument("Dispatcher: time went backwards");
  }
  started_ = true;
  now_ = std::max(now_, now);
}

Dispatcher::Admission Dispatcher::arrive(Time now, RVec size,
                                         Time expected_departure,
                                         TenantId tenant) {
  check_time(now);
  if (size.dim() != dim_) {
    throw std::invalid_argument("Dispatcher::arrive: dimension mismatch");
  }
  if (!size.is_nonnegative() || !size.fits_in_capacity(1.0)) {
    throw std::invalid_argument(
        "Dispatcher::arrive: size outside [0,1]^d");
  }
  if (!(expected_departure > now)) {
    throw std::invalid_argument(
        "Dispatcher::arrive: expected departure must exceed arrival");
  }

  const JobId job = static_cast<JobId>(items_.size());
  items_.emplace_back(job, now, expected_departure, std::move(size), tenant);
  const Item& item = items_.back();
  ++active_jobs_;
  if (usage_hook_ != nullptr) {
    usage_hook_->on_arrive(tenant, now, item.size, open_order_.size());
  }

  if (obs_ != nullptr) {
    obs_->on_arrival(now, job,
                     std::span<const double>(item.size.begin(),
                                             item.size.dim()),
                     open_order_.size());
  }
  BinId chosen;
  {
    obs::ScopedTimer timer(obs_ != nullptr ? obs_->decision_latency()
                                           : nullptr);
    chosen = policy_.select_bin_soa(now, item,
                                    std::span<const BinView>(views_), table_);
  }
  std::size_t rejections = 0;
  if (obs_ != nullptr && obs_->wants_rejections()) {
    for (std::size_t idx : open_order_) {
      if (!bins_[idx].fits(item.size)) {
        ++rejections;
        obs_->on_reject(now, job, bins_[idx].id());
      }
    }
  }

  Admission admission;
  admission.job = job;
  if (chosen == kNoBin) {
    const BinId id = static_cast<BinId>(bins_.size());
    // bins_ is a chunked slab: emplace never moves existing BinStates,
    // so views_ load pointers stay valid with no repatching.
    BinState& bin =
        bins_.emplace_back(id, dim_, now, capacity_, &usage_pool_);
    records_.push_back(BinRecord{id, now, now, {}});
    slot_of_.push_back(static_cast<std::uint32_t>(open_order_.size()));
    open_order_.push_back(bins_.size() - 1);
    table_.push_back_zero();
    if (obs_ != nullptr) obs_->on_open(now, id);
    bin.add(item);
    table_.add(table_.size() - 1, item.size.data());
    views_.push_back(BinView{id, &bin.load(), bin.opened_at(),
                             bin.num_active(), bin.latest_departure(),
                             bin.capacity()});
    records_.back().items.push_back(job);
    assignment_.push_back(id);
    last_bin_.push_back(id);
    evicted_.push_back(0);
    policy_.on_open(now, id, item);
    if (obs_ != nullptr) obs_->on_place(now, job, id, true, rejections);
    admission.bin = id;
    admission.opened_new_bin = true;
    return admission;
  }

  if (chosen >= bins_.size() || slot_of_[chosen] == kNoSlot) {
    throw PolicyViolation("Dispatcher: policy selected a bin that is not "
                          "open");
  }
  const std::uint32_t slot = slot_of_[chosen];
  BinState& bin = bins_[open_order_[slot]];
  if (!bin.fits(item.size)) {
    throw PolicyViolation(
        "Dispatcher: policy selected a bin that cannot hold the job");
  }
  bin.add(item);
  table_.add(slot, item.size.data());
  views_[slot].num_items = bin.num_active();
  views_[slot].latest_departure = bin.latest_departure();
  records_[bin.id()].items.push_back(job);
  assignment_.push_back(bin.id());
  last_bin_.push_back(bin.id());
  evicted_.push_back(0);
  policy_.on_pack(now, bin.id(), item);
  if (obs_ != nullptr) obs_->on_place(now, job, bin.id(), false, rejections);
  admission.bin = bin.id();
  return admission;
}

void Dispatcher::depart(Time now, JobId job) {
  check_time(now);
  if (job >= items_.size()) {
    throw std::invalid_argument("Dispatcher::depart: unknown job");
  }
  const BinId bin_id = assignment_[job];
  if (bin_id == kNoBin) {
    throw std::invalid_argument(
        evicted_[job] != 0
            ? "Dispatcher::depart: job is evicted; replace() it first"
            : "Dispatcher::depart: job already departed");
  }
  // Patch the actual departure so latest-departure bookkeeping is honest.
  items_[job].departure = now;
  if (usage_hook_ != nullptr) {
    usage_hook_->on_depart(items_[job].tenant, now, items_[job].size,
                           open_order_.size());
  }

  const std::uint32_t slot = slot_of_[bin_id];
  if (slot == kNoSlot) {
    throw std::logic_error("Dispatcher::depart: bin not open");
  }
  BinState& bin = bins_[open_order_[slot]];
  const bool emptied = bin.remove(items_[job]);
  assignment_[job] = kNoBin;
  --active_jobs_;
  if (emptied) {
    records_[bin_id].closed = now;
    closed_usage_ += records_[bin_id].usage_time();
    close_slot(slot);
  } else {
    table_.sub_clamped(slot, items_[job].size.data());
    views_[slot].num_items = bin.num_active();
    views_[slot].latest_departure = bin.latest_departure();
  }
  if (obs_ != nullptr) {
    obs_->on_depart(now, job, bin_id, emptied);
    if (emptied) obs_->on_close(now, bin_id, bin.opened_at());
  }
  policy_.on_depart(now, bin_id, items_[job], emptied);
}

Dispatcher::Eviction Dispatcher::evict(Time now, JobId job) {
  check_time(now);
  if (job >= items_.size()) {
    throw std::invalid_argument("Dispatcher::evict: unknown job");
  }
  const BinId bin_id = assignment_[job];
  if (bin_id == kNoBin) {
    throw std::invalid_argument(
        evicted_[job] != 0 ? "Dispatcher::evict: job already evicted"
                           : "Dispatcher::evict: job already departed");
  }
  const std::uint32_t slot = slot_of_[bin_id];
  if (slot == kNoSlot) {
    throw std::logic_error("Dispatcher::evict: bin not open");
  }
  // The job stays active (no demand change), but the bin count may step.
  if (usage_hook_ != nullptr) {
    usage_hook_->on_advance(now, open_order_.size());
  }
  BinState& bin = bins_[open_order_[slot]];
  // The item's departure field is left alone: the job is still running.
  const bool emptied = bin.remove(items_[job]);
  assignment_[job] = kNoBin;
  evicted_[job] = 1;
  ++evicted_jobs_;
  if (emptied) {
    records_[bin_id].closed = now;
    closed_usage_ += records_[bin_id].usage_time();
    close_slot(slot);
  } else {
    table_.sub_clamped(slot, items_[job].size.data());
    views_[slot].num_items = bin.num_active();
    views_[slot].latest_departure = bin.latest_departure();
  }
  if (obs_ != nullptr) {
    obs_->on_evict(now, job, bin_id, emptied);
    if (emptied) obs_->on_close(now, bin_id, bin.opened_at());
  }
  policy_.on_depart(now, bin_id, items_[job], emptied);
  return Eviction{bin_id, emptied};
}

BinId Dispatcher::replace(Time now, JobId job, BinId target) {
  check_time(now);
  if (job >= items_.size() || evicted_[job] == 0) {
    throw std::invalid_argument(
        "Dispatcher::replace: job is not in the evicted state");
  }
  if (usage_hook_ != nullptr) {
    usage_hook_->on_advance(now, open_order_.size());
  }
  const Item& item = items_[job];

  if (target == kNoBin) {
    const BinId id = static_cast<BinId>(bins_.size());
    BinState& bin =
        bins_.emplace_back(id, dim_, now, capacity_, &usage_pool_);
    records_.push_back(BinRecord{id, now, now, {}});
    slot_of_.push_back(static_cast<std::uint32_t>(open_order_.size()));
    open_order_.push_back(bins_.size() - 1);
    table_.push_back_zero();
    if (obs_ != nullptr) obs_->on_open(now, id);
    bin.add(item);
    table_.add(table_.size() - 1, item.size.data());
    views_.push_back(BinView{id, &bin.load(), bin.opened_at(),
                             bin.num_active(), bin.latest_departure(),
                             bin.capacity()});
    records_.back().items.push_back(job);
    assignment_[job] = id;
    last_bin_[job] = id;
    evicted_[job] = 0;
    --evicted_jobs_;
    policy_.on_open(now, id, item);
    if (obs_ != nullptr) obs_->on_replace(now, job, id, true);
    return id;
  }

  if (target >= bins_.size() || slot_of_[target] == kNoSlot) {
    throw PolicyViolation(
        "Dispatcher::replace: target bin is not open");
  }
  const std::uint32_t slot = slot_of_[target];
  BinState& bin = bins_[open_order_[slot]];
  if (!bin.fits(item.size)) {
    throw PolicyViolation(
        "Dispatcher::replace: target bin cannot hold the job");
  }
  bin.add(item);
  table_.add(slot, item.size.data());
  views_[slot].num_items = bin.num_active();
  views_[slot].latest_departure = bin.latest_departure();
  records_[bin.id()].items.push_back(job);
  assignment_[job] = bin.id();
  last_bin_[job] = bin.id();
  evicted_[job] = 0;
  --evicted_jobs_;
  policy_.on_pack(now, bin.id(), item);
  if (obs_ != nullptr) obs_->on_replace(now, job, bin.id(), false);
  return bin.id();
}

BinId Dispatcher::last_bin_of(JobId job) const {
  if (job >= last_bin_.size()) {
    throw std::invalid_argument("Dispatcher::last_bin_of: unknown job");
  }
  return last_bin_[job];
}

Packing Dispatcher::packing() const {
  return Packing(last_bin_, records_);
}

void Dispatcher::close_slot(std::uint32_t slot) {
  slot_of_[bins_[open_order_[slot]].id()] = kNoSlot;
  open_order_.erase(open_order_.begin() + slot);
  views_.erase(views_.begin() + slot);
  table_.erase_slot(slot);
  for (std::size_t k = slot; k < open_order_.size(); ++k) {
    slot_of_[bins_[open_order_[k]].id()] = static_cast<std::uint32_t>(k);
  }
}

double Dispatcher::total_active_load() const noexcept {
  // Served from the SoA table: no BinState chunk lookup or RVec data()
  // indirection per bin, same summation order (see total_load()).
  return table_.total_load();
}

BinId Dispatcher::bin_of(JobId job) const {
  if (job >= assignment_.size()) {
    throw std::invalid_argument("Dispatcher::bin_of: unknown job");
  }
  return assignment_[job];
}

namespace {
// In-band version marker for the dispatcher state stream. Streams written
// before tenancy start directly with the u64 dim (a small integer), so a
// leading sentinel no plausible dim can collide with makes the stream
// self-describing: v3 adds the per-item tenant id, older streams load with
// every item anonymous. Bump the low bits on the next layout change.
constexpr std::uint64_t kStateV3Magic = 0xFFFFFFFF00000003ull;
}  // namespace

void Dispatcher::save_state(serial::Writer& out) const {
  out.u64(kStateV3Magic);
  out.u64(dim_);
  out.f64(capacity_);
  out.f64(now_);
  out.u8(started_ ? 1 : 0);
  out.u64(active_jobs_);
  out.f64(closed_usage_);

  out.u64(items_.size());
  for (const Item& item : items_) {
    out.f64(item.arrival);
    out.f64(item.departure);
    out.u32(item.tenant);
    for (double c : item.size) out.f64(c);
  }
  for (BinId bin : assignment_) out.u32(bin);
  for (JobId job = 0; job < items_.size(); ++job) {
    out.u32(last_bin_[job]);
    out.u8(evicted_[job]);
  }

  out.u64(records_.size());
  for (const BinRecord& rec : records_) {
    out.f64(rec.opened);
    out.f64(rec.closed);
    out.u64(rec.items.size());
    for (ItemId r : rec.items) out.u32(r);
  }

  out.u64(open_order_.size());
  for (std::size_t idx : open_order_) {
    out.u64(idx);
    bins_[idx].save_state(out);
  }
}

void Dispatcher::restore_state(serial::Reader& in) {
  if (!items_.empty() || !bins_.empty() || started_) {
    throw std::logic_error(
        "Dispatcher::restore_state: dispatcher already has state");
  }
  std::uint64_t first = in.u64();
  const bool has_tenants = first == kStateV3Magic;
  if (has_tenants) first = in.u64();  // v3: the dim follows the marker
  if (first != dim_) {
    throw serial::SerialError(
        "Dispatcher::restore_state: dimension mismatch");
  }
  if (in.f64() != capacity_) {
    throw serial::SerialError(
        "Dispatcher::restore_state: bin_capacity mismatch");
  }
  now_ = in.f64();
  started_ = in.u8() != 0;
  active_jobs_ = in.u64();
  closed_usage_ = in.f64();

  const std::uint64_t num_items = in.u64();
  for (std::uint64_t i = 0; i < num_items; ++i) {
    const Time arrival = in.f64();
    const Time departure = in.f64();
    const TenantId tenant = has_tenants ? in.u32() : kNoTenant;
    RVec size(dim_);
    for (std::size_t j = 0; j < dim_; ++j) size[j] = in.f64();
    items_.emplace_back(static_cast<ItemId>(i), arrival, departure,
                        std::move(size), tenant);
  }
  assignment_.reserve(num_items);
  for (std::uint64_t i = 0; i < num_items; ++i) {
    assignment_.push_back(in.u32());
  }
  last_bin_.reserve(num_items);
  evicted_.reserve(num_items);
  for (std::uint64_t i = 0; i < num_items; ++i) {
    last_bin_.push_back(in.u32());
    evicted_.push_back(in.u8());
    if (evicted_.back() != 0) ++evicted_jobs_;
  }

  const std::uint64_t num_bins = in.u64();
  records_.reserve(num_bins);
  for (std::uint64_t b = 0; b < num_bins; ++b) {
    BinRecord rec;
    rec.id = static_cast<BinId>(b);
    rec.opened = in.f64();
    rec.closed = in.f64();
    const std::uint64_t n = in.u64();
    rec.items.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) rec.items.push_back(in.u32());
    records_.push_back(std::move(rec));
  }
  // Every bin gets a shell at its historical opening time; open bins are
  // then filled below with their exact saved state.
  for (std::uint64_t b = 0; b < num_bins; ++b) {
    bins_.emplace_back(static_cast<BinId>(b), dim_, records_[b].opened,
                       capacity_, &usage_pool_);
  }
  slot_of_.assign(num_bins, kNoSlot);

  const std::uint64_t num_open = in.u64();
  if (num_open > num_bins) {
    throw serial::SerialError(
        "Dispatcher::restore_state: more open bins than bins");
  }
  open_order_.reserve(num_open);
  views_.reserve(num_open);
  for (std::uint64_t k = 0; k < num_open; ++k) {
    const std::uint64_t idx = in.u64();
    if (idx >= num_bins) {
      throw serial::SerialError(
          "Dispatcher::restore_state: open-bin index out of range");
    }
    bins_[idx].restore_state(in);
    slot_of_[idx] = static_cast<std::uint32_t>(k);
    open_order_.push_back(idx);
    const BinState& bin = bins_[idx];
    // Raw-bit copy into the table lane: the restored slot is
    // bit-identical to the saved load, like the RVec it mirrors.
    table_.push_back_raw(bin.load().data());
    views_.push_back(BinView{bin.id(), &bin.load(), bin.opened_at(),
                             bin.num_active(), bin.latest_departure(),
                             bin.capacity()});
  }
}

double Dispatcher::cost_so_far(Time at) const {
  if (at >= now_) {
    // Every closed bin closed at or before now_ <= at, so its clamped
    // contribution is its full usage time: use the running sum and only
    // walk the open bins.
    double total = closed_usage_;
    for (std::size_t idx : open_order_) {
      total += std::max(0.0, at - bins_[idx].opened_at());
    }
    return total;
  }
  // Historical query: clamp closed bins to [opened, min(at, closed)).
  double total = 0.0;
  for (const BinRecord& rec : records_) {
    const bool open = slot_of_[rec.id] != kNoSlot;
    const Time end = open ? at : std::min(at, rec.closed);
    total += std::max(0.0, end - rec.opened);
  }
  return total;
}

}  // namespace dvbp
