// Dispatcher: the live, streaming counterpart of simulate().
//
// simulate() replays a complete Instance; a real service does not have one
// -- requests arrive and depart over wall-clock time. Dispatcher wraps a
// Policy behind an incremental interface: call arrive() when a job shows
// up (placement is returned immediately and is irrevocable, per the
// paper's model), depart() when it finishes. Departure times need not be
// known at arrival; clairvoyant policies may be fed an expected departure.
//
// Feeding an Instance's event stream through a Dispatcher reproduces
// simulate() exactly (differential-tested), so all competitive-ratio
// guarantees carry over verbatim.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/bin_state.hpp"
#include "core/open_bin_table.hpp"
#include "core/packing.hpp"
#include "core/policies/policy.hpp"
#include "core/pool.hpp"
#include "core/types.hpp"

namespace dvbp::obs {
class Observer;  // obs/observer.hpp
}  // namespace dvbp::obs

namespace dvbp {

/// Identifier the caller uses to refer to a live job.
using JobId = ItemId;

/// Per-tenant usage accounting hook (implemented by
/// tenancy::UsageAccountant; core stays tenancy-agnostic the same way it
/// stays obs-agnostic). The dispatcher invokes the hook with the open-bin
/// count *before* the event mutates state: bin counts are piecewise
/// constant between events, so accruing [last event, now) at the old count
/// is exact, not an approximation. A null hook costs one branch per event.
class TenantUsageHook {
 public:
  virtual ~TenantUsageHook() = default;
  /// A job of `tenant` was admitted at `now` with demand `size`.
  virtual void on_arrive(TenantId tenant, Time now, const RVec& size,
                         std::size_t open_bins) = 0;
  /// A job of `tenant` departed at `now`, releasing demand `size`.
  virtual void on_depart(TenantId tenant, Time now, const RVec& size,
                         std::size_t open_bins) = 0;
  /// Clock advance with no demand change (evict/replace: the job stays
  /// active, but the open-bin count may step).
  virtual void on_advance(Time now, std::size_t open_bins) = 0;
};

class Dispatcher {
 public:
  /// `policy` is borrowed (not owned) and reset(); it must outlive the
  /// dispatcher. `bin_capacity` >= 1 enables resource augmentation.
  /// `observer` (borrowed, nullable) receives one callback per allocator
  /// event -- the live-service telemetry feed (see obs/observer.hpp).
  Dispatcher(std::size_t dim, Policy& policy, double bin_capacity = 1.0,
             obs::Observer* observer = nullptr);

  struct Admission {
    JobId job = kNoItem;
    BinId bin = kNoBin;
    bool opened_new_bin = false;
  };

  /// Admits a job of the given size at time `now` (monotonically
  /// nondecreasing across all calls). `expected_departure` is only shown
  /// to clairvoyant policies; pass the default when unknown. `tenant`
  /// labels the job for usage accounting (src/tenancy/) and is invisible
  /// to every placement policy -- packing decisions are tenant-blind.
  /// Throws std::invalid_argument on bad sizes or time regressions.
  Admission arrive(Time now, RVec size,
                   Time expected_departure =
                       std::numeric_limits<Time>::infinity(),
                   TenantId tenant = kNoTenant);

  /// Attaches (or detaches, with nullptr) the per-tenant usage accounting
  /// hook. Borrowed; must outlive the dispatcher or be detached first.
  void set_usage_hook(TenantUsageHook* hook) noexcept {
    usage_hook_ = hook;
  }

  /// Marks `job` finished at `now`. Throws std::invalid_argument for
  /// unknown/already-departed jobs or time regressions.
  void depart(Time now, JobId job);

  // --- Migration primitives (src/core/rebalancer.hpp) ------------------

  struct Eviction {
    BinId bin = kNoBin;   ///< bin the job was evicted from
    bool emptied = false; ///< true if the eviction closed that bin
  };

  /// Removes `job` from its bin without departing it: the job stays
  /// active ("in limbo") and must be re-placed with replace() before it
  /// can depart. If the bin empties it closes permanently, exactly as on
  /// a departure. Unlike depart(), the item's departure field is NOT
  /// patched (the job is still running). Throws std::invalid_argument
  /// for unknown, departed, or already-evicted jobs.
  Eviction evict(Time now, JobId job);

  /// Re-places a previously evicted `job` at `now`: into open bin
  /// `target`, or into a freshly opened bin when `target` == kNoBin.
  /// Throws std::invalid_argument if the job is not in limbo and
  /// PolicyViolation if `target` is not open or cannot hold the job.
  /// Returns the (possibly new) bin id.
  BinId replace(Time now, JobId job, BinId target = kNoBin);

  /// True while `job` has been evict()ed but not yet replace()d.
  bool is_evicted(JobId job) const {
    return job < evicted_.size() && evicted_[job] != 0;
  }

  /// Number of jobs currently in limbo (evicted, not yet re-placed).
  std::size_t jobs_evicted() const noexcept { return evicted_jobs_; }

  /// Last bin `job` was packed into (never reset by depart/evict) --
  /// the authoritative final placement for Packing assignment under
  /// migration, where records() may list a job in several bins.
  BinId last_bin_of(JobId job) const;

  /// Materializes the current placement: assignment[j] = last bin j was
  /// packed into, plus the full bin records. Under migration a job
  /// appears in the item list of every bin it ever occupied; the
  /// assignment names the final one. Jobs in limbo keep their previous
  /// bin in the assignment -- call at quiescence (no evicted jobs) for a
  /// well-defined packing.
  Packing packing() const;

  // --- Introspection ---------------------------------------------------

  std::size_t dim() const noexcept { return dim_; }
  std::size_t open_bins() const noexcept { return open_order_.size(); }
  std::size_t bins_opened() const noexcept { return records_.size(); }
  std::size_t jobs_admitted() const noexcept { return items_.size(); }
  std::size_t jobs_active() const noexcept { return active_jobs_; }
  Time last_event_time() const noexcept { return now_; }

  /// Bin currently hosting `job` (kNoBin after departure).
  BinId bin_of(JobId job) const;

  /// Read-only views of the open bins in opening order. The spans and the
  /// load pointers inside them are invalidated by the next arrive()/depart();
  /// callers that share the dispatcher across threads must hold their own
  /// lock across the call and any use of the result (the sharded service's
  /// router reads these under the shard mutex).
  std::span<const BinView> open_views() const noexcept { return views_; }

  /// Sum over open bins and dimensions of the current load -- the
  /// "total usage" signal the least-usage router balances on. O(open bins).
  double total_active_load() const noexcept;

  /// Every job ever admitted, by JobId (indexable, iterable; backed by a
  /// chunked slab, so Item references stay valid across later arrivals).
  /// A job's `departure` field holds the expected departure passed to
  /// arrive() until depart() patches in the actual one; `arrival` is the
  /// (possibly clamped) admission time.
  const StableVector<Item>& items() const noexcept { return items_; }

  /// Total usage time accrued up to `at`: every bin contributes
  /// max(0, min(at, close time) - open time), where open bins have no
  /// close time yet. This is the objective of eq. (1) metered live, and
  /// it is exact for historical timestamps too: a closed bin's
  /// contribution is clamped to `at` instead of counted in full. O(1)
  /// bookkeeping keeps queries at `at` >= last_event_time() to O(open
  /// bins); earlier timestamps scan every record.
  double cost_so_far(Time at) const;

  /// Usage records of every bin ever opened (open bins report their
  /// opening time with `closed` == opened; consult open_bins()).
  const std::vector<BinRecord>& records() const noexcept { return records_; }

  /// Live state of bin `id` if it is currently open, nullptr otherwise.
  /// Invalidated by the next mutating call (invariant-checker use).
  const BinState* open_bin_state(BinId id) const noexcept {
    if (id >= slot_of_.size() || slot_of_[id] == kNoSlot) return nullptr;
    return &bins_[open_order_[slot_of_[id]]];
  }

  /// Running sum of closed bins' usage time (monotone; checker use).
  double closed_usage() const noexcept { return closed_usage_; }

  // --- Checkpointing (src/persist/checkpoint.hpp) ----------------------

  /// Serializes the complete allocation state -- items, assignments, bin
  /// records, open-bin order, and every open bin's exact load bits -- such
  /// that restore_state() on a fresh Dispatcher (same dim/capacity, same
  /// policy configuration; policy state is checkpointed separately through
  /// Policy::save_state) reproduces a dispatcher whose future decisions
  /// are bit-identical to this one's. Closed bins are restored as empty
  /// shells (their BinState is never consulted again); their usage history
  /// lives in records(). O(items + bins).
  void save_state(serial::Writer& out) const;

  /// Restores state written by save_state(). Must be called on a freshly
  /// constructed dispatcher (nothing admitted yet) with the same dim and
  /// bin_capacity; throws std::logic_error otherwise and
  /// serial::SerialError on malformed input. Does not invoke any Policy
  /// callback -- pair with Policy::restore_state.
  void restore_state(serial::Reader& in);

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  void check_time(Time now);
  void close_slot(std::uint32_t slot);

  std::size_t dim_;
  Policy& policy_;
  double capacity_;
  obs::Observer* obs_;
  TenantUsageHook* usage_hook_ = nullptr;
  Time now_ = 0.0;
  bool started_ = false;

  UsagePool usage_pool_;  // usage-interval nodes for all bins' active lists
  StableVector<Item> items_;  // by JobId; departure patched on depart
  std::vector<BinId> assignment_;    // JobId -> bin (kNoBin once departed)
  std::vector<BinId> last_bin_;      // JobId -> last bin packed into
  std::vector<std::uint8_t> evicted_;  // JobId -> 1 while in limbo
  std::size_t evicted_jobs_ = 0;
  StableVector<BinState> bins_;      // every bin ever opened, by id
  OpenBinTable table_;  // SoA loads of the open bins, parallel to views_
  std::vector<std::size_t> open_order_;  // indices into bins_, opening order
  std::vector<std::uint32_t> slot_of_;  // BinId -> slot in open_order_/views_
  std::vector<BinRecord> records_;
  std::vector<BinView> views_;  // open-bin views, parallel to open_order_
  std::size_t active_jobs_ = 0;
  double closed_usage_ = 0.0;  // running sum of closed bins' usage time
};

}  // namespace dvbp
