#include "core/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "core/bin_state.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "obs/observer.hpp"

namespace dvbp {

namespace {

/// Engine-internal mutable run state, kept out of the public header.
class Engine {
 public:
  Engine(const Instance& inst, Policy& policy, const SimOptions& opts)
      : inst_(inst), policy_(policy), opts_(opts), obs_(opts.observer),
        assignment_(inst.size(), kNoBin) {}

  SimResult run() {
    policy_.reset();
    const std::vector<Event> events = build_event_stream(inst_);
    for (const Event& ev : events) {
      if (ev.kind == EventKind::kDeparture) {
        handle_departure(ev);
      } else {
        handle_arrival(ev);
      }
      if (opts_.record_timeline) note_timeline(ev.time);
    }
    assert(open_order_.empty() && "bins remain open after all departures");
    return finish();
  }

 private:
  void handle_arrival(const Event& ev) {
    const Item& item = inst_[ev.item];
    views_.clear();
    views_.reserve(open_order_.size());
    for (std::size_t idx : open_order_) {
      const BinState& b = bins_[idx];
      views_.push_back(BinView{b.id(), &b.load(), b.opened_at(),
                               b.num_active(), b.latest_departure(),
                               b.capacity()});
    }
    if (obs_ != nullptr) {
      obs_->on_arrival(ev.time, item.id,
                       std::span<const double>(item.size.begin(),
                                               item.size.dim()),
                       open_order_.size());
    }
    BinId chosen;
    {
      obs::ScopedTimer timer(obs_ != nullptr ? obs_->decision_latency()
                                             : nullptr);
      chosen =
          policy_.select_bin(ev.time, item, std::span<const BinView>(views_));
    }
    std::size_t rejections = 0;
    if (obs_ != nullptr && obs_->wants_rejections()) {
      for (std::size_t idx : open_order_) {
        if (!bins_[idx].fits(item.size)) {
          ++rejections;
          obs_->on_reject(ev.time, item.id, bins_[idx].id());
        }
      }
    }
    if (chosen == kNoBin) {
      open_bin(ev.time, item);
      if (obs_ != nullptr) {
        obs_->on_place(ev.time, item.id, bins_.back().id(), true, rejections);
      }
    } else {
      pack_into(ev.time, chosen, item);
      if (obs_ != nullptr) {
        obs_->on_place(ev.time, item.id, chosen, false, rejections);
      }
    }
    max_open_ = std::max(max_open_, open_order_.size());
  }

  void open_bin(Time now, const Item& item) {
    const BinId id = static_cast<BinId>(bins_.size());
    bins_.emplace_back(id, inst_.dim(), now, opts_.bin_capacity);
    records_.push_back(BinRecord{id, now, now, {}});
    open_order_.push_back(bins_.size() - 1);
    if (obs_ != nullptr) obs_->on_open(now, id);
    BinState& bin = bins_.back();
    if (!bin.fits(item.size)) {
      throw PolicyViolation("item does not fit even in an empty bin");
    }
    bin.add(item);
    records_.back().items.push_back(item.id);
    assignment_[item.id] = id;
    policy_.on_open(now, id, item);
  }

  void pack_into(Time now, BinId chosen, const Item& item) {
    auto it = std::find_if(open_order_.begin(), open_order_.end(),
                           [&](std::size_t idx) {
                             return bins_[idx].id() == chosen;
                           });
    if (it == open_order_.end()) {
      throw PolicyViolation("policy '" + std::string(policy_.name()) +
                            "' selected bin that is not open");
    }
    BinState& bin = bins_[*it];
    if (!bin.fits(item.size)) {
      throw PolicyViolation("policy '" + std::string(policy_.name()) +
                            "' selected a bin that cannot hold the item");
    }
    bin.add(item);
    records_[bin.id()].items.push_back(item.id);
    assignment_[item.id] = bin.id();
    policy_.on_pack(now, bin.id(), item);
  }

  void handle_departure(const Event& ev) {
    const Item& item = inst_[ev.item];
    const BinId bin_id = assignment_[item.id];
    assert(bin_id != kNoBin && "departure before arrival");
    auto it = std::find_if(open_order_.begin(), open_order_.end(),
                           [&](std::size_t idx) {
                             return bins_[idx].id() == bin_id;
                           });
    assert(it != open_order_.end() && "departure from a closed bin");
    BinState& bin = bins_[*it];
    const bool emptied = bin.remove(item, inst_.items());
    if (emptied) {
      records_[bin_id].closed = ev.time;
      open_order_.erase(it);
    }
    if (obs_ != nullptr) {
      obs_->on_depart(ev.time, item.id, bin_id, emptied);
      if (emptied) obs_->on_close(ev.time, bin_id, bin.opened_at());
    }
    policy_.on_depart(ev.time, bin_id, item, emptied);
  }

  void note_timeline(Time t) {
    if (!timeline_.empty() && timeline_.back().first == t) {
      timeline_.back().second = open_order_.size();
    } else {
      timeline_.emplace_back(t, open_order_.size());
    }
  }

  SimResult finish() {
    if (obs_ != nullptr && obs_->tracer() != nullptr) obs_->tracer()->flush();
    SimResult result;
    result.bins_opened = bins_.size();
    result.max_open_bins = max_open_;
    result.packing = Packing(std::move(assignment_), std::move(records_));
    result.cost = result.packing.cost();
    result.timeline = std::move(timeline_);
    if (opts_.audit) {
      if (auto err = result.packing.validate(inst_)) {
        throw std::logic_error("simulate: packing audit failed: " + *err);
      }
    }
    return result;
  }

  const Instance& inst_;
  Policy& policy_;
  const SimOptions& opts_;
  obs::Observer* const obs_;

  std::vector<BinState> bins_;        // every bin ever opened, by id
  std::vector<std::size_t> open_order_;  // indices of open bins, opening order
  std::vector<BinRecord> records_;
  std::vector<BinId> assignment_;
  std::vector<BinView> views_;  // scratch
  std::size_t max_open_ = 0;
  std::vector<std::pair<Time, std::size_t>> timeline_;
};

}  // namespace

SimResult simulate(const Instance& inst, Policy& policy, SimOptions opts) {
  if (auto err = inst.validate()) {
    throw std::invalid_argument("simulate: invalid instance: " + *err);
  }
  if (opts.bin_capacity < 1.0) {
    throw std::invalid_argument("simulate: bin_capacity must be >= 1");
  }
  if (opts.audit && opts.bin_capacity != 1.0) {
    throw std::invalid_argument(
        "simulate: audit assumes unit bins; disable it under augmentation");
  }
  Engine engine(inst, policy, opts);
  return engine.run();
}

SimResult simulate(const Instance& inst, std::string_view policy_name,
                   SimOptions opts, std::uint64_t policy_seed) {
  PolicyPtr policy = make_policy(policy_name, policy_seed);
  return simulate(inst, *policy, opts);
}

}  // namespace dvbp
