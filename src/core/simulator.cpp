#include "core/simulator.hpp"

#include <algorithm>
#include <limits>

#include "core/bin_state.hpp"
#include "core/event.hpp"
#include "core/open_bin_table.hpp"
#include "core/policies/registry.hpp"
#include "core/pool.hpp"
#include "obs/observer.hpp"

namespace dvbp {

namespace {

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

/// Engine-internal mutable run state, kept out of the public header.
///
/// Per-event bookkeeping is constant-time in the number of open bins
/// (DESIGN.md Sec. 4.8): slot_of_ maps a BinId to its position in the
/// opening-order arrays, and views_ is patched incrementally on
/// open/pack/depart instead of being rebuilt for every arrival. Closing a
/// bin compacts the opening-order arrays with one memmove; everything
/// else is O(1).
class Engine {
 public:
  Engine(const Instance& inst, Policy& policy, const SimOptions& opts)
      : inst_(inst), policy_(policy), opts_(opts), obs_(opts.observer),
        table_(inst.dim(), opts.bin_capacity),
        assignment_(inst.size(), kNoBin) {}

  SimResult run(std::span<const Event> events) {
    policy_.reset();
    for (const Event& ev : events) {
      if (ev.item >= inst_.size()) {
        throw std::invalid_argument(
            "simulate: event references item " + std::to_string(ev.item) +
            " outside the instance");
      }
      if (ev.kind == EventKind::kDeparture) {
        handle_departure(ev);
      } else {
        handle_arrival(ev);
      }
      if (opts_.record_timeline) note_timeline(ev.time);
    }
    if (!open_order_.empty()) {
      // An assert here would vanish under NDEBUG and yield a packing whose
      // open bins never receive a close time (understated cost).
      throw std::logic_error(
          "simulate: " + std::to_string(open_order_.size()) +
          " bin(s) still open after the event stream drained; the stream "
          "is truncated or missing departures");
    }
    return finish();
  }

 private:
  void handle_arrival(const Event& ev) {
    const Item& item = inst_[ev.item];
    if (obs_ != nullptr) {
      obs_->on_arrival(ev.time, item.id,
                       std::span<const double>(item.size.begin(),
                                               item.size.dim()),
                       open_order_.size());
    }
    BinId chosen;
    {
      obs::ScopedTimer timer(obs_ != nullptr ? obs_->decision_latency()
                                             : nullptr);
      chosen = policy_.select_bin_soa(
          ev.time, item, std::span<const BinView>(views_), table_);
    }
    std::size_t rejections = 0;
    if (obs_ != nullptr && obs_->wants_rejections()) {
      for (std::size_t idx : open_order_) {
        if (!bins_[idx].fits(item.size)) {
          ++rejections;
          obs_->on_reject(ev.time, item.id, bins_[idx].id());
        }
      }
    }
    if (chosen == kNoBin) {
      open_bin(ev.time, item);
      if (obs_ != nullptr) {
        obs_->on_place(ev.time, item.id, bins_.back().id(), true, rejections);
      }
    } else {
      pack_into(ev.time, chosen, item);
      if (obs_ != nullptr) {
        obs_->on_place(ev.time, item.id, chosen, false, rejections);
      }
    }
    max_open_ = std::max(max_open_, open_order_.size());
  }

  void open_bin(Time now, const Item& item) {
    const BinId id = static_cast<BinId>(bins_.size());
    // bins_ is a chunked slab: emplace never moves existing BinStates,
    // so the load pointers inside views_ stay valid with no repatching.
    BinState& bin =
        bins_.emplace_back(id, inst_.dim(), now, opts_.bin_capacity,
                           &usage_pool_);
    records_.push_back(BinRecord{id, now, now, {}});
    slot_of_.push_back(static_cast<std::uint32_t>(open_order_.size()));
    open_order_.push_back(bins_.size() - 1);
    table_.push_back_zero();
    if (obs_ != nullptr) obs_->on_open(now, id);
    if (!bin.fits(item.size)) {
      throw PolicyViolation("item does not fit even in an empty bin");
    }
    bin.add(item);
    table_.add(table_.size() - 1, item.size.data());
    views_.push_back(BinView{id, &bin.load(), bin.opened_at(),
                             bin.num_active(), bin.latest_departure(),
                             bin.capacity()});
    records_.back().items.push_back(item.id);
    assignment_[item.id] = id;
    policy_.on_open(now, id, item);
  }

  void pack_into(Time now, BinId chosen, const Item& item) {
    if (chosen >= bins_.size() || slot_of_[chosen] == kNoSlot) {
      throw PolicyViolation("policy '" + std::string(policy_.name()) +
                            "' selected bin that is not open");
    }
    const std::uint32_t slot = slot_of_[chosen];
    BinState& bin = bins_[open_order_[slot]];
    if (!bin.fits(item.size)) {
      throw PolicyViolation("policy '" + std::string(policy_.name()) +
                            "' selected a bin that cannot hold the item");
    }
    bin.add(item);
    table_.add(slot, item.size.data());
    views_[slot].num_items = bin.num_active();
    views_[slot].latest_departure = bin.latest_departure();
    records_[bin.id()].items.push_back(item.id);
    assignment_[item.id] = bin.id();
    policy_.on_pack(now, bin.id(), item);
  }

  void handle_departure(const Event& ev) {
    const Item& item = inst_[ev.item];
    const BinId bin_id = assignment_[item.id];
    if (bin_id == kNoBin) {
      throw std::logic_error(
          "simulate: departure of item " + std::to_string(item.id) +
          " before its arrival (inconsistent event stream)");
    }
    const std::uint32_t slot = slot_of_[bin_id];
    if (slot == kNoSlot) {
      throw std::logic_error(
          "simulate: departure of item " + std::to_string(item.id) +
          " from bin " + std::to_string(bin_id) +
          " which already closed (duplicate departure?)");
    }
    BinState& bin = bins_[open_order_[slot]];
    const bool emptied = bin.remove(item);
    if (emptied) {
      records_[bin_id].closed = ev.time;
      close_slot(slot);
    } else {
      // Mirror the load update on the table lane with the identical
      // subtract-then-clamp the RVec path just performed.
      table_.sub_clamped(slot, item.size.data());
      views_[slot].num_items = bin.num_active();
      views_[slot].latest_departure = bin.latest_departure();
    }
    if (obs_ != nullptr) {
      obs_->on_depart(ev.time, item.id, bin_id, emptied);
      if (emptied) obs_->on_close(ev.time, bin_id, bin.opened_at());
    }
    policy_.on_depart(ev.time, bin_id, item, emptied);
  }

  /// Removes the bin at `slot` from the opening-order arrays, preserving
  /// order (First Fit iterates views_ in opening order) and reindexing the
  /// shifted suffix.
  void close_slot(std::uint32_t slot) {
    slot_of_[bins_[open_order_[slot]].id()] = kNoSlot;
    open_order_.erase(open_order_.begin() + slot);
    views_.erase(views_.begin() + slot);
    table_.erase_slot(slot);
    for (std::size_t k = slot; k < open_order_.size(); ++k) {
      slot_of_[bins_[open_order_[k]].id()] = static_cast<std::uint32_t>(k);
    }
  }

  void note_timeline(Time t) {
    if (!timeline_.empty() && timeline_.back().first == t) {
      timeline_.back().second = open_order_.size();
    } else {
      timeline_.emplace_back(t, open_order_.size());
    }
  }

  SimResult finish() {
    if (obs_ != nullptr && obs_->tracer() != nullptr) obs_->tracer()->flush();
    SimResult result;
    result.bins_opened = bins_.size();
    result.max_open_bins = max_open_;
    result.packing = Packing(std::move(assignment_), std::move(records_));
    result.cost = result.packing.cost();
    result.timeline = std::move(timeline_);
    if (opts_.audit) {
      if (auto err = result.packing.validate(inst_)) {
        throw std::logic_error("simulate: packing audit failed: " + *err);
      }
    }
    return result;
  }

  const Instance& inst_;
  Policy& policy_;
  const SimOptions& opts_;
  obs::Observer* const obs_;

  UsagePool usage_pool_;  // usage-interval nodes for every bin's active list
  StableVector<BinState> bins_;       // every bin ever opened, by id
  OpenBinTable table_;    // SoA loads of the open bins, parallel to views_
  std::vector<std::size_t> open_order_;  // indices of open bins, opening order
  std::vector<std::uint32_t> slot_of_;  // BinId -> slot in open_order_/views_
  std::vector<BinRecord> records_;
  std::vector<BinId> assignment_;
  std::vector<BinView> views_;  // open-bin views, parallel to open_order_
  std::size_t max_open_ = 0;
  std::vector<std::pair<Time, std::size_t>> timeline_;
};

void check_options(const Instance& inst, const SimOptions& opts) {
  if (auto err = inst.validate()) {
    throw std::invalid_argument("simulate: invalid instance: " + *err);
  }
  if (opts.bin_capacity < 1.0) {
    throw std::invalid_argument("simulate: bin_capacity must be >= 1");
  }
  if (opts.audit && opts.bin_capacity != 1.0) {
    throw std::invalid_argument(
        "simulate: audit assumes unit bins; disable it under augmentation");
  }
}

}  // namespace

SimResult simulate(const Instance& inst, Policy& policy, SimOptions opts) {
  check_options(inst, opts);
  Engine engine(inst, policy, opts);
  return engine.run(build_event_stream(inst));
}

SimResult simulate_events(const Instance& inst, std::span<const Event> events,
                          Policy& policy, SimOptions opts) {
  check_options(inst, opts);
  Engine engine(inst, policy, opts);
  return engine.run(events);
}

SimResult simulate(const Instance& inst, std::string_view policy_name,
                   SimOptions opts, std::uint64_t policy_seed) {
  PolicyPtr policy = make_policy(policy_name, policy_seed);
  return simulate(inst, *policy, opts);
}

}  // namespace dvbp
