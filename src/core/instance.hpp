// Instance: an ordered list of DVBP items (the input sequence R).
//
// The order of the items is the arrival order the online algorithm sees;
// items sharing an arrival timestamp are presented in list order, which is
// what the adversarial constructions of Sec. 6 rely on ("items arrive in
// that order at time 0").
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/item.hpp"
#include "core/rvec.hpp"

namespace dvbp {

class Instance {
 public:
  Instance() = default;
  explicit Instance(std::size_t dim) : dim_(dim) {}

  /// Resource dimension d. 0 until the first item fixes it (if constructed
  /// with the default constructor).
  std::size_t dim() const noexcept { return dim_; }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  const Item& operator[](std::size_t i) const { return items_[i]; }
  const std::vector<Item>& items() const noexcept { return items_; }

  /// Append an item; its id is assigned as its position. Throws
  /// std::invalid_argument on dimension mismatch, non-positive duration,
  /// negative arrival, or size outside [0, 1+eps]^d.
  ItemId add(Time arrival, Time departure, RVec size);

  /// Sorts items by (arrival, original order) and reassigns ids so that ids
  /// are again the arrival order. Generators that emit items out of order
  /// call this once at the end.
  void sort_by_arrival();

  /// Labels item `id` with a tenant (src/gen/tenants.hpp builds whole
  /// assignments). Throws std::out_of_range on a bad id.
  void set_tenant(ItemId id, TenantId tenant);

  /// Rescales item `id`'s size by `factor`, clamping every coordinate to
  /// [0, 1] so the item stays packable. Used by the demand-inflation
  /// adversary. Throws std::out_of_range on a bad id.
  void scale_size(ItemId id, double factor);

  /// --- Aggregate properties (paper Sec. 2.1) ---

  Time min_duration() const;
  Time max_duration() const;
  /// mu = max/min duration ratio. Throws on an empty instance.
  double mu() const;
  /// span(R): measure of the union of the active intervals.
  Time span() const;
  /// Earliest arrival / latest departure.
  Time first_arrival() const;
  Time last_departure() const;
  /// s(R): component-wise total demand.
  RVec total_size() const;
  /// s(R, t): total size of items active at time t.
  RVec load_at(Time t) const;
  /// Ids of items active at time t.
  std::vector<ItemId> active_at(Time t) const;
  /// Sum over items of ||s(r)||_inf * l(I(r)) (numerator of Lemma 1(ii)).
  double total_utilization() const;

  /// Full validation: per-item invariants plus id consistency. Returns an
  /// error description, or nullopt when the instance is well-formed.
  std::optional<std::string> validate() const;

  /// --- Trace (de)serialization ---
  /// CSV line format: arrival,departure,s_0,...,s_{d-1}
  /// Lines starting with '#' are comments.
  std::string to_csv() const;
  static Instance from_csv(std::istream& is);
  static Instance from_csv_string(const std::string& text);

 private:
  void check_item(Time arrival, Time departure, const RVec& size) const;

  std::size_t dim_ = 0;
  std::vector<Item> items_;
};

std::ostream& operator<<(std::ostream& os, const Instance& inst);

}  // namespace dvbp
