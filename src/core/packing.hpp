// Packing: the immutable result of running a policy over an instance.
//
// Records which bin every item was placed in and every bin's usage period
// [opened, closed). cost() realizes eq. (1): the sum over bins of their
// usage-period lengths. validate() is a full offline audit used by tests:
// it replays the event stream and checks capacity, irrevocability, and
// open/close bookkeeping independently of the simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/interval.hpp"
#include "core/types.hpp"

namespace dvbp {

struct BinRecord {
  BinId id = kNoBin;
  Time opened = 0.0;
  Time closed = 0.0;
  std::vector<ItemId> items;  ///< every item ever packed, in packing order

  Interval usage() const noexcept { return Interval(opened, closed); }
  Time usage_time() const noexcept { return usage().length(); }
};

class Packing {
 public:
  Packing() = default;
  Packing(std::vector<BinId> assignment, std::vector<BinRecord> bins)
      : assignment_(std::move(assignment)), bins_(std::move(bins)) {}

  /// assignment()[item id] = bin id.
  const std::vector<BinId>& assignment() const noexcept { return assignment_; }
  BinId bin_of(ItemId item) const { return assignment_.at(item); }

  const std::vector<BinRecord>& bins() const noexcept { return bins_; }
  std::size_t num_bins() const noexcept { return bins_.size(); }

  /// Total usage time (paper eq. (1)).
  double cost() const noexcept;

  /// Number of bins whose usage period contains t.
  std::size_t open_bins_at(Time t) const noexcept;

  /// Gantt-style CSV export for downstream visualization: one line per
  /// (bin, item) with the item's active interval, plus one "bin" line per
  /// usage period. Columns: kind,bin,item,start,end.
  std::string to_gantt_csv(const Instance& inst) const;

  /// Audits the packing against the instance it claims to pack. Checks:
  ///  - every item assigned to exactly one recorded bin that lists it;
  ///  - per-dimension load within capacity at every event timestamp;
  ///  - each bin opened at its first item's arrival and closed at the last
  ///    departure of its items (single usage interval, never reopened).
  /// Returns an error description or nullopt when consistent.
  std::optional<std::string> validate(const Instance& inst) const;

 private:
  std::vector<BinId> assignment_;
  std::vector<BinRecord> bins_;
};

}  // namespace dvbp
