#include "core/rebalancer.hpp"

#include <algorithm>
#include <cmath>

#include "core/bin_state.hpp"

namespace dvbp {

namespace {
constexpr double kBudgetEps = 1e-9;
}  // namespace

Rebalancer::Rebalancer(const Dispatcher& dispatcher, MigrationConfig config,
                       MigrationExec exec)
    : dispatcher_(dispatcher), config_(config), exec_(std::move(exec)) {}

Rebalancer::Rebalancer(Dispatcher& dispatcher, MigrationConfig config)
    : Rebalancer(static_cast<const Dispatcher&>(dispatcher), config,
                 MigrationExec{
                     [d = &dispatcher](Time t, JobId j) { d->evict(t, j); },
                     [d = &dispatcher](Time t, JobId j, BinId b) {
                       return d->replace(t, j, b);
                     }}) {}

std::size_t Rebalancer::on_departure(Time now) {
  if (config_.migrations_per_event <= 0.0) return 0;
  ++stats_.events;
  credits_ = std::min(credits_ + config_.migrations_per_event,
                      config_.burst_factor * config_.migrations_per_event);
  volume_credits_ =
      std::min(volume_credits_ + config_.volume_per_event,
               config_.burst_factor * config_.volume_per_event);
  stats_.migration_credits += config_.migrations_per_event;
  stats_.volume_credits += config_.volume_per_event;

  std::size_t moved = 0;
  Plan plan;
  while (plan_close(plan)) {
    execute(now, plan);
    moved += plan.jobs.size();
  }
  return moved;
}

// Finds the next bin the budget can close: candidates from fewest
// survivors (ties: lowest id), survivors relocated first-fit over the
// other open bins in opening order against scratch loads. All-or-nothing.
bool Rebalancer::plan_close(Plan& plan) const {
  const auto views = dispatcher_.open_views();
  if (views.size() < 2) return false;

  std::vector<std::size_t> candidates;
  for (std::size_t slot = 0; slot < views.size(); ++slot) {
    const std::size_t n = views[slot].num_items;
    if (n >= 1 && n <= config_.max_survivors &&
        static_cast<double>(n) <= credits_ + kBudgetEps) {
      candidates.push_back(slot);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&views](std::size_t a, std::size_t b) {
              if (views[a].num_items != views[b].num_items) {
                return views[a].num_items < views[b].num_items;
              }
              return views[a].id < views[b].id;
            });

  std::vector<RVec> scratch;
  for (std::size_t c : candidates) {
    const BinState* source = dispatcher_.open_bin_state(views[c].id);
    const std::vector<ItemId>& jobs = source->active_items();

    double volume = 0.0;
    for (JobId job : jobs) volume += dispatcher_.items()[job].size.l1();
    if (volume > volume_credits_ + kBudgetEps) continue;

    scratch.clear();
    for (const BinView& view : views) scratch.push_back(*view.load);

    plan.jobs.assign(jobs.begin(), jobs.end());
    plan.targets.clear();
    bool feasible = true;
    for (JobId job : plan.jobs) {
      const RVec& size = dispatcher_.items()[job].size;
      BinId target = kNoBin;
      for (std::size_t slot = 0; slot < views.size(); ++slot) {
        if (slot == c) continue;
        if (scratch[slot].fits_with_capacity(size, views[slot].capacity)) {
          target = views[slot].id;
          for (std::size_t k = 0; k < size.dim(); ++k) {
            scratch[slot][k] += size[k];
          }
          break;
        }
      }
      if (target == kNoBin) {
        feasible = false;
        break;
      }
      plan.targets.push_back(target);
    }
    if (!feasible) continue;

    plan.source = views[c].id;
    plan.volume = volume;
    return true;
  }
  return false;
}

void Rebalancer::execute(Time now, const Plan& plan) {
  for (JobId job : plan.jobs) exec_.evict(now, job);
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    exec_.replace(now, plan.jobs[i], plan.targets[i]);
  }
  credits_ -= static_cast<double>(plan.jobs.size());
  volume_credits_ -= plan.volume;
  stats_.migrations += plan.jobs.size();
  stats_.migrated_volume += plan.volume;
  ++stats_.bins_closed;
}

MigrationBudgetUsage Rebalancer::budget_usage() const noexcept {
  return MigrationBudgetUsage{stats_.migrations, stats_.migrated_volume,
                              stats_.migration_credits,
                              stats_.volume_credits};
}

}  // namespace dvbp
