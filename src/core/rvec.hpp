// RVec: a small d-dimensional non-negative resource vector.
//
// This is the size/load type of the DVBP problem (paper Sec. 2): item sizes
// s(r) in [0,1]^d and bin loads. Dimensions encountered in practice are tiny
// (the paper evaluates d in {1,2,5}), so RVec keeps the components inline for
// d <= kInlineDim and only falls back to the heap beyond that. All hot-loop
// operations (+=, -=, fits_with) are allocation-free.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dvbp {

class RVec {
 public:
  /// Components stored inline; covers every dimension the paper evaluates.
  static constexpr std::size_t kInlineDim = 8;

  /// Zero vector of dimension 0. Useful as a placeholder only.
  RVec() noexcept = default;

  /// Zero vector of dimension `dim`.
  explicit RVec(std::size_t dim);

  /// Vector of dimension `dim` with every component equal to `fill`.
  RVec(std::size_t dim, double fill);

  /// Vector from an explicit component list, e.g. RVec{0.5, 0.25}.
  RVec(std::initializer_list<double> components);

  RVec(const RVec& other);
  /// Moved-from vectors are left fully normalized (dimension 0, zeroed
  /// inline storage, empty heap): a later dimension-checked operation on
  /// one throws instead of silently answering for a stale dimension.
  RVec(RVec&& other) noexcept;
  RVec& operator=(const RVec& other);
  RVec& operator=(RVec&& other) noexcept;
  ~RVec() = default;

  /// Named constructors.
  static RVec zeros(std::size_t dim) { return RVec(dim); }
  static RVec ones(std::size_t dim) { return RVec(dim, 1.0); }
  /// Unit-ish vector: `value` in dimension `axis`, `rest` elsewhere.
  static RVec axis(std::size_t dim, std::size_t axis, double value,
                   double rest = 0.0);

  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return dim_ == 0; }

  double operator[](std::size_t i) const noexcept { return data()[i]; }
  double& operator[](std::size_t i) noexcept { return data()[i]; }

  const double* data() const noexcept {
    return dim_ <= kInlineDim ? inline_.data() : heap_.data();
  }
  double* data() noexcept {
    return dim_ <= kInlineDim ? inline_.data() : heap_.data();
  }

  const double* begin() const noexcept { return data(); }
  const double* end() const noexcept { return data() + dim_; }

  RVec& operator+=(const RVec& rhs);
  RVec& operator-=(const RVec& rhs);
  RVec& operator*=(double c) noexcept;

  friend RVec operator+(RVec lhs, const RVec& rhs) { return lhs += rhs; }
  friend RVec operator-(RVec lhs, const RVec& rhs) { return lhs -= rhs; }
  friend RVec operator*(RVec lhs, double c) { return lhs *= c; }
  friend RVec operator*(double c, RVec rhs) { return rhs *= c; }

  bool operator==(const RVec& rhs) const noexcept;
  bool operator!=(const RVec& rhs) const noexcept { return !(*this == rhs); }

  /// L-infinity norm: max component (Sec. 2, used throughout the analysis).
  double linf() const noexcept;
  /// L1 norm: sum of components.
  double l1() const noexcept;
  /// General Lp norm for p >= 1.
  double lp(double p) const;

  /// True when every component is >= 0 (valid resource demand).
  bool is_nonnegative(double eps = 0.0) const noexcept;

  /// True when every component is <= `cap` + eps (fits in a bin of uniform
  /// capacity `cap`; bins have capacity 1 after normalization).
  bool fits_in_capacity(double cap = 1.0,
                        double eps = kCapacityEps) const noexcept;

  /// True when (*this + add) fits in a unit bin, i.e. for every dimension j,
  /// (*this)[j] + add[j] <= 1 + eps. The comparison is the shared
  /// fits.hpp predicate, the same one the SIMD open-bin table and the
  /// packing audit use, so no two paths can disagree by one ulp.
  bool fits_with(const RVec& add, double eps = kCapacityEps) const;

  /// Capacity-augmented variant: (*this + add) <= cap per dimension. Used
  /// by the resource-augmentation analysis (online bins of size 1+beta).
  bool fits_with_capacity(const RVec& add, double cap,
                          double eps = kCapacityEps) const;

  /// Component-wise clamp to [0, +inf). Bin loads are maintained by adding
  /// and subtracting item sizes; clamping removes -1e-17-style residue after
  /// the last item departs.
  void clamp_nonnegative() noexcept;

  /// Component-wise maximum, in place.
  void max_with(const RVec& other);

  /// "(0.50, 0.25)" -- for diagnostics and test failure messages.
  std::string to_string() const;

 private:
  void resize_uninitialized(std::size_t dim);

  std::size_t dim_ = 0;
  std::array<double, kInlineDim> inline_{};
  std::vector<double> heap_;
};

std::ostream& operator<<(std::ostream& os, const RVec& v);

/// Sum of a range of vectors (all the same dimension).
RVec sum(const std::vector<RVec>& vs);

}  // namespace dvbp
