// Fundamental scalar types and tolerances shared across the dvbp library.
//
// Time is modelled as a double; every built-in workload generator emits
// integral timestamps, so the only rounding concerns are accumulated sums of
// interval lengths. Tolerances used in capacity and interval comparisons are
// centralized here so the whole library agrees on what "fits" means.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace dvbp {

/// Simulation time. Half-open item intervals [a(r), e(r)) per the paper.
using Time = double;

/// Index of an item within an Instance (also its arrival-order tiebreak).
using ItemId = std::uint32_t;

/// Identifier of a bin within a simulation run. Bins are never reopened, so
/// ids increase monotonically with opening time.
using BinId = std::uint32_t;

/// Sentinel returned by a policy to request opening a fresh bin.
inline constexpr BinId kNoBin = std::numeric_limits<BinId>::max();

/// Sentinel for "no item".
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// Identifier of the tenant that submitted an item (src/tenancy/). Dense
/// small integers; kNoTenant marks anonymous single-tenant traffic, which
/// every accounting and arbitration layer must treat as "tenancy off".
using TenantId = std::uint32_t;

/// Sentinel for "no tenant" (anonymous item; tenancy disabled).
inline constexpr TenantId kNoTenant = std::numeric_limits<TenantId>::max();

/// Additive slack used when testing whether an item fits in a bin. Item
/// sizes are normalized to [0,1]; generators use sizes no finer than ~1e-6,
/// so 1e-9 absorbs floating error without changing feasibility decisions.
inline constexpr double kCapacityEps = 1e-9;

/// Tolerance for comparing timestamps / interval endpoints.
inline constexpr double kTimeEps = 1e-9;

/// Subtracted inside ceil-of-load computations: summing many item sizes
/// leaves residue like 3.0000000001 which must round to 3 bins, not 4.
/// Sizes are no finer than ~1e-6 (see kCapacityEps), so 1e-9 absorbs the
/// float noise without changing any exact ceiling.
inline constexpr double kCeilEps = 1e-9;

/// ceil with protection against accumulated floating residue (kCeilEps).
/// Every ceil-of-load site in the library goes through this.
inline double robust_ceil(double x) noexcept {
  return std::ceil(x - kCeilEps);
}

/// Returns true when `a` and `b` are equal up to kTimeEps.
constexpr bool time_eq(Time a, Time b) noexcept {
  const double diff = a > b ? a - b : b - a;
  return diff <= kTimeEps;
}

}  // namespace dvbp
