// The online simulation engine (Algorithm 1 of the paper).
//
// Drives a Policy over the event stream of an Instance: on each arrival the
// policy picks an open bin (or asks for a new one); on each departure the
// item is removed and empty bins close permanently. The engine owns all
// feasibility enforcement -- a policy returning a non-fitting bin is a
// programming error and raises PolicyViolation.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/packing.hpp"
#include "core/policies/policy.hpp"
#include "core/types.hpp"

namespace dvbp::obs {
class Observer;  // obs/observer.hpp
}  // namespace dvbp::obs

namespace dvbp {

/// Raised when a policy selects a bin that cannot hold the item, or names a
/// bin that is not open.
class PolicyViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct SimOptions {
  /// Re-validate the finished packing offline (Packing::validate) and throw
  /// std::logic_error on inconsistency. O(bins * events); for tests.
  /// Incompatible with bin_capacity != 1 (the auditor checks unit bins).
  bool audit = false;
  /// Record (time, #open bins) after every event batch at a timestamp.
  bool record_timeline = false;
  /// Per-dimension capacity of the online algorithm's bins. 1.0 is the
  /// paper's model; 1 + beta implements the resource-augmentation analysis
  /// of the dynamic bin packing literature (cf. [6]): the online algorithm
  /// gets slightly larger bins than the optimum it is compared against.
  /// Must be >= 1.
  double bin_capacity = 1.0;
  /// Optional instrumentation hooks (borrowed; see obs/observer.hpp):
  /// metric updates and/or one JSONL trace record per allocator event.
  /// Null (the default) costs one branch per event.
  obs::Observer* observer = nullptr;
};

struct SimResult {
  Packing packing;
  std::size_t bins_opened = 0;    ///< total bins ever opened (m in the paper)
  std::size_t max_open_bins = 0;  ///< peak simultaneously-open bins
  double cost = 0.0;              ///< == packing.cost(); eq. (1)
  /// Piecewise-constant open-bin count: value from each timestamp until the
  /// next. Populated when SimOptions::record_timeline.
  std::vector<std::pair<Time, std::size_t>> timeline;
};

/// Runs `policy` (after policy.reset()) over `inst`. Throws
/// std::invalid_argument when the instance fails validation and
/// PolicyViolation on illegal policy decisions.
SimResult simulate(const Instance& inst, Policy& policy, SimOptions opts = {});

/// Replays a caller-supplied event stream instead of the instance's own
/// (useful for custom tie-breaking or replay tooling). The stream must be
/// consistent and complete: arrivals precede departures, no duplicates,
/// and every opened bin must drain. Violations raise std::logic_error --
/// checked unconditionally, in NDEBUG builds too.
SimResult simulate_events(const Instance& inst, std::span<const Event> events,
                          Policy& policy, SimOptions opts = {});

/// Convenience: construct the policy by registry name, run it, return the
/// result.
SimResult simulate(const Instance& inst, std::string_view policy_name,
                   SimOptions opts = {}, std::uint64_t policy_seed = 0xD1CEu);

}  // namespace dvbp
