// Rebalancer: bounded-migration repacking on departure events.
//
// The paper's online model never moves an item once placed, while the
// hindsight OPT may repack freely -- so the competitive-ratio plots
// conflate "online information" with "no migration". In the spirit of
// Berndt-Jansen-Klein (Fully Dynamic Bin Packing Revisited, PAPERS.md)
// this layer grants the allocator a small, amortized migration budget
// per departure event and uses it for the single most profitable move
// in the DVBP objective: closing nearly-empty bins early by migrating
// their survivors into other open bins. Every unit of time a bin stays
// open costs one unit of objective (eq. 1), so emptying a bin at the
// departure event realizes its entire remaining usage as savings.
//
// Budget semantics (docs/MIGRATION.md):
//   - Every departure event accrues `migrations_per_event` migration
//     credits and `volume_per_event` L1-volume credits, each capped at
//     `burst_factor` times its per-event accrual (amortization: quiet
//     periods bank credit for an occasional multi-item close, but the
//     bank is bounded).
//   - Moving one item consumes 1 migration credit and ||s(r)||_1 volume
//     credits. A bin is only closed all-or-nothing: if its survivors
//     cannot all be relocated within the remaining credits (and into
//     the currently open bins), nothing moves.
//   - migrations_per_event == 0 disables the rebalancer entirely; the
//     engine's event paths are then bit-identical to the no-migration
//     engine (pinned by tests/test_migration_parity.cpp).
//
// The plan step is deterministic: candidate bins are tried from fewest
// survivors (ties: lowest bin id), survivors relocate first-fit in bin
// opening order. Determinism is what lets the persist journal replay
// migrations bit-exactly after a crash.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/invariants.hpp"
#include "core/types.hpp"

namespace dvbp {

struct MigrationConfig {
  static constexpr double kUnlimited =
      std::numeric_limits<double>::infinity();

  /// Migration credits accrued per departure event; 0 disables.
  double migrations_per_event = 0.0;
  /// L1-volume credits accrued per departure event.
  double volume_per_event = kUnlimited;
  /// Accrued credits are capped at burst_factor * per-event accrual.
  double burst_factor = 4.0;
  /// Only bins with at most this many survivors are close candidates.
  std::size_t max_survivors = 4;
};

struct MigrationStats {
  std::uint64_t events = 0;            ///< departure events observed
  std::uint64_t migrations = 0;        ///< items moved
  double migrated_volume = 0.0;        ///< sum of moved items' L1 sizes
  std::uint64_t bins_closed = 0;       ///< bins closed by migration
  double migration_credits = 0.0;      ///< total credits accrued
  double volume_credits = 0.0;         ///< total volume credits accrued
};

/// Mutation indirection: the same planner drives a raw Dispatcher or a
/// journaled persist::DurableDispatcher (which must record each step).
struct MigrationExec {
  std::function<void(Time, JobId)> evict;
  std::function<BinId(Time, JobId, BinId)> replace;
};

class Rebalancer {
 public:
  /// Plans against `dispatcher` (borrowed; read-only) and mutates through
  /// `exec`. The exec callbacks must act on the same underlying engine.
  Rebalancer(const Dispatcher& dispatcher, MigrationConfig config,
             MigrationExec exec);

  /// Convenience: plan against and mutate `dispatcher` directly.
  Rebalancer(Dispatcher& dispatcher, MigrationConfig config);

  /// Call after every Dispatcher::depart (same `now`). Accrues credits,
  /// then greedily closes candidate bins while the budget lasts.
  /// Returns the number of items migrated by this call.
  std::size_t on_departure(Time now);

  const MigrationConfig& config() const noexcept { return config_; }
  const MigrationStats& stats() const noexcept { return stats_; }

  /// Remaining banked credits (post-cap), for introspection/tests.
  double migration_credit_balance() const noexcept { return credits_; }
  double volume_credit_balance() const noexcept { return volume_credits_; }

  /// Snapshot for PackingInvariantChecker::check_budget.
  MigrationBudgetUsage budget_usage() const noexcept;

 private:
  struct Plan {
    BinId source = kNoBin;
    std::vector<JobId> jobs;      // survivors, in bin packing order
    std::vector<BinId> targets;   // parallel to jobs
    double volume = 0.0;
  };

  bool plan_close(Plan& plan) const;
  void execute(Time now, const Plan& plan);

  const Dispatcher& dispatcher_;
  MigrationConfig config_;
  MigrationExec exec_;
  MigrationStats stats_;
  double credits_ = 0.0;         // banked migration credits
  double volume_credits_ = 0.0;  // banked volume credits
};

}  // namespace dvbp
