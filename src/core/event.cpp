#include "core/event.hpp"

#include <algorithm>

namespace dvbp {

std::vector<Event> build_event_stream(const Instance& inst) {
  std::vector<Event> events;
  events.reserve(inst.size() * 2);
  for (const Item& r : inst.items()) {
    events.push_back({r.arrival, EventKind::kArrival, r.id});
    events.push_back({r.departure, EventKind::kDeparture, r.id});
  }
  std::sort(events.begin(), events.end(), EventOrder{});
  return events;
}

std::vector<Time> event_times(const Instance& inst) {
  std::vector<Time> times;
  times.reserve(inst.size() * 2);
  for (const Item& r : inst.items()) {
    times.push_back(r.arrival);
    times.push_back(r.departure);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace dvbp
