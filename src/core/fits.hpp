// The single feasibility comparison of the whole library.
//
// Every placement decision reduces to "does load + s(r) stay within the
// bin's capacity in every dimension, up to the library-wide tolerance?"
// (paper Sec. 2: s(r) in [0,1]^d, unit bins; cap > 1 under resource
// augmentation). That comparison must produce the SAME answer everywhere
// it is asked -- the scalar RVec path, the SIMD open-bin table, and the
// PackingInvariantChecker audit -- or a vectorized Release build could
// admit an item the audit (or a scalar replica) rejects, by one ulp.
//
// The rule, in one place: precompute the threshold `cap + eps` ONCE per
// query (never re-derive it per lane or per dimension, where a different
// association could round differently) and test `sum <= threshold` with
// an ordered, non-signaling <= . SIMD kernels must use the comparison
// that matches this predicate exactly (_CMP_LE_OQ on x86) against the
// same broadcast threshold value.
#pragma once

#include <cstddef>

#include "core/types.hpp"

namespace dvbp {

/// The feasibility threshold for a bin of uniform capacity `cap`.
/// Computed once per query; all paths compare against this exact double.
constexpr double fits_threshold(double cap,
                                double eps = kCapacityEps) noexcept {
  return cap + eps;
}

/// The feasibility predicate: `sum` (load + item, one dimension) is
/// admissible against a precomputed threshold. NaN compares false, so a
/// poisoned (+inf / NaN) lane never fits.
constexpr bool fits_under_threshold(double sum, double threshold) noexcept {
  return sum <= threshold;
}

/// Scalar d-dimensional feasibility: load + add <= threshold in every
/// dimension. This is the reference implementation every SIMD kernel must
/// agree with bit-for-bit.
inline bool fits_under_threshold(const double* load, const double* add,
                                 std::size_t dim, double threshold) noexcept {
  for (std::size_t i = 0; i < dim; ++i) {
    if (!fits_under_threshold(load[i] + add[i], threshold)) return false;
  }
  return true;
}

}  // namespace dvbp
