#include "core/policies/any_fit.hpp"

namespace dvbp {

BinId AnyFitPolicy::select_bin(Time now, const Item& item,
                               std::span<const BinView> open_bins) {
  fitting_.clear();
  for (const BinView& b : open_bins) {
    if (b.fits(item.size)) fitting_.push_back(b);
  }
  if (fitting_.empty()) return kNoBin;
  return choose(now, item, std::span<const BinView>(fitting_));
}

}  // namespace dvbp
