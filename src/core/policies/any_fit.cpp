#include "core/policies/any_fit.hpp"

#include "core/open_bin_table.hpp"

namespace dvbp {

BinId AnyFitPolicy::select_bin(Time now, const Item& item,
                               std::span<const BinView> open_bins) {
  fitting_.clear();
  for (const BinView& b : open_bins) {
    if (b.fits(item.size)) fitting_.push_back(b);
  }
  if (fitting_.empty()) return kNoBin;
  return choose(now, item, std::span<const BinView>(fitting_));
}

BinId AnyFitPolicy::select_bin_soa(Time now, const Item& item,
                                   std::span<const BinView> open_bins,
                                   const OpenBinTable& table) {
  fit_slots_.clear();
  table.collect_fitting(item.size.data(), fit_slots_);
  if (fit_slots_.empty()) return kNoBin;
  fitting_.clear();
  fitting_.reserve(fit_slots_.size());
  for (const std::uint32_t slot : fit_slots_) {
    fitting_.push_back(open_bins[slot]);
  }
  return choose(now, item, std::span<const BinView>(fitting_));
}

}  // namespace dvbp
