#include "core/policies/worst_fit.hpp"

namespace dvbp {

BinId WorstFitPolicy::choose(Time, const Item&,
                             std::span<const BinView> fitting) {
  BinId best = fitting.front().id;
  double best_load = measure_load(*fitting.front().load, measure_);
  for (std::size_t i = 1; i < fitting.size(); ++i) {
    const double w = measure_load(*fitting[i].load, measure_);
    if (w < best_load) {
      best_load = w;
      best = fitting[i].id;
    }
  }
  return best;
}

}  // namespace dvbp
