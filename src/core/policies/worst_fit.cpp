#include "core/policies/worst_fit.hpp"

#include "core/open_bin_table.hpp"

namespace dvbp {

BinId WorstFitPolicy::choose(Time, const Item&,
                             std::span<const BinView> fitting) {
  BinId best = fitting.front().id;
  double best_load = measure_load(*fitting.front().load, measure_);
  for (std::size_t i = 1; i < fitting.size(); ++i) {
    const double w = measure_load(*fitting[i].load, measure_);
    if (w < best_load) {
      best_load = w;
      best = fitting[i].id;
    }
  }
  return best;
}

BinId WorstFitPolicy::select_bin_soa(Time, const Item& item,
                                     std::span<const BinView> open_bins,
                                     const OpenBinTable& table) {
  const std::size_t slot =
      table.find_worst_fit(item.size.data(), static_cast<int>(measure_));
  return slot == OpenBinTable::npos ? kNoBin : open_bins[slot].id;
}

}  // namespace dvbp
