// Worst Fit: place the item in the *least* loaded fitting bin (paper
// Sec. 7). Spreads items thin; included as the experimental strawman.
#pragma once

#include <string>

#include "core/policies/any_fit.hpp"
#include "core/policies/best_fit.hpp"

namespace dvbp {

class WorstFitPolicy final : public AnyFitPolicy {
 public:
  explicit WorstFitPolicy(LoadMeasure measure = LoadMeasure::kLinf)
      : measure_(measure),
        name_(std::string("WorstFit[") +
              std::string(load_measure_name(measure)) + "]") {}

  std::string_view name() const noexcept override { return name_; }
  LoadMeasure measure() const noexcept { return measure_; }

  /// Branch-light table scan: vectorized feasibility, measure computed
  /// from the lanes with measure_load()'s exact operation order.
  BinId select_bin_soa(Time now, const Item& item,
                       std::span<const BinView> open_bins,
                       const OpenBinTable& table) override;

 protected:
  /// Least-loaded fitting bin; ties broken toward the earliest opened.
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

 private:
  LoadMeasure measure_;
  std::string name_;
};

}  // namespace dvbp
