#include "core/policies/random_fit.hpp"

namespace dvbp {

BinId RandomFitPolicy::choose(Time, const Item&,
                              std::span<const BinView> fitting) {
  const auto idx = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(fitting.size()) - 1));
  return fitting[idx].id;
}

}  // namespace dvbp
