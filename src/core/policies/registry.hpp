// Policy registry: construct policies by name. The bench binaries and
// examples use this to let the user pick algorithms on the command line.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/policies/policy.hpp"

namespace dvbp {

/// Names accepted by make_policy, in the paper's Sec. 7 presentation order.
std::vector<std::string> standard_policy_names();

/// Constructs a policy by name. Accepted names (case sensitive):
///   MoveToFront | FirstFit | BestFit | NextFit | LastFit | RandomFit |
///   WorstFit | BestFit:L1 | BestFit:L2 | WorstFit:L1 | WorstFit:L2 |
///   HarmonicFit | HarmonicFit:<K> | MinExtensionFit |
///   NoisyMinExtensionFit:<sigma> | DurationClassFit
/// `seed` feeds the randomized policies. Throws std::invalid_argument for
/// unknown names.
PolicyPtr make_policy(std::string_view name, std::uint64_t seed = 0xD1CEu);

/// The seven Sec. 7 algorithms, freshly constructed.
std::vector<PolicyPtr> make_standard_policies(std::uint64_t seed = 0xD1CEu);

}  // namespace dvbp
