#include "core/policies/registry.hpp"

#include <memory>
#include <stdexcept>

#include "core/policies/best_fit.hpp"
#include "core/policies/clairvoyant.hpp"
#include "core/policies/class_fit.hpp"
#include "core/policies/first_fit.hpp"
#include "core/policies/last_fit.hpp"
#include "core/policies/move_to_front.hpp"
#include "core/policies/next_fit.hpp"
#include "core/policies/random_fit.hpp"
#include "core/policies/worst_fit.hpp"

namespace dvbp {

std::vector<std::string> standard_policy_names() {
  return {"MoveToFront", "FirstFit", "BestFit", "NextFit",
          "LastFit",     "RandomFit", "WorstFit"};
}

PolicyPtr make_policy(std::string_view name, std::uint64_t seed) {
  if (name == "MoveToFront") return std::make_unique<MoveToFrontPolicy>();
  if (name == "FirstFit") return std::make_unique<FirstFitPolicy>();
  if (name == "NextFit") return std::make_unique<NextFitPolicy>();
  if (name == "LastFit") return std::make_unique<LastFitPolicy>();
  if (name == "RandomFit") return std::make_unique<RandomFitPolicy>(seed);
  if (name == "BestFit" || name == "BestFit:Linf") {
    return std::make_unique<BestFitPolicy>(LoadMeasure::kLinf);
  }
  if (name == "BestFit:L1") {
    return std::make_unique<BestFitPolicy>(LoadMeasure::kL1);
  }
  if (name == "BestFit:L2") {
    return std::make_unique<BestFitPolicy>(LoadMeasure::kL2);
  }
  if (name == "WorstFit" || name == "WorstFit:Linf") {
    return std::make_unique<WorstFitPolicy>(LoadMeasure::kLinf);
  }
  if (name == "WorstFit:L1") {
    return std::make_unique<WorstFitPolicy>(LoadMeasure::kL1);
  }
  if (name == "WorstFit:L2") {
    return std::make_unique<WorstFitPolicy>(LoadMeasure::kL2);
  }
  if (name == "MinExtensionFit") {
    return std::make_unique<MinExtensionFitPolicy>();
  }
  if (name == "HarmonicFit") return std::make_unique<HarmonicFitPolicy>();
  constexpr std::string_view kHarmonic = "HarmonicFit:";
  if (name.substr(0, kHarmonic.size()) == kHarmonic) {
    const auto k = std::stoll(std::string(name.substr(kHarmonic.size())));
    return std::make_unique<HarmonicFitPolicy>(k);
  }
  if (name == "DurationClassFit") {
    return std::make_unique<DurationClassFitPolicy>();
  }
  constexpr std::string_view kNoisy = "NoisyMinExtensionFit:";
  if (name.substr(0, kNoisy.size()) == kNoisy) {
    const double sigma = std::stod(std::string(name.substr(kNoisy.size())));
    return std::make_unique<NoisyMinExtensionFitPolicy>(sigma, seed);
  }
  throw std::invalid_argument("make_policy: unknown policy '" +
                              std::string(name) + "'");
}

std::vector<PolicyPtr> make_standard_policies(std::uint64_t seed) {
  std::vector<PolicyPtr> out;
  for (const std::string& n : standard_policy_names()) {
    out.push_back(make_policy(n, seed));
  }
  return out;
}

}  // namespace dvbp
