#include "core/policies/clairvoyant.hpp"

#include <cmath>
#include <sstream>

namespace dvbp {

BinId MinExtensionFitPolicy::choose(Time, const Item& item,
                                    std::span<const BinView> fitting) {
  const Time depart = perceived_departure(item);
  BinId best = fitting.front().id;
  double best_ext =
      std::max(0.0, depart - fitting.front().latest_departure);
  double best_load = measure_load(*fitting.front().load, tie_measure_);
  for (std::size_t i = 1; i < fitting.size(); ++i) {
    const double ext = std::max(0.0, depart - fitting[i].latest_departure);
    const double load = measure_load(*fitting[i].load, tie_measure_);
    if (ext < best_ext - kTimeEps ||
        (ext <= best_ext + kTimeEps && load > best_load)) {
      best_ext = std::min(best_ext, ext);
      best_load = load;
      best = fitting[i].id;
    }
  }
  return best;
}

Time MinExtensionFitPolicy::perceived_departure(const Item& item) {
  return item.departure;
}

NoisyMinExtensionFitPolicy::NoisyMinExtensionFitPolicy(double sigma,
                                                       std::uint64_t seed)
    : sigma_(sigma), seed_(seed), rng_(seed) {
  std::ostringstream os;
  os << "NoisyMinExtensionFit[sigma=" << sigma_ << "]";
  name_ = os.str();
}

void NoisyMinExtensionFitPolicy::reset() {
  MinExtensionFitPolicy::reset();
  rng_ = Xoshiro256pp(seed_);
}

Time NoisyMinExtensionFitPolicy::perceived_departure(const Item& item) {
  const double factor = std::exp(sigma_ * rng_.normal());
  return item.arrival + item.duration() * factor;
}

}  // namespace dvbp
