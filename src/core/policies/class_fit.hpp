// Class-restricted First Fit policies. These are NOT Any Fit algorithms:
// they may open a new bin even though an open bin of a *different* class
// could hold the item. Included because classification is the standard
// route to better bounds in the bin packing literature:
//
//  * HarmonicFit -- classify items by size (the classic Harmonic family
//    [17, 29] adapted to vectors via the L_inf norm): class c items have
//    1/(c+1) < ||s||_inf <= 1/c, so a class-c bin holds at most c items in
//    its critical dimension. Non-clairvoyant.
//
//  * DurationClassFit -- classify items by duration on a geometric scale
//    (class = floor(log2(duration))) and First Fit within the class. This
//    is the alignment idea behind the clairvoyant MinUsageTime algorithms
//    [27, 2]: items in one bin depart within a factor 2 of each other, so
//    bins don't linger for one straggler. Clairvoyant (reads durations).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/policies/policy.hpp"

namespace dvbp {

/// Base: First Fit among open bins of the item's class only.
class ClassRestrictedFitPolicy : public Policy {
 public:
  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) final;
  void on_open(Time now, BinId bin, const Item& first) override;
  void on_depart(Time now, BinId bin, const Item& item, bool closed) override;
  void reset() override;
  void save_state(serial::Writer& out) const override;
  void restore_state(serial::Reader& in) override;

  /// Class of the bin (for tests/diagnostics); throws if unknown.
  std::int64_t bin_class(BinId bin) const { return bin_class_.at(bin); }

 protected:
  /// Classifies an item; items only share bins within a class.
  virtual std::int64_t item_class(const Item& item) const = 0;

 private:
  std::unordered_map<BinId, std::int64_t> bin_class_;
};

class HarmonicFitPolicy final : public ClassRestrictedFitPolicy {
 public:
  /// `max_class` caps the number of classes: items with
  /// ||s||_inf <= 1/max_class share the final class.
  explicit HarmonicFitPolicy(std::int64_t max_class = 20);

  std::string_view name() const noexcept override { return name_; }
  std::int64_t max_class() const noexcept { return max_class_; }

 protected:
  std::int64_t item_class(const Item& item) const override;

 private:
  std::int64_t max_class_;
  std::string name_;
};

class DurationClassFitPolicy final : public ClassRestrictedFitPolicy {
 public:
  DurationClassFitPolicy() = default;

  std::string_view name() const noexcept override {
    return "DurationClassFit";
  }
  bool is_clairvoyant() const noexcept override { return true; }

 protected:
  std::int64_t item_class(const Item& item) const override;
};

}  // namespace dvbp
