// Next Fit: keeps a single designated *current* bin; when an arriving item
// does not fit the current bin, the current bin is released (it stays open
// until its items depart but never receives another item) and a fresh bin
// becomes current (paper Sec. 2.2). CR: at least 2*mu*d (Thm 6), at most
// 2*mu*d + 1 (Thm 4).
//
// Implements Policy directly (not AnyFitPolicy): its list L contains only
// the current bin, so it may open a new bin even when a released bin fits.
#pragma once

#include <vector>

#include "core/policies/policy.hpp"

namespace dvbp {

class NextFitPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "NextFit"; }

  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) override;
  void on_open(Time now, BinId bin, const Item& first) override;
  void on_depart(Time now, BinId bin, const Item& item, bool closed) override;
  void reset() override;
  void save_state(serial::Writer& out) const override;
  void restore_state(serial::Reader& in) override;

  BinId current_bin() const noexcept { return current_; }

  /// One release: the current bin stopped receiving items at `time`
  /// because arriving item `trigger` did not fit. This is the raw material
  /// of the Theorem 4 analysis (P_i = current period, Q_i = released
  /// period, with ||s(R'_i) + s(r_i)||_inf > 1 at the release).
  struct Release {
    BinId bin = kNoBin;
    Time time = 0.0;
    ItemId trigger = kNoItem;

    friend bool operator==(const Release&, const Release&) = default;
  };

  /// Chronological releases. Bins whose items all departed while they were
  /// still current (closed, never released) are absent.
  const std::vector<Release>& release_log() const noexcept {
    return releases_;
  }

 private:
  BinId current_ = kNoBin;
  std::vector<Release> releases_;
};

}  // namespace dvbp
