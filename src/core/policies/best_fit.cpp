#include "core/policies/best_fit.hpp"

#include <stdexcept>

#include "core/open_bin_table.hpp"

namespace dvbp {

std::string_view load_measure_name(LoadMeasure m) noexcept {
  switch (m) {
    case LoadMeasure::kLinf:
      return "Linf";
    case LoadMeasure::kL1:
      return "L1";
    case LoadMeasure::kL2:
      return "L2";
  }
  return "?";
}

double measure_load(const RVec& load, LoadMeasure m) {
  switch (m) {
    case LoadMeasure::kLinf:
      return load.linf();
    case LoadMeasure::kL1:
      return load.l1();
    case LoadMeasure::kL2:
      return load.lp(2.0);
  }
  throw std::invalid_argument("measure_load: unknown measure");
}

BinId BestFitPolicy::choose(Time, const Item&,
                            std::span<const BinView> fitting) {
  BinId best = fitting.front().id;
  double best_load = measure_load(*fitting.front().load, measure_);
  for (std::size_t i = 1; i < fitting.size(); ++i) {
    const double w = measure_load(*fitting[i].load, measure_);
    if (w > best_load) {
      best_load = w;
      best = fitting[i].id;
    }
  }
  return best;
}

BinId BestFitPolicy::select_bin_soa(Time, const Item& item,
                                    std::span<const BinView> open_bins,
                                    const OpenBinTable& table) {
  const std::size_t slot =
      table.find_best_fit(item.size.data(), static_cast<int>(measure_));
  return slot == OpenBinTable::npos ? kNoBin : open_bins[slot].id;
}

}  // namespace dvbp
