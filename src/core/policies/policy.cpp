#include "core/policies/policy.hpp"

#include "core/open_bin_table.hpp"

namespace dvbp {

BinId Policy::select_bin_soa(Time now, const Item& item,
                             std::span<const BinView> open_bins,
                             const OpenBinTable&) {
  return select_bin(now, item, open_bins);
}

void Policy::on_open(Time, BinId, const Item&) {}
void Policy::on_pack(Time, BinId, const Item&) {}
void Policy::on_depart(Time, BinId, const Item&, bool) {}
void Policy::reset() {}
void Policy::save_state(serial::Writer&) const {}
void Policy::restore_state(serial::Reader&) {}

}  // namespace dvbp
