#include "core/policies/policy.hpp"

namespace dvbp {

void Policy::on_open(Time, BinId, const Item&) {}
void Policy::on_pack(Time, BinId, const Item&) {}
void Policy::on_depart(Time, BinId, const Item&, bool) {}
void Policy::reset() {}
void Policy::save_state(serial::Writer&) const {}
void Policy::restore_state(serial::Reader&) {}

}  // namespace dvbp
