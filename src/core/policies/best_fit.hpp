// Best Fit / Worst Fit share a load-measure abstraction. For d >= 2 there is
// no canonical scalar "load" of a bin; the paper (Sec. 2.2) lists max load
// (L_inf), sum of loads (L1), and Lp norms as options. Sec. 7 evaluates
// Best Fit with w(R) = ||s(R)||_inf; the load-measure ablation (bench E8)
// compares the options. Best Fit's CR is unbounded even for d = 1 (Thm 7,
// citing [22]).
#pragma once

#include <string>

#include "core/policies/any_fit.hpp"

namespace dvbp {

/// Scalarization of a d-dimensional bin load.
enum class LoadMeasure {
  kLinf,  ///< max component (the paper's experimental choice)
  kL1,    ///< sum of components
  kL2,    ///< Euclidean norm
};

std::string_view load_measure_name(LoadMeasure m) noexcept;
double measure_load(const RVec& load, LoadMeasure m);

class BestFitPolicy final : public AnyFitPolicy {
 public:
  explicit BestFitPolicy(LoadMeasure measure = LoadMeasure::kLinf)
      : measure_(measure),
        name_(std::string("BestFit[") +
              std::string(load_measure_name(measure)) + "]") {}

  std::string_view name() const noexcept override { return name_; }
  LoadMeasure measure() const noexcept { return measure_; }

  /// Branch-light table scan: vectorized feasibility, measure computed
  /// from the lanes with measure_load()'s exact operation order.
  BinId select_bin_soa(Time now, const Item& item,
                       std::span<const BinView> open_bins,
                       const OpenBinTable& table) override;

 protected:
  /// Most-loaded fitting bin; ties broken toward the earliest opened.
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

 private:
  LoadMeasure measure_;
  std::string name_;
};

}  // namespace dvbp
