#include "core/policies/next_fit.hpp"

namespace dvbp {

BinId NextFitPolicy::select_bin(Time now, const Item& item,
                                std::span<const BinView> open_bins) {
  if (current_ == kNoBin) return kNoBin;
  // The current bin is the most recently opened bin, so while it is still
  // open it sits at the END of the opening-order view -- scan backwards
  // and it is found in O(1) instead of O(open bins).
  for (auto it = open_bins.rbegin(); it != open_bins.rend(); ++it) {
    const BinView& b = *it;
    if (b.id != current_) continue;
    if (b.fits(item.size)) return current_;
    // Current bin cannot hold the item: release it and ask for a new bin.
    releases_.push_back({current_, now, item.id});
    current_ = kNoBin;
    return kNoBin;
  }
  // The current bin closed (emptied) without being released.
  current_ = kNoBin;
  return kNoBin;
}

void NextFitPolicy::on_open(Time, BinId bin, const Item&) { current_ = bin; }

void NextFitPolicy::on_depart(Time, BinId bin, const Item&, bool closed) {
  if (closed && bin == current_) current_ = kNoBin;
}

void NextFitPolicy::reset() {
  current_ = kNoBin;
  releases_.clear();
}

void NextFitPolicy::save_state(serial::Writer& out) const {
  out.u32(current_);
  out.u64(releases_.size());
  for (const Release& r : releases_) {
    out.u32(r.bin);
    out.f64(r.time);
    out.u32(r.trigger);
  }
}

void NextFitPolicy::restore_state(serial::Reader& in) {
  reset();
  current_ = in.u32();
  const std::uint64_t n = in.u64();
  releases_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Release r;
    r.bin = in.u32();
    r.time = in.f64();
    r.trigger = in.u32();
    releases_.push_back(r);
  }
}

}  // namespace dvbp
