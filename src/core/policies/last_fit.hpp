// Last Fit: place the item in the most recently *opened* bin that can hold
// it (paper Sec. 7). Contrast with Move To Front, which uses the most
// recently *used* bin.
#pragma once

#include "core/policies/any_fit.hpp"

namespace dvbp {

class LastFitPolicy final : public AnyFitPolicy {
 public:
  std::string_view name() const noexcept override { return "LastFit"; }

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;
};

}  // namespace dvbp
