// Last Fit: place the item in the most recently *opened* bin that can hold
// it (paper Sec. 7). Contrast with Move To Front, which uses the most
// recently *used* bin.
#pragma once

#include "core/policies/any_fit.hpp"

namespace dvbp {

class LastFitPolicy final : public AnyFitPolicy {
 public:
  std::string_view name() const noexcept override { return "LastFit"; }

  /// Whole decision in one vectorized scan: latest fitting slot.
  BinId select_bin_soa(Time now, const Item& item,
                       std::span<const BinView> open_bins,
                       const OpenBinTable& table) override;

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;
};

}  // namespace dvbp
