// AnyFitPolicy: base class enforcing the Any Fit property (paper Sec. 2.2):
// a new bin is opened only when the arriving item fits in none of the open
// bins. Concrete subclasses implement choose() over the non-empty set of
// fitting bins.
//
// Next Fit is NOT derived from this base: it restricts its list L to a
// single current bin (it may open a new bin even though some released bin
// could hold the item), so it implements Policy directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policies/policy.hpp"

namespace dvbp {

class AnyFitPolicy : public Policy {
 public:
  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) final;

  /// Table-driven variant: the fitting set is computed by the table's
  /// vectorized scan (bit-identical to per-view fits()) and handed to the
  /// same choose(), so the Any Fit property -- open a new bin only when
  /// nothing fits -- holds on this path by the same construction.
  /// Subclasses whose choose() reduces to a single table scan (First/
  /// Last/Best/Worst Fit) override this again with the direct kernel.
  BinId select_bin_soa(Time now, const Item& item,
                       std::span<const BinView> open_bins,
                       const OpenBinTable& table) override;

 protected:
  /// Pick a bin from `fitting` (non-empty; preserves opening order).
  virtual BinId choose(Time now, const Item& item,
                       std::span<const BinView> fitting) = 0;

 private:
  std::vector<BinView> fitting_;           // scratch, reused across arrivals
  std::vector<std::uint32_t> fit_slots_;   // scratch for the table scan
};

}  // namespace dvbp
