// AnyFitPolicy: base class enforcing the Any Fit property (paper Sec. 2.2):
// a new bin is opened only when the arriving item fits in none of the open
// bins. Concrete subclasses implement choose() over the non-empty set of
// fitting bins.
//
// Next Fit is NOT derived from this base: it restricts its list L to a
// single current bin (it may open a new bin even though some released bin
// could hold the item), so it implements Policy directly.
#pragma once

#include <vector>

#include "core/policies/policy.hpp"

namespace dvbp {

class AnyFitPolicy : public Policy {
 public:
  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) final;

 protected:
  /// Pick a bin from `fitting` (non-empty; preserves opening order).
  virtual BinId choose(Time now, const Item& item,
                       std::span<const BinView> fitting) = 0;

 private:
  std::vector<BinView> fitting_;  // scratch, reused across arrivals
};

}  // namespace dvbp
