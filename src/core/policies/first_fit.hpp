// First Fit: place the item in the earliest-opened bin that can hold it
// (paper Sec. 2.2). CR bounds: lower (mu+1)d (Thm 5), upper (mu+2)d+1
// (Thm 3).
#pragma once

#include "core/policies/any_fit.hpp"

namespace dvbp {

class FirstFitPolicy final : public AnyFitPolicy {
 public:
  std::string_view name() const noexcept override { return "FirstFit"; }

  /// Whole decision in one vectorized scan: earliest fitting slot.
  BinId select_bin_soa(Time now, const Item& item,
                       std::span<const BinView> open_bins,
                       const OpenBinTable& table) override;

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;
};

}  // namespace dvbp
