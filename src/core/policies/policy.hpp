// Policy: the online decision rule of Algorithm 1 in the paper.
//
// The simulator calls select_bin() on every arrival with a view of the
// currently-open bins (in opening order) and packs the item into the
// returned bin, or a fresh bin when the policy returns kNoBin. Lifecycle
// callbacks let stateful policies (Move To Front's MRU list, Next Fit's
// current bin) track the system.
//
// Non-clairvoyance: the Item handed to select_bin carries its departure time
// (the simulator needs it), but non-clairvoyant policies must not read it.
// Policies declare themselves via is_clairvoyant(); the test suite verifies
// that non-clairvoyant policies are invariant to departure-time perturbation
// of future items.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/item.hpp"
#include "core/rvec.hpp"
#include "core/serial.hpp"
#include "core/types.hpp"

namespace dvbp {

class OpenBinTable;  // core/open_bin_table.hpp

/// Read-only snapshot of one open bin, passed to policies.
struct BinView {
  BinId id = kNoBin;
  const RVec* load = nullptr;  ///< current load vector
  Time opened_at = 0.0;
  std::size_t num_items = 0;      ///< currently-active items
  Time latest_departure = 0.0;    ///< max departure among active items
                                  ///< (meaningful to clairvoyant policies)
  double capacity = 1.0;          ///< per-dimension capacity (1 + beta
                                  ///< under resource augmentation)

  /// True when `size` fits on top of the current load.
  bool fits(const RVec& size) const noexcept {
    return load->fits_with_capacity(size, capacity);
  }
};

class Policy {
 public:
  virtual ~Policy() = default;

  /// Stable identifier, e.g. "FirstFit".
  virtual std::string_view name() const noexcept = 0;

  /// Whether the policy reads departure times of arriving items.
  virtual bool is_clairvoyant() const noexcept { return false; }

  /// Decide where to pack `item` arriving at `now`. `open_bins` lists every
  /// open bin in opening order. Return an open bin's id, or kNoBin to open a
  /// new bin. The simulator verifies the returned bin actually fits.
  virtual BinId select_bin(Time now, const Item& item,
                           std::span<const BinView> open_bins) = 0;

  /// Hot-path variant the engines call: `table` is the structure-of-
  /// arrays mirror of the same open bins (slot k of the table is
  /// open_bins[k]), whose vectorized scans answer feasibility questions
  /// 4-8 bins at a time. The default forwards to select_bin(), so
  /// policies that never opt in -- including external subclasses --
  /// behave exactly as before. Overrides MUST return a decision
  /// bit-identical to their select_bin() (the table's lanes and
  /// comparisons are bit-exact with the BinView loads, making that
  /// achievable by construction; pinned by the golden packing hashes).
  virtual BinId select_bin_soa(Time now, const Item& item,
                               std::span<const BinView> open_bins,
                               const OpenBinTable& table);

  /// A new bin `bin` was opened at `now` for `first` (after select_bin
  /// returned kNoBin).
  virtual void on_open(Time now, BinId bin, const Item& first);

  /// `item` was packed into existing bin `bin` (after select_bin chose it).
  virtual void on_pack(Time now, BinId bin, const Item& item);

  /// `item` departed from `bin`; `closed` is true when the bin emptied and
  /// closed permanently.
  virtual void on_depart(Time now, BinId bin, const Item& item, bool closed);

  /// Reset all internal state; called before each simulation run.
  virtual void reset();

  // --- Checkpointing (src/persist/) -----------------------------------
  //
  // save_state() serializes every bit of internal decision state that a
  // future select_bin() can depend on; restore_state() rebuilds it into a
  // freshly reset() instance of the same policy (and configuration).
  // Contract: after save on A and restore into B, A and B must make
  // identical decisions on any identical future event stream -- this is
  // what makes checkpoint-based crash recovery bit-exact (pinned by
  // tests/test_persist_recovery.cpp). The default implementations carry no
  // state (correct for the policies that decide from the BinView span
  // alone: FirstFit, BestFit, WorstFit, LastFit, MinExtensionFit).

  /// Appends the policy's internal state to `out`.
  virtual void save_state(serial::Writer& out) const;

  /// Restores state written by save_state() on an identically configured
  /// instance. Throws serial::SerialError on malformed input.
  virtual void restore_state(serial::Reader& in);
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace dvbp
