// Random Fit: place the item in a fitting bin chosen uniformly at random
// (paper Sec. 7). Deterministic under a fixed seed.
#pragma once

#include "core/policies/any_fit.hpp"
#include "stats/rng.hpp"

namespace dvbp {

class RandomFitPolicy final : public AnyFitPolicy {
 public:
  explicit RandomFitPolicy(std::uint64_t seed = 0xD1CEu)
      : seed_(seed), rng_(seed) {}

  std::string_view name() const noexcept override { return "RandomFit"; }

  /// reset() re-seeds so repeated runs of the same instance are identical.
  void reset() override { rng_ = Xoshiro256pp(seed_); }

  /// Checkpoint the RNG stream position: recovery must continue the random
  /// sequence exactly where the crashed process left off.
  void save_state(serial::Writer& out) const override {
    for (std::uint64_t w : rng_.state()) out.u64(w);
    out.f64(rng_.spare_normal());
    out.u8(rng_.has_spare_normal() ? 1 : 0);
  }

  void restore_state(serial::Reader& in) override {
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& w : s) w = in.u64();
    const double spare = in.f64();
    const bool has_spare = in.u8() != 0;
    rng_.set_state(s, spare, has_spare);
  }

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

 private:
  std::uint64_t seed_;
  Xoshiro256pp rng_;
};

}  // namespace dvbp
