// Random Fit: place the item in a fitting bin chosen uniformly at random
// (paper Sec. 7). Deterministic under a fixed seed.
#pragma once

#include "core/policies/any_fit.hpp"
#include "stats/rng.hpp"

namespace dvbp {

class RandomFitPolicy final : public AnyFitPolicy {
 public:
  explicit RandomFitPolicy(std::uint64_t seed = 0xD1CEu)
      : seed_(seed), rng_(seed) {}

  std::string_view name() const noexcept override { return "RandomFit"; }

  /// reset() re-seeds so repeated runs of the same instance are identical.
  void reset() override { rng_ = Xoshiro256pp(seed_); }

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

 private:
  std::uint64_t seed_;
  Xoshiro256pp rng_;
};

}  // namespace dvbp
