#include "core/policies/class_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace dvbp {

BinId ClassRestrictedFitPolicy::select_bin(
    Time, const Item& item, std::span<const BinView> open_bins) {
  const std::int64_t cls = item_class(item);
  for (const BinView& b : open_bins) {  // opening order = First Fit
    auto it = bin_class_.find(b.id);
    if (it != bin_class_.end() && it->second == cls && b.fits(item.size)) {
      return b.id;
    }
  }
  return kNoBin;
}

void ClassRestrictedFitPolicy::on_open(Time, BinId bin, const Item& first) {
  bin_class_[bin] = item_class(first);
}

void ClassRestrictedFitPolicy::on_depart(Time, BinId bin, const Item&,
                                         bool closed) {
  if (closed) bin_class_.erase(bin);
}

void ClassRestrictedFitPolicy::reset() { bin_class_.clear(); }

void ClassRestrictedFitPolicy::save_state(serial::Writer& out) const {
  out.u64(bin_class_.size());
  for (const auto& [bin, cls] : bin_class_) {
    out.u32(bin);
    out.u64(static_cast<std::uint64_t>(cls));
  }
}

void ClassRestrictedFitPolicy::restore_state(serial::Reader& in) {
  reset();
  const std::uint64_t n = in.u64();
  bin_class_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const BinId bin = in.u32();
    bin_class_[bin] = static_cast<std::int64_t>(in.u64());
  }
}

HarmonicFitPolicy::HarmonicFitPolicy(std::int64_t max_class)
    : max_class_(max_class) {
  if (max_class_ < 1) {
    throw std::invalid_argument("HarmonicFit: max_class >= 1");
  }
  name_ = "HarmonicFit[" + std::to_string(max_class_) + "]";
}

std::int64_t HarmonicFitPolicy::item_class(const Item& item) const {
  const double s = item.size.linf();
  if (s <= 1.0 / static_cast<double>(max_class_)) return max_class_;
  // Class c satisfies 1/(c+1) < s <= 1/c; floor(1/s) computes it, with the
  // boundary nudged so s = 1/c lands in class c, not c+1.
  const auto cls = static_cast<std::int64_t>(std::floor(1.0 / s + 1e-9));
  return cls < 1 ? 1 : cls;
}

std::int64_t DurationClassFitPolicy::item_class(const Item& item) const {
  // Geometric duration classes: [2^k, 2^{k+1}) share a class.
  return static_cast<std::int64_t>(
      std::floor(std::log2(std::max(item.duration(), 1e-12))));
}

}  // namespace dvbp
