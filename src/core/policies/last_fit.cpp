#include "core/policies/last_fit.hpp"

#include "core/open_bin_table.hpp"

namespace dvbp {

BinId LastFitPolicy::choose(Time, const Item&,
                            std::span<const BinView> fitting) {
  return fitting.back().id;
}

BinId LastFitPolicy::select_bin_soa(Time, const Item& item,
                                    std::span<const BinView> open_bins,
                                    const OpenBinTable& table) {
  const std::size_t slot = table.find_last_fit(item.size.data());
  return slot == OpenBinTable::npos ? kNoBin : open_bins[slot].id;
}

}  // namespace dvbp
