#include "core/policies/last_fit.hpp"

namespace dvbp {

BinId LastFitPolicy::choose(Time, const Item&,
                            std::span<const BinView> fitting) {
  return fitting.back().id;
}

}  // namespace dvbp
