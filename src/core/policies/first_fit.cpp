#include "core/policies/first_fit.hpp"

#include "core/open_bin_table.hpp"

namespace dvbp {

BinId FirstFitPolicy::choose(Time, const Item&,
                             std::span<const BinView> fitting) {
  // Bins are presented in opening order; the first fitting one is the
  // earliest opened.
  return fitting.front().id;
}

BinId FirstFitPolicy::select_bin_soa(Time, const Item& item,
                                     std::span<const BinView> open_bins,
                                     const OpenBinTable& table) {
  const std::size_t slot = table.find_first_fit(item.size.data());
  return slot == OpenBinTable::npos ? kNoBin : open_bins[slot].id;
}

}  // namespace dvbp
