#include "core/policies/first_fit.hpp"

namespace dvbp {

BinId FirstFitPolicy::choose(Time, const Item&,
                             std::span<const BinView> fitting) {
  // Bins are presented in opening order; the first fitting one is the
  // earliest opened.
  return fitting.front().id;
}

}  // namespace dvbp
