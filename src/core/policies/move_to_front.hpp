// Move To Front: bins are kept in most-recent-usage order; the item goes to
// the first bin in that order that can hold it, which is then moved to the
// front (paper Sec. 2.2). CR: at most (2mu+1)d+1 (Thm 2), at least
// max{2mu, (mu+1)d} (Thm 8).
//
// Bookkeeping is O(1) per list operation: the MRU order lives in a pooled
// IndexList (core/pool.hpp) whose nodes are recycled through a free list
// as bins open and close -- no per-bin heap allocation -- and pos_ maps a
// BinId to its node handle (unlink/relink instead of find+erase). stamp_
// records a monotone move-to-front clock per bin, so choose() picks the
// fitting bin with the largest stamp -- identical to walking the MRU list
// front to back, but O(fitting bins) instead of O(open bins).
//
// The policy optionally records its *leader history* -- which bin is at the
// front of the list at each moment -- which the analysis of Thm 2
// decomposes usage periods with (leading vs non-leading intervals). The
// bench for E9 uses this instrumentation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/policies/any_fit.hpp"
#include "core/pool.hpp"

namespace dvbp {

class MoveToFrontPolicy final : public AnyFitPolicy {
 public:
  explicit MoveToFrontPolicy(bool record_leader_history = false)
      : record_history_(record_leader_history) {}

  std::string_view name() const noexcept override { return "MoveToFront"; }

  void on_open(Time now, BinId bin, const Item& first) override;
  void on_pack(Time now, BinId bin, const Item& item) override;
  void on_depart(Time now, BinId bin, const Item& item, bool closed) override;
  void reset() override;
  void save_state(serial::Writer& out) const override;
  void restore_state(serial::Reader& in) override;

  /// Snapshot of the MRU order (front = leader = most recently used).
  std::vector<BinId> mru_order() const;

  /// One leader transition. `cause` is the item whose packing made the new
  /// bin the leader, or kNoItem when the previous leader closed (its last
  /// item departed) and the next MRU bin inherited leadership. This is the
  /// raw material of the Theorem 2 analysis: a bin's non-leading interval
  /// Q_{i,j} starts at a transition away from bin i with cause r_{i,j}.
  struct LeaderChange {
    Time time = 0.0;
    BinId leader = kNoBin;  ///< kNoBin: no open bin at all
    ItemId cause = kNoItem;

    friend bool operator==(const LeaderChange&, const LeaderChange&) =
        default;
  };

  /// Leader transitions, recorded when enabled. Same-instant flips are
  /// collapsed to the final leader (zero-length leading intervals carry no
  /// cost).
  const std::vector<LeaderChange>& leader_history() const noexcept {
    return history_;
  }

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

 private:
  void move_to_front(Time now, BinId bin, ItemId cause);
  void record(Time now, ItemId cause);

  IndexList mru_;
  /// BinId -> node handle in mru_ (valid while stamp_[bin] != 0). Node
  /// handles survive move_to_front, so entries never need rewriting on
  /// reorder.
  std::vector<std::uint32_t> pos_;
  /// BinId -> value of clock_ when the bin last reached the front; 0 for
  /// bins not (or no longer) in the list. Descending stamp == MRU order.
  std::vector<std::uint64_t> stamp_;
  std::uint64_t clock_ = 0;
  bool record_history_;
  std::vector<LeaderChange> history_;
};

}  // namespace dvbp
