#include "core/policies/move_to_front.hpp"

#include <cassert>

namespace dvbp {

std::vector<BinId> MoveToFrontPolicy::mru_order() const {
  std::vector<BinId> order;
  order.reserve(mru_.size());
  for (std::uint32_t n = mru_.head(); n != IndexList::kNil;
       n = mru_.next(n)) {
    order.push_back(mru_.value(n));
  }
  return order;
}

BinId MoveToFrontPolicy::choose(Time, const Item&,
                                std::span<const BinView> fitting) {
  // The first fitting bin in MRU order is the fitting bin whose
  // move-to-front stamp is largest (stamps are a monotone clock bumped
  // whenever a bin reaches the front, so MRU order is descending stamp).
  BinId best = kNoBin;
  std::uint64_t best_stamp = 0;
  for (const BinView& b : fitting) {
    const std::uint64_t s = b.id < stamp_.size() ? stamp_[b.id] : 0;
    if (s > best_stamp) {
      best_stamp = s;
      best = b.id;
    }
  }
  if (best != kNoBin) return best;
  // Every open fitting bin must be tracked in the MRU list.
  assert(false && "MoveToFront: fitting bin missing from MRU list");
  return fitting.front().id;
}

void MoveToFrontPolicy::on_open(Time now, BinId bin, const Item& first) {
  if (bin >= pos_.size()) {
    pos_.resize(bin + 1, IndexList::kNil);
    stamp_.resize(bin + 1, 0);
  }
  pos_[bin] = mru_.push_front(bin);
  stamp_[bin] = ++clock_;
  record(now, first.id);
}

void MoveToFrontPolicy::on_pack(Time now, BinId bin, const Item& item) {
  move_to_front(now, bin, item.id);
}

void MoveToFrontPolicy::on_depart(Time now, BinId bin, const Item&,
                                  bool closed) {
  if (!closed) return;
  if (bin >= stamp_.size() || stamp_[bin] == 0) return;
  const bool was_leader = !mru_.empty() && mru_.front() == bin;
  mru_.erase(pos_[bin]);
  pos_[bin] = IndexList::kNil;
  stamp_[bin] = 0;
  if (was_leader) record(now, kNoItem);
}

void MoveToFrontPolicy::reset() {
  mru_.clear();
  pos_.clear();
  stamp_.clear();
  clock_ = 0;
  history_.clear();
}

void MoveToFrontPolicy::move_to_front(Time now, BinId bin, ItemId cause) {
  if (!mru_.empty() && mru_.front() == bin) return;
  assert(bin < stamp_.size() && stamp_[bin] != 0 &&
         "MoveToFront: unknown bin");
  mru_.move_to_front(pos_[bin]);
  stamp_[bin] = ++clock_;
  record(now, cause);
}

void MoveToFrontPolicy::save_state(serial::Writer& out) const {
  out.u64(clock_);
  out.u64(stamp_.size());
  // The list front-to-back with each bin's stamp: the stamps (not just the
  // order) are serialized so choose()'s max-stamp scan sees identical
  // values after restore.
  out.u64(mru_.size());
  for (std::uint32_t n = mru_.head(); n != IndexList::kNil;
       n = mru_.next(n)) {
    const BinId bin = mru_.value(n);
    out.u32(bin);
    out.u64(stamp_[bin]);
  }
  out.u64(history_.size());
  for (const LeaderChange& h : history_) {
    out.f64(h.time);
    out.u32(h.leader);
    out.u32(h.cause);
  }
}

void MoveToFrontPolicy::restore_state(serial::Reader& in) {
  reset();
  clock_ = in.u64();
  const std::uint64_t tracked = in.u64();
  pos_.assign(tracked, IndexList::kNil);
  stamp_.assign(tracked, 0);
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const BinId bin = in.u32();
    const std::uint64_t stamp = in.u64();
    if (bin >= tracked) {
      throw serial::SerialError("MoveToFront::restore_state: bin id out of "
                                "range");
    }
    pos_[bin] = mru_.push_back(bin);
    stamp_[bin] = stamp;
  }
  const std::uint64_t hist = in.u64();
  history_.reserve(hist);
  for (std::uint64_t i = 0; i < hist; ++i) {
    LeaderChange h;
    h.time = in.f64();
    h.leader = in.u32();
    h.cause = in.u32();
    history_.push_back(h);
  }
}

void MoveToFrontPolicy::record(Time now, ItemId cause) {
  if (!record_history_) return;
  const BinId leader = mru_.empty() ? kNoBin : mru_.front();
  if (!history_.empty() && history_.back().leader == leader) return;
  if (!history_.empty() && history_.back().time == now) {
    history_.back().leader = leader;
    history_.back().cause = cause;
    // Collapse if the overwrite made it a no-op transition.
    if (history_.size() >= 2 &&
        history_[history_.size() - 2].leader == leader) {
      history_.pop_back();
    }
    return;
  }
  history_.push_back({now, leader, cause});
}

}  // namespace dvbp
