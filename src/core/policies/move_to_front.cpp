#include "core/policies/move_to_front.hpp"

#include <algorithm>
#include <cassert>

namespace dvbp {

BinId MoveToFrontPolicy::choose(Time, const Item&,
                                std::span<const BinView> fitting) {
  // Walk the MRU list and return the first bin that is in the fitting set.
  for (BinId bin : mru_) {
    for (const BinView& b : fitting) {
      if (b.id == bin) return bin;
    }
  }
  // Every open fitting bin must be tracked in the MRU list.
  assert(false && "MoveToFront: fitting bin missing from MRU list");
  return fitting.front().id;
}

void MoveToFrontPolicy::on_open(Time now, BinId bin, const Item& first) {
  mru_.push_front(bin);
  record(now, first.id);
}

void MoveToFrontPolicy::on_pack(Time now, BinId bin, const Item& item) {
  move_to_front(now, bin, item.id);
}

void MoveToFrontPolicy::on_depart(Time now, BinId bin, const Item&,
                                  bool closed) {
  if (!closed) return;
  const bool was_leader = !mru_.empty() && mru_.front() == bin;
  mru_.remove(bin);
  if (was_leader) record(now, kNoItem);
}

void MoveToFrontPolicy::reset() {
  mru_.clear();
  history_.clear();
}

void MoveToFrontPolicy::move_to_front(Time now, BinId bin, ItemId cause) {
  if (!mru_.empty() && mru_.front() == bin) return;
  auto it = std::find(mru_.begin(), mru_.end(), bin);
  assert(it != mru_.end() && "MoveToFront: unknown bin");
  mru_.erase(it);
  mru_.push_front(bin);
  record(now, cause);
}

void MoveToFrontPolicy::record(Time now, ItemId cause) {
  if (!record_history_) return;
  const BinId leader = mru_.empty() ? kNoBin : mru_.front();
  if (!history_.empty() && history_.back().leader == leader) return;
  if (!history_.empty() && history_.back().time == now) {
    history_.back().leader = leader;
    history_.back().cause = cause;
    // Collapse if the overwrite made it a no-op transition.
    if (history_.size() >= 2 &&
        history_[history_.size() - 2].leader == leader) {
      history_.pop_back();
    }
    return;
  }
  history_.push_back({now, leader, cause});
}

}  // namespace dvbp
