// Clairvoyant extensions (paper Sec. 8, future-work direction): policies
// that may read the departure time of the arriving item. Included to
// quantify, on the Sec. 7 workload, how much duration information is worth
// (bench E11).
//
//  * MinExtensionFit: place the item where it extends the bin's projected
//    usage period the least (extension = max(0, e(r) - latest departure in
//    bin)); ties broken toward the most-loaded bin. With exact departures
//    this directly attacks the usage-time objective.
//  * NoisyMinExtensionFit: same rule, but the policy sees a *predicted*
//    departure: duration multiplied by exp(sigma * N(0,1)). sigma = 0
//    recovers the clairvoyant policy; growing sigma models an ML duration
//    predictor of decreasing quality.
#pragma once

#include <string>

#include "core/policies/any_fit.hpp"
#include "core/policies/best_fit.hpp"
#include "stats/rng.hpp"

namespace dvbp {

class MinExtensionFitPolicy : public AnyFitPolicy {
 public:
  explicit MinExtensionFitPolicy(LoadMeasure tie_measure = LoadMeasure::kLinf)
      : tie_measure_(tie_measure) {}

  std::string_view name() const noexcept override { return "MinExtensionFit"; }
  bool is_clairvoyant() const noexcept override { return true; }

 protected:
  BinId choose(Time now, const Item& item,
               std::span<const BinView> fitting) override;

  /// Departure time the policy believes; overridden by the noisy variant.
  virtual Time perceived_departure(const Item& item);

 private:
  LoadMeasure tie_measure_;
};

class NoisyMinExtensionFitPolicy final : public MinExtensionFitPolicy {
 public:
  /// `sigma` is the stddev of the multiplicative log-normal duration error.
  NoisyMinExtensionFitPolicy(double sigma, std::uint64_t seed = 0xFACEu);

  std::string_view name() const noexcept override { return name_; }
  void reset() override;
  double sigma() const noexcept { return sigma_; }

  /// Checkpoint the noise stream position (see RandomFitPolicy).
  void save_state(serial::Writer& out) const override {
    for (std::uint64_t w : rng_.state()) out.u64(w);
    out.f64(rng_.spare_normal());
    out.u8(rng_.has_spare_normal() ? 1 : 0);
  }

  void restore_state(serial::Reader& in) override {
    std::array<std::uint64_t, 4> s;
    for (std::uint64_t& w : s) w = in.u64();
    const double spare = in.f64();
    const bool has_spare = in.u8() != 0;
    rng_.set_state(s, spare, has_spare);
  }

 protected:
  Time perceived_departure(const Item& item) override;

 private:
  double sigma_;
  std::uint64_t seed_;
  Xoshiro256pp rng_;
  std::string name_;
};

}  // namespace dvbp
