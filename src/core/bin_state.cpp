#include "core/bin_state.hpp"

#include <algorithm>
#include <cassert>

namespace dvbp {

void BinState::add(const Item& item) {
  assert(fits(item.size) && "BinState::add called without fits()");
  load_ += item.size;
  active_.push_back(item.id);
  ++total_packed_;
  latest_departure_ = std::max(latest_departure_, item.departure);
}

bool BinState::remove(const Item& item, const std::vector<Item>& all_items) {
  auto it = std::find(active_.begin(), active_.end(), item.id);
  assert(it != active_.end() && "BinState::remove: item not in bin");
  active_.erase(it);
  load_ -= item.size;
  load_.clamp_nonnegative();
  latest_departure_ = 0.0;
  for (ItemId id : active_) {
    latest_departure_ = std::max(latest_departure_, all_items[id].departure);
  }
  return active_.empty();
}

}  // namespace dvbp
