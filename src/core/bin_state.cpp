#include "core/bin_state.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace dvbp {

std::vector<ItemId> BinState::active_items() const {
  std::vector<ItemId> items;
  items.reserve(num_active_);
  for (std::uint32_t n = head_; n != UsagePool::kNil; n = (*pool_)[n].next) {
    items.push_back((*pool_)[n].item);
  }
  return items;
}

void BinState::add(const Item& item) {
  assert(fits(item.size) && "BinState::add called without fits()");
  load_ += item.size;
  const std::uint32_t node = pool_->alloc(item.id, item.departure);
  if (tail_ == UsagePool::kNil) {
    head_ = node;
  } else {
    (*pool_)[tail_].next = node;
  }
  tail_ = node;
  ++num_active_;
  ++total_packed_;
  latest_departure_ = std::max(latest_departure_, item.departure);
}

bool BinState::remove(const Item& item) {
  std::uint32_t prev = UsagePool::kNil;
  std::uint32_t node = head_;
  while (node != UsagePool::kNil && (*pool_)[node].item != item.id) {
    prev = node;
    node = (*pool_)[node].next;
  }
  if (node == UsagePool::kNil) {
    throw std::logic_error("BinState::remove: item " +
                           std::to_string(item.id) +
                           " is not active in bin " + std::to_string(id_));
  }
  const Time removed_departure = (*pool_)[node].departure;
  const std::uint32_t next = (*pool_)[node].next;
  if (prev == UsagePool::kNil) {
    head_ = next;
  } else {
    (*pool_)[prev].next = next;
  }
  if (tail_ == node) tail_ = prev;
  pool_->release(node);
  --num_active_;
  load_ -= item.size;
  load_.clamp_nonnegative();
  if (num_active_ == 0) {
    latest_departure_ = 0.0;
  } else if (removed_departure >= latest_departure_) {
    // Only the departing maximum forces a rescan; the engines remove in
    // departure order, so this branch fires only on ties with the maximum.
    Time latest = 0.0;
    for (std::uint32_t n = head_; n != UsagePool::kNil;
         n = (*pool_)[n].next) {
      latest = std::max(latest, (*pool_)[n].departure);
    }
    latest_departure_ = latest;
  }
  return num_active_ == 0;
}

void BinState::save_state(serial::Writer& out) const {
  out.u64(load_.dim());
  for (double c : load_) out.f64(c);
  out.u64(num_active_);
  for (std::uint32_t n = head_; n != UsagePool::kNil; n = (*pool_)[n].next) {
    out.u32((*pool_)[n].item);
    out.f64((*pool_)[n].departure);
  }
  out.u64(total_packed_);
  out.f64(latest_departure_);
}

void BinState::restore_state(serial::Reader& in) {
  const std::uint64_t dim = in.u64();
  if (dim != load_.dim()) {
    throw serial::SerialError("BinState::restore_state: dimension mismatch");
  }
  for (std::size_t j = 0; j < dim; ++j) load_[j] = in.f64();
  // Return any existing nodes (none on the fresh shells restore pairs
  // with, but the pool must never leak if a caller reuses a bin).
  for (std::uint32_t n = head_; n != UsagePool::kNil;) {
    const std::uint32_t next = (*pool_)[n].next;
    pool_->release(n);
    n = next;
  }
  head_ = tail_ = UsagePool::kNil;
  num_active_ = 0;
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ItemId item = in.u32();
    const Time departure = in.f64();
    const std::uint32_t node = pool_->alloc(item, departure);
    if (tail_ == UsagePool::kNil) {
      head_ = node;
    } else {
      (*pool_)[tail_].next = node;
    }
    tail_ = node;
    ++num_active_;
  }
  total_packed_ = in.u64();
  latest_departure_ = in.f64();
}

}  // namespace dvbp
