#include "core/bin_state.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace dvbp {

void BinState::add(const Item& item) {
  assert(fits(item.size) && "BinState::add called without fits()");
  load_ += item.size;
  active_.push_back(item.id);
  departures_.push_back(item.departure);
  ++total_packed_;
  latest_departure_ = std::max(latest_departure_, item.departure);
}

bool BinState::remove(const Item& item) {
  auto it = std::find(active_.begin(), active_.end(), item.id);
  if (it == active_.end()) {
    throw std::logic_error("BinState::remove: item " +
                           std::to_string(item.id) +
                           " is not active in bin " + std::to_string(id_));
  }
  const auto idx = static_cast<std::size_t>(it - active_.begin());
  const Time removed_departure = departures_[idx];
  active_.erase(it);
  departures_.erase(departures_.begin() + static_cast<std::ptrdiff_t>(idx));
  load_ -= item.size;
  load_.clamp_nonnegative();
  if (active_.empty()) {
    latest_departure_ = 0.0;
  } else if (removed_departure >= latest_departure_) {
    // Only the departing maximum forces a rescan; the engines remove in
    // departure order, so this branch fires only on ties with the maximum.
    latest_departure_ = *std::max_element(departures_.begin(),
                                          departures_.end());
  }
  return active_.empty();
}

}  // namespace dvbp
