#include "core/bin_state.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace dvbp {

void BinState::add(const Item& item) {
  assert(fits(item.size) && "BinState::add called without fits()");
  load_ += item.size;
  active_.push_back(item.id);
  departures_.push_back(item.departure);
  ++total_packed_;
  latest_departure_ = std::max(latest_departure_, item.departure);
}

bool BinState::remove(const Item& item) {
  auto it = std::find(active_.begin(), active_.end(), item.id);
  if (it == active_.end()) {
    throw std::logic_error("BinState::remove: item " +
                           std::to_string(item.id) +
                           " is not active in bin " + std::to_string(id_));
  }
  const auto idx = static_cast<std::size_t>(it - active_.begin());
  const Time removed_departure = departures_[idx];
  active_.erase(it);
  departures_.erase(departures_.begin() + static_cast<std::ptrdiff_t>(idx));
  load_ -= item.size;
  load_.clamp_nonnegative();
  if (active_.empty()) {
    latest_departure_ = 0.0;
  } else if (removed_departure >= latest_departure_) {
    // Only the departing maximum forces a rescan; the engines remove in
    // departure order, so this branch fires only on ties with the maximum.
    latest_departure_ = *std::max_element(departures_.begin(),
                                          departures_.end());
  }
  return active_.empty();
}

void BinState::save_state(serial::Writer& out) const {
  out.u64(load_.dim());
  for (double c : load_) out.f64(c);
  out.u64(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    out.u32(active_[i]);
    out.f64(departures_[i]);
  }
  out.u64(total_packed_);
  out.f64(latest_departure_);
}

void BinState::restore_state(serial::Reader& in) {
  const std::uint64_t dim = in.u64();
  if (dim != load_.dim()) {
    throw serial::SerialError("BinState::restore_state: dimension mismatch");
  }
  for (std::size_t j = 0; j < dim; ++j) load_[j] = in.f64();
  const std::uint64_t n = in.u64();
  active_.clear();
  departures_.clear();
  active_.reserve(n);
  departures_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    active_.push_back(in.u32());
    departures_.push_back(in.f64());
  }
  total_packed_ = in.u64();
  latest_departure_ = in.f64();
}

}  // namespace dvbp
