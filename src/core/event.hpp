// Event stream: the arrival/departure timeline an online algorithm observes.
//
// Ordering realizes the half-open interval semantics of the paper: at a
// shared timestamp, departures are processed before arrivals (an item with
// I(r) = [0,1) has already left when an item arriving at t=1 must be
// placed). Arrivals at the same instant keep instance order.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dvbp {

enum class EventKind : std::uint8_t {
  kDeparture = 0,  // sorts before arrivals at equal timestamps
  kArrival = 1,
};

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kArrival;
  ItemId item = kNoItem;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Strict weak ordering: by time, then departures first, then by item id
/// (instance order for arrivals; deterministic for departures).
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.item < b.item;
  }
};

/// Builds the sorted event stream (2 events per item).
std::vector<Event> build_event_stream(const Instance& inst);

/// The sorted distinct event timestamps of an instance. The load vector
/// s(R, t) is piecewise constant between consecutive entries; integrals in
/// the OPT lower bounds sweep these segments.
std::vector<Time> event_times(const Instance& inst);

}  // namespace dvbp
