#include "core/interval.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace dvbp {

Interval Interval::hull(const Interval& other) const noexcept {
  if (empty()) return other;
  if (other.empty()) return *this;
  return Interval(std::min(lo, other.lo), std::max(hi, other.hi));
}

std::string Interval::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo << ", " << iv.hi << ')';
}

}  // namespace dvbp
