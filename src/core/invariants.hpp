// PackingInvariantChecker: the migration-era replacement for the
// append-only audit in Packing::validate().
//
// Migration (core/rebalancer.hpp) rewrites placement state that every
// other subsystem assumes is write-once: an item may appear in the item
// list of several bins, and assignment means "last bin packed into".
// This checker audits a live Dispatcher directly, after every event if
// the caller wishes, and is stateful across calls so it can also enforce
// the monotone invariants (closed bins never reopen or mutate, realized
// cost never decreases) that a single snapshot cannot see.
//
// Invariants checked (ISSUE 7 / docs/MIGRATION.md):
//   1. no open bin exceeds capacity in any dimension, and each bin's
//      incremental load equals the sum of its active items' sizes;
//   2. every live, non-evicted job sits in exactly one open bin that
//      lists it exactly once; evicted (in-limbo) jobs sit in none;
//   3. closed bins stay closed with an immutable usage record, and
//      closed usage / cost_so_far are monotone non-decreasing;
//   4. the migration budget is never overdrawn (check_budget, fed the
//      Rebalancer's usage counters).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dvbp {

class Dispatcher;

/// Budget-accounting snapshot, produced by Rebalancer::budget_usage().
/// Credits accrue per departure event; consumption must never exceed
/// them (invariant 4).
struct MigrationBudgetUsage {
  std::uint64_t migrations = 0;        ///< migrations executed so far
  double volume = 0.0;                 ///< total migrated L1 volume
  double migration_credits = 0.0;      ///< migration credits accrued
  double volume_credits = 0.0;         ///< volume credits accrued
};

class PackingInvariantChecker {
 public:
  /// Audits `d` against invariants 1-3. Returns a description of the
  /// first violation, or nullopt when consistent. Stateful: remembers
  /// closed-bin records and cost watermarks from previous calls on the
  /// same dispatcher; use one checker instance per dispatcher.
  std::optional<std::string> check(const Dispatcher& d);

  /// Invariant 4: consumption never exceeds accrued credits.
  static std::optional<std::string> check_budget(
      const MigrationBudgetUsage& usage);

 private:
  struct ClosedBin {
    Time opened = 0.0;
    Time closed = 0.0;
    std::size_t items = 0;  // record item-list length at close time
    bool seen = false;
  };
  std::vector<ClosedBin> closed_seen_;  // by bin id, once observed closed
  double last_closed_usage_ = 0.0;
  double last_cost_ = 0.0;
  bool have_watermarks_ = false;
};

}  // namespace dvbp
