// BinState: the mutable state of one open bin during a simulation.
//
// A bin is opened when it receives its first item, stays open while it holds
// an active item, and closes (permanently; paper Sec. 2.1) when its last
// item departs. Load is maintained incrementally; the final subtraction is
// clamped to remove floating residue.
//
// The active set is a singly linked list of usage-interval nodes threaded
// through a UsagePool shared by every bin of one Engine/Dispatcher
// (core/pool.hpp): add() splices a node from the pool's free list and
// remove() returns it -- no per-item vector growth or shrink on the hot
// path. Insertion order is preserved (the serialization format and the
// golden state hashes depend on it).
//
// latest_departure() is maintained incrementally from the departure each
// item carried when it was added: removal only rescans the bin when the
// current maximum departs. The engines process departures in time order,
// so the departing item is almost always a non-maximum and removal is
// O(occupancy) only for the find of the item itself, not for the rescan.
#pragma once

#include <vector>

#include "core/item.hpp"
#include "core/pool.hpp"
#include "core/rvec.hpp"
#include "core/serial.hpp"
#include "core/types.hpp"

namespace dvbp {

class BinState {
 public:
  /// `pool` (borrowed, never null) backs the active-item list and must
  /// outlive the bin. Bins do not release their nodes on destruction --
  /// the owning engine drops the whole pool wholesale -- so a BinState
  /// must be drained (or abandoned with its pool) rather than copied.
  BinState(BinId id, std::size_t dim, Time opened_at, double capacity,
           UsagePool* pool)
      : id_(id),
        opened_at_(opened_at),
        capacity_(capacity),
        load_(dim),
        pool_(pool) {}

  BinState(const BinState&) = delete;
  BinState& operator=(const BinState&) = delete;

  BinId id() const noexcept { return id_; }
  Time opened_at() const noexcept { return opened_at_; }
  const RVec& load() const noexcept { return load_; }
  std::size_t num_active() const noexcept { return num_active_; }
  bool is_empty() const noexcept { return num_active_ == 0; }
  /// Currently-active items in insertion order, materialized from the
  /// node list (cold-path use: audits, the rebalancer's planning pass).
  std::vector<ItemId> active_items() const;
  /// Count of every item ever packed here (for diagnostics).
  std::size_t total_packed() const noexcept { return total_packed_; }
  /// Latest departure among currently-active items (clairvoyant policies).
  /// Reflects each item's departure as of its add() call.
  Time latest_departure() const noexcept { return latest_departure_; }

  /// Per-dimension capacity (1.0 in the paper's model; > 1 under resource
  /// augmentation).
  double capacity() const noexcept { return capacity_; }

  /// True when `size` can be added without exceeding the bin's capacity in
  /// any dimension -- the shared fits.hpp predicate, via RVec, so the
  /// decision is bit-identical to the SIMD open-bin table's.
  bool fits(const RVec& size) const {
    return load_.fits_with_capacity(size, capacity_);
  }

  /// Adds an item. Precondition: fits(item.size).
  void add(const Item& item);

  /// Removes a departing item (matched by id); returns true if the bin
  /// became empty. Throws std::logic_error when the item is not active in
  /// this bin -- the check survives NDEBUG builds, where the former
  /// assert-only guard would have erased end() and corrupted the load.
  bool remove(const Item& item);

  // --- Checkpointing (src/persist/) -----------------------------------

  /// Serializes the mutable bin state (load bits, active items, incremental
  /// bookkeeping). The identity fields (id, dim, opened_at, capacity) are
  /// NOT included -- the Dispatcher checkpoint records them -- so restore()
  /// pairs this blob with an identically constructed shell. The load vector
  /// is written as raw IEEE-754 bits: recomputing it by re-adding active
  /// items would reorder the floating-point sums and could flip a future
  /// fits() decision by one ulp. Active items are written in insertion
  /// order, byte-identical to the pre-pool vector format.
  void save_state(serial::Writer& out) const;

  /// Restores state written by save_state() into a freshly constructed
  /// BinState of the same id/dim/opened_at/capacity.
  void restore_state(serial::Reader& in);

 private:
  BinId id_;
  Time opened_at_;
  double capacity_;
  RVec load_;
  UsagePool* pool_;
  /// Singly linked active list through pool_, insertion order; tail_
  /// makes append O(1).
  std::uint32_t head_ = UsagePool::kNil;
  std::uint32_t tail_ = UsagePool::kNil;
  std::size_t num_active_ = 0;
  std::size_t total_packed_ = 0;
  Time latest_departure_ = 0.0;
};

}  // namespace dvbp
