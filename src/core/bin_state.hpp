// BinState: the mutable state of one open bin during a simulation.
//
// A bin is opened when it receives its first item, stays open while it holds
// an active item, and closes (permanently; paper Sec. 2.1) when its last
// item departs. Load is maintained incrementally; the final subtraction is
// clamped to remove floating residue.
//
// latest_departure() is maintained incrementally from the departure each
// item carried when it was added: removal only rescans the bin when the
// current maximum departs. The engines process departures in time order,
// so the departing item is almost always a non-maximum and removal is
// O(occupancy) only for the find of the item itself, not for the rescan.
#pragma once

#include <vector>

#include "core/item.hpp"
#include "core/rvec.hpp"
#include "core/serial.hpp"
#include "core/types.hpp"

namespace dvbp {

class BinState {
 public:
  BinState(BinId id, std::size_t dim, Time opened_at, double capacity = 1.0)
      : id_(id), opened_at_(opened_at), capacity_(capacity), load_(dim) {}

  BinId id() const noexcept { return id_; }
  Time opened_at() const noexcept { return opened_at_; }
  const RVec& load() const noexcept { return load_; }
  std::size_t num_active() const noexcept { return active_.size(); }
  bool is_empty() const noexcept { return active_.empty(); }
  const std::vector<ItemId>& active_items() const noexcept { return active_; }
  /// Count of every item ever packed here (for diagnostics).
  std::size_t total_packed() const noexcept { return total_packed_; }
  /// Latest departure among currently-active items (clairvoyant policies).
  /// Reflects each item's departure as of its add() call.
  Time latest_departure() const noexcept { return latest_departure_; }

  /// Per-dimension capacity (1.0 in the paper's model; > 1 under resource
  /// augmentation).
  double capacity() const noexcept { return capacity_; }

  /// True when `size` can be added without exceeding the bin's capacity in
  /// any dimension (with the library-wide tolerance).
  bool fits(const RVec& size) const noexcept {
    return load_.fits_with_capacity(size, capacity_);
  }

  /// Adds an item. Precondition: fits(item.size).
  void add(const Item& item);

  /// Removes a departing item (matched by id); returns true if the bin
  /// became empty. Throws std::logic_error when the item is not active in
  /// this bin -- the check survives NDEBUG builds, where the former
  /// assert-only guard would have erased end() and corrupted the load.
  bool remove(const Item& item);

  // --- Checkpointing (src/persist/) -----------------------------------

  /// Serializes the mutable bin state (load bits, active items, incremental
  /// bookkeeping). The identity fields (id, dim, opened_at, capacity) are
  /// NOT included -- the Dispatcher checkpoint records them -- so restore()
  /// pairs this blob with an identically constructed shell. The load vector
  /// is written as raw IEEE-754 bits: recomputing it by re-adding active
  /// items would reorder the floating-point sums and could flip a future
  /// fits() decision by one ulp.
  void save_state(serial::Writer& out) const;

  /// Restores state written by save_state() into a freshly constructed
  /// BinState of the same id/dim/opened_at/capacity.
  void restore_state(serial::Reader& in);

 private:
  BinId id_;
  Time opened_at_;
  double capacity_;
  RVec load_;
  std::vector<ItemId> active_;
  /// Parallel to active_: each item's departure at add() time, so the
  /// maximum can be restored without consulting the instance (whose
  /// departure fields the Dispatcher patches on actual departure).
  std::vector<Time> departures_;
  std::size_t total_packed_ = 0;
  Time latest_departure_ = 0.0;
};

}  // namespace dvbp
