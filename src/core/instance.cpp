#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/interval_set.hpp"

namespace dvbp {

void Instance::check_item(Time arrival, Time departure,
                          const RVec& size) const {
  if (dim_ != 0 && size.dim() != dim_) {
    throw std::invalid_argument("Instance::add: dimension mismatch");
  }
  if (size.dim() == 0) {
    throw std::invalid_argument("Instance::add: zero-dimensional size");
  }
  if (!std::isfinite(arrival) || !std::isfinite(departure)) {
    throw std::invalid_argument("Instance::add: non-finite timestamp");
  }
  for (std::size_t j = 0; j < size.dim(); ++j) {
    if (!std::isfinite(size[j])) {
      throw std::invalid_argument("Instance::add: non-finite size");
    }
  }
  if (arrival < 0.0) {
    throw std::invalid_argument("Instance::add: negative arrival time");
  }
  if (!(departure > arrival)) {
    throw std::invalid_argument("Instance::add: non-positive duration");
  }
  if (!size.is_nonnegative()) {
    throw std::invalid_argument("Instance::add: negative size component");
  }
  if (!size.fits_in_capacity(1.0)) {
    throw std::invalid_argument(
        "Instance::add: size exceeds unit bin capacity");
  }
}

ItemId Instance::add(Time arrival, Time departure, RVec size) {
  check_item(arrival, departure, size);
  if (dim_ == 0) dim_ = size.dim();
  const ItemId id = static_cast<ItemId>(items_.size());
  items_.emplace_back(id, arrival, departure, std::move(size));
  return id;
}

void Instance::sort_by_arrival() {
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < items_.size(); ++i) {
    items_[i].id = static_cast<ItemId>(i);
  }
}

void Instance::set_tenant(ItemId id, TenantId tenant) {
  if (id >= items_.size()) {
    throw std::out_of_range("Instance::set_tenant: bad item id");
  }
  items_[id].tenant = tenant;
}

void Instance::scale_size(ItemId id, double factor) {
  if (id >= items_.size()) {
    throw std::out_of_range("Instance::scale_size: bad item id");
  }
  if (!(factor >= 0.0)) {
    throw std::invalid_argument("Instance::scale_size: negative factor");
  }
  RVec& s = items_[id].size;
  for (std::size_t j = 0; j < s.dim(); ++j) {
    s[j] = std::min(1.0, s[j] * factor);
  }
}

Time Instance::min_duration() const {
  if (items_.empty()) throw std::logic_error("min_duration: empty instance");
  Time m = std::numeric_limits<Time>::infinity();
  for (const Item& r : items_) m = std::min(m, r.duration());
  return m;
}

Time Instance::max_duration() const {
  if (items_.empty()) throw std::logic_error("max_duration: empty instance");
  Time m = 0.0;
  for (const Item& r : items_) m = std::max(m, r.duration());
  return m;
}

double Instance::mu() const { return max_duration() / min_duration(); }

Time Instance::span() const {
  IntervalSet s;
  for (const Item& r : items_) s.add(r.interval());
  return s.measure();
}

Time Instance::first_arrival() const {
  if (items_.empty()) throw std::logic_error("first_arrival: empty instance");
  Time m = std::numeric_limits<Time>::infinity();
  for (const Item& r : items_) m = std::min(m, r.arrival);
  return m;
}

Time Instance::last_departure() const {
  if (items_.empty()) throw std::logic_error("last_departure: empty instance");
  Time m = -std::numeric_limits<Time>::infinity();
  for (const Item& r : items_) m = std::max(m, r.departure);
  return m;
}

RVec Instance::total_size() const {
  RVec total(dim_);
  for (const Item& r : items_) total += r.size;
  return total;
}

RVec Instance::load_at(Time t) const {
  RVec total(dim_);
  for (const Item& r : items_) {
    if (r.active_at(t)) total += r.size;
  }
  return total;
}

std::vector<ItemId> Instance::active_at(Time t) const {
  std::vector<ItemId> ids;
  for (const Item& r : items_) {
    if (r.active_at(t)) ids.push_back(r.id);
  }
  return ids;
}

double Instance::total_utilization() const {
  double u = 0.0;
  for (const Item& r : items_) u += r.utilization();
  return u;
}

std::optional<std::string> Instance::validate() const {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const Item& r = items_[i];
    if (r.id != static_cast<ItemId>(i)) {
      return "item " + std::to_string(i) + ": id mismatch";
    }
    try {
      check_item(r.arrival, r.departure, r.size);
    } catch (const std::invalid_argument& e) {
      return "item " + std::to_string(i) + ": " + e.what();
    }
  }
  return std::nullopt;
}

std::string Instance::to_csv() const {
  std::ostringstream os;
  os << "# arrival,departure,s_0..s_" << (dim_ ? dim_ - 1 : 0) << '\n';
  for (const Item& r : items_) {
    os << r.arrival << ',' << r.departure;
    for (std::size_t j = 0; j < r.size.dim(); ++j) os << ',' << r.size[j];
    os << '\n';
  }
  return os.str();
}

Instance Instance::from_csv(std::istream& is) {
  Instance inst;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<double> fields;
    std::string tok;
    while (std::getline(ls, tok, ',')) {
      try {
        fields.push_back(std::stod(tok));
      } catch (const std::exception&) {
        throw std::invalid_argument("Instance::from_csv: bad number at line " +
                                    std::to_string(lineno));
      }
    }
    if (fields.size() < 3) {
      throw std::invalid_argument(
          "Instance::from_csv: need arrival,departure,size.. at line " +
          std::to_string(lineno));
    }
    RVec size(fields.size() - 2);
    for (std::size_t j = 0; j + 2 < fields.size(); ++j) size[j] = fields[j + 2];
    inst.add(fields[0], fields[1], std::move(size));
  }
  return inst;
}

Instance Instance::from_csv_string(const std::string& text) {
  std::istringstream is(text);
  return from_csv(is);
}

std::ostream& operator<<(std::ostream& os, const Instance& inst) {
  os << "Instance{d=" << inst.dim() << ", n=" << inst.size() << '}';
  return os;
}

}  // namespace dvbp
