#include "core/interval_set.hpp"

#include <algorithm>

namespace dvbp {

void IntervalSet::add(Interval iv) {
  if (iv.empty()) return;
  // Find the first part whose hi >= iv.lo: everything before it is strictly
  // to the left and unaffected.
  auto first = std::lower_bound(
      parts_.begin(), parts_.end(), iv.lo,
      [](const Interval& p, Time lo) { return p.hi < lo; });
  // Absorb all parts that touch or overlap [iv.lo, iv.hi).
  auto it = first;
  while (it != parts_.end() && it->lo <= iv.hi) {
    iv.lo = std::min(iv.lo, it->lo);
    iv.hi = std::max(iv.hi, it->hi);
    ++it;
  }
  const auto idx = static_cast<std::size_t>(first - parts_.begin());
  parts_.erase(first, it);
  parts_.insert(parts_.begin() + static_cast<std::ptrdiff_t>(idx), iv);
}

Time IntervalSet::measure() const noexcept {
  Time total = 0.0;
  for (const Interval& p : parts_) total += p.length();
  return total;
}

bool IntervalSet::contains(Time t) const noexcept {
  auto it = std::upper_bound(
      parts_.begin(), parts_.end(), t,
      [](Time v, const Interval& p) { return v < p.lo; });
  if (it == parts_.begin()) return false;
  --it;
  return it->contains(t);
}

Interval IntervalSet::hull() const noexcept {
  if (parts_.empty()) return Interval{};
  return Interval(parts_.front().lo, parts_.back().hi);
}

void IntervalSet::merge(const IntervalSet& other) {
  for (const Interval& p : other.parts_) add(p);
}

}  // namespace dvbp
