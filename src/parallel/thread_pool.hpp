// A small fixed-size thread pool plus a chunked parallel_for.
//
// Used by the experiment harness to run independent Monte-Carlo trials
// concurrently. Design follows the hpc-parallel guidance: explicit
// parallelism, no shared mutable state in the hot path (each chunk works on
// its own accumulator; reductions merge at the end), RAII shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dvbp {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n), sharding contiguous chunks over the pool.
/// Exceptions from any invocation are rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 1);

}  // namespace dvbp
