// A small fixed-size thread pool plus a chunked parallel_for.
//
// Used by the experiment harness to run independent Monte-Carlo trials
// concurrently. Design follows the hpc-parallel guidance: explicit
// parallelism, no shared mutable state in the hot path (each chunk works on
// its own accumulator; reductions merge at the end), RAII shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dvbp {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Thrown by parallel_for when an invocation fails. Carries the failing
/// index (the *lowest* one when several chunks fail, so the report is
/// deterministic regardless of scheduling) and the original exception.
class ParallelForError : public std::runtime_error {
 public:
  ParallelForError(std::size_t index, std::exception_ptr cause,
                   const std::string& what)
      : std::runtime_error(what), index_(index), cause_(std::move(cause)) {}

  /// Index `i` whose fn(i) threw.
  std::size_t index() const noexcept { return index_; }
  /// The original exception; std::rethrow_exception to inspect it.
  std::exception_ptr cause() const noexcept { return cause_; }

 private:
  std::size_t index_;
  std::exception_ptr cause_;
};

/// Runs fn(i) for i in [0, n), sharding contiguous chunks over the pool.
/// Every chunk runs to its own completion or first failure even when
/// another chunk has already failed. If any invocation threw, a
/// ParallelForError naming the lowest failing index (and nesting the
/// original exception) is raised after all chunks finish; the remaining
/// indices of the failing chunk itself are skipped.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 1);

}  // namespace dvbp
