#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>

namespace dvbp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t workers = pool.thread_count();
  // ~4 chunks per worker balances load without excessive queueing overhead.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers * 4);
  const std::size_t chunk =
      std::max(min_chunk, (n + target_chunks - 1) / target_chunks);

  // Failures are captured inside the chunks (not thrown through the
  // futures): the pre-fix code kept only whichever future's exception was
  // harvested first and could never say *which* index failed. The shared
  // slot keeps the failure with the lowest index, so the report is
  // deterministic regardless of which worker lost the race.
  struct FailureSlot {
    std::mutex mu;
    bool failed = false;
    std::size_t index = 0;
    std::exception_ptr error;
  };
  FailureSlot failure;

  std::vector<std::future<void>> futs;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futs.push_back(pool.submit([begin, end, &fn, &failure] {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(failure.mu);
          if (!failure.failed || i < failure.index) {
            failure.failed = true;
            failure.index = i;
            failure.error = std::current_exception();
          }
          return;  // skip the rest of this chunk only
        }
      }
    }));
  }
  for (auto& f : futs) f.get();  // barrier; chunk bodies no longer throw

  if (failure.failed) {
    std::string what = "parallel_for: task at index " +
                       std::to_string(failure.index) + " failed";
    try {
      std::rethrow_exception(failure.error);
    } catch (const std::exception& e) {
      what += ": ";
      what += e.what();
    } catch (...) {
      what += ": non-std exception";
    }
    throw ParallelForError(failure.index, failure.error, what);
  }
}

}  // namespace dvbp
