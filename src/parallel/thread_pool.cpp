#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace dvbp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t workers = pool.thread_count();
  // ~4 chunks per worker balances load without excessive queueing overhead.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers * 4);
  const std::size_t chunk =
      std::max(min_chunk, (n + target_chunks - 1) / target_chunks);

  std::vector<std::future<void>> futs;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futs.push_back(pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dvbp
