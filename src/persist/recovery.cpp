#include "persist/recovery.hpp"

#include <chrono>
#include <string>

#include "core/dispatcher.hpp"
#include "core/serial.hpp"

namespace dvbp::persist {

RecoveryReport RecoveryManager::run(
    const std::function<void(const CheckpointData&)>& restore,
    const std::function<void(const JournalRecord&)>& replay) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryReport report;

  JournalScan scan = scan_journal(dir_);
  if (scan.torn_tail) {
    truncate_torn_tail(scan);
    report.torn_tail = true;
    report.tail_bytes_discarded = scan.tail_bytes_discarded;
  }

  if (auto ckpt = load_newest_checkpoint(dir_)) {
    report.had_checkpoint = true;
    report.checkpoint_seq = ckpt->seq;
    report.last_seq = ckpt->seq;
    report.extra = ckpt->extra;
    restore(*ckpt);
  }

  for (const JournalRecord& rec : scan.records) {
    if (rec.seq <= report.checkpoint_seq) continue;
    replay(rec);
    // Credit frames carry the whole settled state, so only the newest one
    // matters; capture it here so every binding gets it for free.
    if (rec.kind == OpKind::kTenantCredits) {
      report.tenant_credits = rec.blob;
    }
    report.replayed_ops += 1;
    report.last_seq = rec.seq;
  }
  report.next_seq = report.last_seq + 1;

  if (metrics_ != nullptr) {
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    metrics_->gauge("dvbp.persist.recovery_ms").set(elapsed);
    metrics_->counter("dvbp.persist.replayed_ops_total")
        .inc(report.replayed_ops);
    if (report.tail_bytes_discarded > 0) {
      metrics_->counter("dvbp.persist.torn_tail_bytes_total")
          .inc(report.tail_bytes_discarded);
    }
  }
  return report;
}

RecoveryReport RecoveryManager::recover_dispatcher(Dispatcher& dispatcher,
                                                   Policy& policy) {
  return run(
      [&](const CheckpointData& ckpt) {
        if (ckpt.policy_name != policy.name()) {
          throw PersistError(
              "recovery: checkpoint was written by policy '" +
              ckpt.policy_name + "', refusing to restore into '" +
              std::string(policy.name()) + "'");
        }
        serial::Reader disp_in(ckpt.dispatcher_state);
        dispatcher.restore_state(disp_in);
        policy.reset();
        serial::Reader pol_in(ckpt.policy_state);
        policy.restore_state(pol_in);
      },
      [&](const JournalRecord& rec) {
        switch (rec.kind) {
          case OpKind::kArrive: {
            const auto admission =
                dispatcher.arrive(rec.time, rec.size,
                                  rec.expected_departure, rec.tenant);
            // The serial dispatcher assigns JobIds densely, so replay must
            // land every arrival on its journaled id; divergence means the
            // checkpoint and journal disagree about history.
            if (admission.job != rec.job) {
              throw PersistError(
                  "recovery: replayed arrival got job id " +
                  std::to_string(admission.job) + ", journal says " +
                  std::to_string(rec.job) +
                  " (checkpoint/journal mismatch)");
            }
            break;
          }
          case OpKind::kDepart:
            dispatcher.depart(rec.time, rec.job);
            break;
          case OpKind::kAdvance:
            // Pure clock note; the dispatcher's clock only moves on
            // arrive/depart, exactly as it did pre-crash.
            break;
          case OpKind::kEvict:
            dispatcher.evict(rec.time, rec.job);
            break;
          case OpKind::kReplace: {
            // The frame records the bin the job actually landed in, so
            // replay is deterministic independent of any planner.
            const BinId bin = dispatcher.replace(
                rec.time, rec.job, rec.new_bin ? kNoBin : rec.bin);
            if (bin != rec.bin) {
              throw PersistError(
                  "recovery: replayed replace landed in bin " +
                  std::to_string(bin) + ", journal says " +
                  std::to_string(rec.bin) +
                  " (checkpoint/journal mismatch)");
            }
            break;
          }
          case OpKind::kTenantCredits:
            // Captured by run() into report.tenant_credits; no dispatcher
            // mutation to replay.
            break;
        }
      });
}

}  // namespace dvbp::persist
