// DurableDispatcher: the serial Dispatcher wrapped with write-ahead
// journaling, periodic checkpointing, and automatic crash recovery.
//
// Construction recovers: the newest valid checkpoint under `options.dir`
// is restored into the fresh dispatcher/policy pair and the journal tail
// is replayed through the real policy code, so the object starts exactly
// where the previous incarnation (crashed or not) left off. A torn journal
// tail is truncated and reported, never fatal.
//
// Ordering: each op is applied in memory first, then journaled and
// committed -- an op is acknowledged (the call returns) only after its
// frame is down the write(2) path under the configured fsync policy. An
// op that the dispatcher rejects (time regression, bad size) therefore
// never reaches the journal, and replay can never hit an invalid op. A
// crash between apply and commit loses exactly the unacknowledged tail,
// which is the torn-tail contract recovery already handles.
//
// This type is the serial (single-owner) binding; the sharded service
// wires the same journal/checkpoint/recovery pieces per shard (see
// cloud/sharded_dispatcher.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/rebalancer.hpp"
#include "persist/journal.hpp"
#include "persist/recovery.hpp"

namespace dvbp::persist {

struct DurableOptions {
  /// Journal + checkpoint directory (one owner per directory).
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  std::size_t fsync_interval_ops = 256;
  /// Write a checkpoint every this many journaled ops; 0 disables
  /// automatic checkpoints (checkpoint() can still be called manually).
  std::size_t checkpoint_every = 0;
  /// Borrowed, nullable; receives the dvbp.persist.* metric families.
  obs::MetricRegistry* metrics = nullptr;
  /// Borrowed, nullable; forwarded to the inner Dispatcher. Replayed ops
  /// fire observer callbacks again (a recovery is a re-run of history).
  obs::Observer* observer = nullptr;
  /// Borrowed, nullable; installed on the inner Dispatcher BEFORE replay,
  /// so a recovery re-accrues per-tenant usage exactly as the original run
  /// did (tenancy::UsageAccountant is the intended hook).
  TenantUsageHook* usage_hook = nullptr;
  /// Optional caller blob persisted in every checkpoint (e.g. serialized
  /// accountant + arbiter state); surfaced back via recovery().extra.
  std::function<std::vector<std::uint8_t>()> save_extra;
};

class DurableDispatcher {
 public:
  /// Recovers from `options.dir` (creating it when missing) and opens the
  /// journal for append. `policy` is borrowed and reset() -- its
  /// checkpointed state, if any, is restored into it. Throws PersistError
  /// when the directory's checkpoint belongs to a different policy.
  DurableDispatcher(std::size_t dim, Policy& policy, DurableOptions options,
                    double bin_capacity = 1.0);

  /// Journaled Dispatcher::arrive. Returns after the frame is committed.
  /// A non-kNoTenant label rides in the journal frame, so recovery rebuilds
  /// the same per-tenant attribution.
  Dispatcher::Admission arrive(Time now, RVec size,
                               Time expected_departure =
                                   std::numeric_limits<Time>::infinity(),
                               TenantId tenant = kNoTenant);

  /// Journaled Dispatcher::depart.
  void depart(Time now, JobId job);

  /// Journals a clock advance with no placement mutation, so the journal
  /// records observed time even across idle stretches.
  void advance(Time now);

  /// Journaled Dispatcher::evict (migration; see core/rebalancer.hpp).
  Dispatcher::Eviction evict(Time now, JobId job);

  /// Journaled Dispatcher::replace. The journal frame records the bin the
  /// job actually landed in, so replay re-places deterministically even
  /// if a recovering engine would plan differently.
  BinId replace(Time now, JobId job, BinId target = kNoBin);

  /// Exec bindings for a Rebalancer driving this durable engine: every
  /// migration step goes through the journaling calls above.
  MigrationExec migration_exec();

  /// Journals one kTenantCredits frame carrying `credit_state` (opaque,
  /// tenancy::Arbiter::state_bytes) and commits it: the settlement is
  /// durable when this returns. Recovery surfaces the newest such frame
  /// via recovery().tenant_credits.
  void settle_credits(Time now, const std::vector<std::uint8_t>& credit_state);

  /// Forces a checkpoint at the current sequence number: fsyncs the
  /// journal, durably writes the checkpoint file, then rotates the journal
  /// (old segments deleted). No-op when nothing was journaled since the
  /// last checkpoint.
  void checkpoint();

  /// Commits and fsyncs any buffered frames regardless of fsync policy.
  void flush() { writer_->sync(); }

  /// How the constructor recovered (cold start: had_checkpoint == false,
  /// replayed_ops == 0).
  const RecoveryReport& recovery() const noexcept { return recovery_; }

  /// The live dispatcher. Read-only: mutations must flow through the
  /// journaling calls above or they will not survive a crash.
  const Dispatcher& dispatcher() const noexcept { return dispatcher_; }

  std::uint64_t next_seq() const noexcept { return writer_->next_seq(); }

 private:
  void maybe_checkpoint();

  Policy& policy_;
  DurableOptions options_;
  Dispatcher dispatcher_;
  RecoveryReport recovery_;
  std::unique_ptr<JournalWriter> writer_;
  std::uint64_t ops_since_checkpoint_ = 0;
  obs::Counter* checkpoints_total_ = nullptr;
};

}  // namespace dvbp::persist
