// Checkpointing: bounded-time recovery for long-lived journals.
//
// A checkpoint captures a quiescent dispatcher -- the full allocation
// state (Dispatcher::save_state) plus the policy's decision state
// (Policy::save_state) -- as of a journal sequence number S. Recovery
// loads the newest valid checkpoint and replays only the journal frames
// with seq > S, so recovery time is bounded by the checkpoint interval
// rather than the age of the service.
//
// File protocol (crash-safe on POSIX):
//   1. write checkpoint-<seq>.ckpt.tmp, fsync it        [tmp_written]
//   2. rename to checkpoint-<seq>.ckpt, fsync the dir   [renamed]
//   3. caller rotates/truncates the journal             [truncated]
//   4. delete older checkpoint files (best effort)
// A crash at any point leaves either the previous checkpoint intact (the
// tmp file is ignored at load), or both -- load takes the newest file
// whose CRC validates and falls back to older ones otherwise. The
// bracketed fault points (persist/fault.hpp) let tests kill the writer in
// each gap.
//
// Payload (one CRC32 frame, same framing as the journal):
//   u32 magic 'DVCP' | u8 version | u64 seq | str policy_name
//   | blob dispatcher_state | blob policy_state | blob extra
// `extra` is owned by the caller: empty for the serial dispatcher; the
// sharded service stores its job-table slice and router state there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/journal.hpp"

namespace dvbp::persist {

struct CheckpointData {
  /// Journal sequence number this checkpoint covers: every op with
  /// seq <= checkpoint seq is folded into the state blobs.
  std::uint64_t seq = 0;
  std::string policy_name;  ///< refuses to restore into a different policy
  std::vector<std::uint8_t> dispatcher_state;
  std::vector<std::uint8_t> policy_state;
  std::vector<std::uint8_t> extra;  ///< caller-defined (sharded metadata)
};

/// Durably writes `data` as checkpoint-<seq>.ckpt under `dir` (created if
/// missing) using the tmp+fsync+rename protocol above, then deletes older
/// checkpoint files. Does NOT touch the journal -- callers rotate the
/// journal writer after this returns. Throws PersistError on I/O failure.
void write_checkpoint(const std::string& dir, const CheckpointData& data);

/// Loads the newest checkpoint file under `dir` that parses and passes its
/// CRC, silently skipping invalid/torn ones (a crash mid-step-1 leaves at
/// worst an ignorable tmp file). Returns nullopt when no valid checkpoint
/// exists. Throws PersistError only for I/O errors.
std::optional<CheckpointData> load_newest_checkpoint(const std::string& dir);

/// The checkpoint files under `dir`, oldest first (tests / inspection).
std::vector<std::string> checkpoint_files(const std::string& dir);

}  // namespace dvbp::persist
