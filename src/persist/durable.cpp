#include "persist/durable.hpp"

#include <utility>

#include "core/serial.hpp"
#include "persist/checkpoint.hpp"
#include "persist/fault.hpp"

namespace dvbp::persist {

DurableDispatcher::DurableDispatcher(std::size_t dim, Policy& policy,
                                     DurableOptions options,
                                     double bin_capacity)
    : policy_(policy), options_(std::move(options)),
      dispatcher_(dim, policy, bin_capacity, options_.observer) {
  policy_.reset();
  // Install the usage hook before replay: recovery is a re-run of history,
  // and per-tenant accounting has to see that history too.
  if (options_.usage_hook != nullptr) {
    dispatcher_.set_usage_hook(options_.usage_hook);
  }
  RecoveryManager manager(options_.dir, options_.metrics);
  recovery_ = manager.recover_dispatcher(dispatcher_, policy_);
  JournalOptions jopts;
  jopts.fsync = options_.fsync;
  jopts.fsync_interval_ops = options_.fsync_interval_ops;
  jopts.metrics = options_.metrics;
  writer_ = std::make_unique<JournalWriter>(options_.dir,
                                            recovery_.next_seq, jopts);
  if (options_.metrics != nullptr) {
    checkpoints_total_ =
        &options_.metrics->counter("dvbp.persist.checkpoints_total");
  }
}

Dispatcher::Admission DurableDispatcher::arrive(Time now, RVec size,
                                                Time expected_departure,
                                                TenantId tenant) {
  // Apply first: a rejected op (throws here) must never reach the journal.
  const auto admission =
      dispatcher_.arrive(now, size, expected_departure, tenant);
  writer_->append(OpKind::kArrive, now, admission.job, expected_departure,
                  &size, kNoBin, false, tenant);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
  return admission;
}

void DurableDispatcher::depart(Time now, JobId job) {
  dispatcher_.depart(now, job);
  writer_->append(OpKind::kDepart, now, job);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
}

void DurableDispatcher::advance(Time now) {
  writer_->append(OpKind::kAdvance, now, 0);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
}

Dispatcher::Eviction DurableDispatcher::evict(Time now, JobId job) {
  const auto eviction = dispatcher_.evict(now, job);
  writer_->append(OpKind::kEvict, now, job);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
  return eviction;
}

BinId DurableDispatcher::replace(Time now, JobId job, BinId target) {
  const bool new_bin = target == kNoBin;
  const BinId bin = dispatcher_.replace(now, job, target);
  writer_->append(OpKind::kReplace, now, job, 0.0, nullptr, bin, new_bin);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
  return bin;
}

MigrationExec DurableDispatcher::migration_exec() {
  return MigrationExec{
      [this](Time t, JobId j) { evict(t, j); },
      [this](Time t, JobId j, BinId b) { return replace(t, j, b); }};
}

void DurableDispatcher::settle_credits(
    Time now, const std::vector<std::uint8_t>& credit_state) {
  writer_->append_credits(now, credit_state);
  writer_->commit();
  ++ops_since_checkpoint_;
  maybe_checkpoint();
}

void DurableDispatcher::maybe_checkpoint() {
  if (options_.checkpoint_every == 0) return;
  if (ops_since_checkpoint_ >= options_.checkpoint_every) checkpoint();
}

void DurableDispatcher::checkpoint() {
  if (ops_since_checkpoint_ == 0) return;
  // The checkpoint must never claim ops the journal could still lose, so
  // force everything durable first.
  writer_->sync();
  CheckpointData data;
  data.seq = writer_->next_seq() - 1;
  data.policy_name = std::string(policy_.name());
  serial::Writer disp_out;
  dispatcher_.save_state(disp_out);
  data.dispatcher_state = disp_out.take();
  serial::Writer pol_out;
  policy_.save_state(pol_out);
  data.policy_state = pol_out.take();
  if (options_.save_extra) data.extra = options_.save_extra();
  write_checkpoint(options_.dir, data);
  writer_->rotate();
  fault_point("checkpoint.truncated");
  ops_since_checkpoint_ = 0;
  if (checkpoints_total_ != nullptr) checkpoints_total_->inc();
}

}  // namespace dvbp::persist
