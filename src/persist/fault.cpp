#include "persist/fault.hpp"

#include <atomic>
#include <memory>
#include <mutex>

namespace dvbp::persist {

namespace {

// The hook is read from shard workers while tests install it from the main
// thread before workers start; the armed flag keeps the no-hook hot path
// at a single relaxed load.
std::mutex hook_mu;
std::shared_ptr<const FaultHook> hook;  // guarded by hook_mu
std::atomic<bool> armed{false};

}  // namespace

void set_fault_hook(FaultHook h) {
  std::lock_guard<std::mutex> lock(hook_mu);
  hook = std::make_shared<const FaultHook>(std::move(h));
  armed.store(true, std::memory_order_release);
}

void clear_fault_hook() {
  std::lock_guard<std::mutex> lock(hook_mu);
  hook.reset();
  armed.store(false, std::memory_order_release);
}

void fault_point(std::string_view name) {
  if (!armed.load(std::memory_order_acquire)) return;
  std::shared_ptr<const FaultHook> h;
  {
    std::lock_guard<std::mutex> lock(hook_mu);
    h = hook;
  }
  if (h && *h) (*h)(name);
}

}  // namespace dvbp::persist
