// Crash recovery: checkpoint load + journal replay.
//
// RecoveryManager stitches the other persist pieces into the startup
// sequence a durable dispatcher runs before accepting traffic:
//
//   1. scan_journal(): read every valid frame; detect the torn tail a
//      crash mid-commit leaves behind.
//   2. truncate_torn_tail(): cut the invalid bytes so the reopened writer
//      appends after the last valid frame (never buries garbage).
//   3. load_newest_checkpoint(): restore dispatcher + policy state from
//      the newest valid checkpoint, if any (falling back past corrupt
//      ones).
//   4. Replay journal frames with seq > checkpoint seq through the REAL
//      dispatcher/policy code -- not a parallel reimplementation -- so the
//      recovered packing is bit-identical to the pre-crash one (pinned by
//      tests/test_persist_recovery.cpp).
//
// The generic run() takes restore/replay callbacks so the sharded service
// can map the journal's global job ids onto shard-local ones;
// recover_dispatcher() is the ready-made serial binding.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"

namespace dvbp {
class Dispatcher;  // core/dispatcher.hpp
class Policy;      // core/policies/policy.hpp
}  // namespace dvbp

namespace dvbp::persist {

struct RecoveryReport {
  bool had_checkpoint = false;
  std::uint64_t checkpoint_seq = 0;  ///< 0 when !had_checkpoint
  std::uint64_t replayed_ops = 0;    ///< frames applied after the checkpoint
  /// Highest sequence number folded into the recovered state (checkpoint
  /// or replay); 0 for a cold start on an empty directory.
  std::uint64_t last_seq = 0;
  /// Sequence number the reopened JournalWriter must continue from.
  std::uint64_t next_seq = 1;
  bool torn_tail = false;  ///< a partial/corrupt tail was found + truncated
  std::uint64_t tail_bytes_discarded = 0;
  /// The checkpoint's caller-owned blob (sharded job-table slice / router
  /// state); empty without a checkpoint.
  std::vector<std::uint8_t> extra;
  /// Blob of the LAST kTenantCredits frame replayed (empty when none):
  /// the newest durably settled arbiter state. The caller feeds it to
  /// tenancy::Arbiter::restore_state; settlements after this frame were
  /// lost with the crash, exactly like any uncommitted op.
  std::vector<std::uint8_t> tenant_credits;
};

class RecoveryManager {
 public:
  /// `metrics` (borrowed, nullable) receives dvbp.persist.recovery_ms,
  /// dvbp.persist.replayed_ops_total, dvbp.persist.torn_tail_bytes_total.
  explicit RecoveryManager(std::string dir,
                           obs::MetricRegistry* metrics = nullptr)
      : dir_(std::move(dir)), metrics_(metrics) {}

  /// Generic recovery. `restore` is invoked at most once, with the loaded
  /// checkpoint, before any replay; `replay` once per journal frame with
  /// seq > the checkpoint's. Either callback may throw (e.g. policy-name
  /// mismatch) -- the exception propagates. Missing directory == cold
  /// start: returns a default report with next_seq == 1.
  RecoveryReport run(
      const std::function<void(const CheckpointData&)>& restore,
      const std::function<void(const JournalRecord&)>& replay);

  /// Serial binding: restores `dispatcher` (freshly constructed) and
  /// `policy` (matched by Policy::name() against the checkpoint, throws
  /// PersistError on mismatch), then replays arrive/depart frames through
  /// them, verifying each replayed arrival lands on the journaled JobId.
  RecoveryReport recover_dispatcher(Dispatcher& dispatcher, Policy& policy);

 private:
  std::string dir_;
  obs::MetricRegistry* metrics_;
};

}  // namespace dvbp::persist
