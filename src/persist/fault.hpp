// Fault-injection hook for crash-recovery testing.
//
// The durability code (journal commit, checkpoint write/rename/truncate)
// calls fault_point("<name>") at every state transition whose interruption
// a real crash could expose: mid-frame, mid-batch, after the checkpoint is
// renamed but before the journal is truncated, and so on. Production runs
// pay one relaxed atomic load per call; tests install a hook that throws
// FaultInjected at a chosen point, which the writers treat exactly like a
// process death at that instant -- buffered bytes are lost, partially
// written bytes stay on disk, and nothing downstream of the fault runs.
//
// The registered fault points (see docs/DURABILITY.md):
//   journal.commit.begin      nothing of this commit is on disk yet
//   journal.commit.torn       a prefix of the batch's bytes has been
//                             written -- the torn-write case
//   journal.commit.written    all bytes written, fsync not yet issued
//   journal.commit.synced     fully durable
//   checkpoint.tmp_written    tmp file complete, rename not yet issued
//   checkpoint.renamed        checkpoint durable, journal not yet truncated
//   checkpoint.truncated      old journal segments deleted
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dvbp::persist {

/// Thrown by test hooks to simulate a crash at a fault point. The persist
/// writers let it propagate without cleanup (a crashed process runs no
/// cleanup either).
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(std::string_view point)
      : std::runtime_error("fault injected at " + std::string(point)),
        point_(point) {}

  const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

using FaultHook = std::function<void(std::string_view point)>;

/// Installs a process-global hook invoked at every fault point. Test-only;
/// not thread-safe against concurrent set/clear (install before starting
/// workers). The hook itself may be called from several shard workers at
/// once and must be internally synchronized if it keeps state.
void set_fault_hook(FaultHook hook);
void clear_fault_hook();

/// Invokes the installed hook, if any. Hot-path cost when no hook is
/// installed: one relaxed atomic load.
void fault_point(std::string_view name);

}  // namespace dvbp::persist
