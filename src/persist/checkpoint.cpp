#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/serial.hpp"
#include "persist/fault.hpp"

namespace dvbp::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x44564350;  // 'DVCP'
// v2: Dispatcher::save_state gained the per-job last-bin/evicted table
// (migration support). v1 checkpoints are rejected, not misparsed.
// v3: items carry tenant ids (src/tenancy/). The dispatcher blob is
// self-describing (Dispatcher::restore_state reads an in-band marker), so
// v2 checkpoints still load -- their items restore as anonymous.
constexpr std::uint8_t kVersion = 3;
constexpr std::uint8_t kOldestReadableVersion = 2;

std::string checkpoint_name(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016llx.ckpt",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<std::uint64_t> parse_checkpoint_name(const std::string& name) {
  constexpr std::string_view prefix = "checkpoint-";
  constexpr std::string_view suffix = ".ckpt";
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
      0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    seq <<= 4;
    if (c >= '0' && c <= '9') {
      seq |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      seq |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return seq;
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto seq = parse_checkpoint_name(entry.path().filename().string());
    if (seq) out.emplace_back(*seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    throw PersistError("checkpoint: cannot open '" + path +
                       "' for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw PersistError("checkpoint: fsync of '" + path +
                       "' failed: " + std::strerror(errno));
  }
}

/// Parses one checkpoint file; nullopt when it is torn or corrupt.
std::optional<CheckpointData> parse_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad() || bytes.size() < 8) return std::nullopt;
  try {
    serial::Reader header(bytes.data(), 8);
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    if (bytes.size() - 8 != len) return std::nullopt;
    const std::uint8_t* payload = bytes.data() + 8;
    if (serial::crc32(payload, len) != crc) return std::nullopt;
    serial::Reader body(payload, len);
    if (body.u32() != kMagic) return std::nullopt;
    const std::uint8_t version = body.u8();
    if (version < kOldestReadableVersion || version > kVersion) {
      return std::nullopt;
    }
    CheckpointData data;
    data.seq = body.u64();
    data.policy_name = body.str();
    data.dispatcher_state = body.blob();
    data.policy_state = body.blob();
    data.extra = body.blob();
    if (!body.done()) return std::nullopt;
    return data;
  } catch (const serial::SerialError&) {
    return std::nullopt;
  }
}

}  // namespace

void write_checkpoint(const std::string& dir, const CheckpointData& data) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw PersistError("checkpoint: cannot create directory '" + dir +
                       "': " + ec.message());
  }

  serial::Writer body;
  body.u32(kMagic);
  body.u8(kVersion);
  body.u64(data.seq);
  body.str(data.policy_name);
  body.blob(data.dispatcher_state);
  body.blob(data.policy_state);
  body.blob(data.extra);
  serial::Writer header;
  header.u32(static_cast<std::uint32_t>(body.size()));
  header.u32(serial::crc32(body.bytes()));

  const std::string final_path =
      (fs::path(dir) / checkpoint_name(data.seq)).string();
  const std::string tmp_path = final_path + ".tmp";

  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw PersistError("checkpoint: cannot create '" + tmp_path +
                       "': " + std::strerror(errno));
  }
  auto write_all = [&](const std::uint8_t* p, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, p + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        throw PersistError("checkpoint: write to '" + tmp_path +
                           "' failed: " + std::strerror(saved));
      }
      off += static_cast<std::size_t>(w);
    }
  };
  write_all(header.bytes().data(), header.size());
  write_all(body.bytes().data(), body.size());
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw PersistError("checkpoint: fsync of '" + tmp_path +
                       "' failed: " + std::strerror(saved));
  }
  ::close(fd);
  fault_point("checkpoint.tmp_written");

  std::error_code rename_ec;
  fs::rename(tmp_path, final_path, rename_ec);
  if (rename_ec) {
    throw PersistError("checkpoint: rename to '" + final_path +
                       "' failed: " + rename_ec.message());
  }
  fsync_path(dir, /*directory=*/true);
  fault_point("checkpoint.renamed");

  // GC: older checkpoints are superseded; best effort, a crash here only
  // leaves extra files that load_newest_checkpoint() ignores.
  for (const auto& [seq, path] : list_checkpoints(dir)) {
    if (seq < data.seq) {
      std::error_code rm_ec;
      fs::remove(path, rm_ec);
    }
  }
}

std::optional<CheckpointData> load_newest_checkpoint(const std::string& dir) {
  auto files = list_checkpoints(dir);
  // Newest first; fall back past torn/corrupt files (e.g. a crash while
  // overwriting nothing -- rename is atomic -- or manual tampering).
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    if (auto data = parse_checkpoint(it->second)) return data;
  }
  return std::nullopt;
}

std::vector<std::string> checkpoint_files(const std::string& dir) {
  std::vector<std::string> out;
  for (auto& [seq, path] : list_checkpoints(dir)) out.push_back(path);
  return out;
}

}  // namespace dvbp::persist
