// Write-ahead journal for the placement service (docs/DURABILITY.md).
//
// Every mutation the dispatcher applies (arrive / depart / advance) is
// first encoded as one CRC32-framed, length-prefixed binary frame and
// appended to a journal segment; recovery replays the frames through the
// real policy code to rebuild the exact pre-crash packing. Frames carry
// per-journal sequence numbers, so replay after a checkpoint skips the
// prefix the checkpoint already covers.
//
// Frame layout (little-endian):
//   u32 payload_len | u32 crc32(payload) | payload
// Payload:
//   u64 seq | u8 kind | f64 time | u64 job
//   kind == kArrive: f64 expected_departure | u32 dim | dim x f64 size
//                    [ u32 tenant ]   (trailing, only when a tenant label
//                                      was given -- old frames stop at the
//                                      size vector and still parse)
//   kind == kReplace: u32 bin | u8 new_bin
//   kind == kTenantCredits: u32 blob_len | blob_len bytes (opaque credit
//                           state, tenancy::Arbiter::state_bytes)
//
// Torn-write semantics: a frame is either wholly valid (length sane, CRC
// matches) or it -- and everything after it -- is discarded at recovery.
// The writer never reuses a file region, so the only invalid bytes a crash
// can leave are a contiguous tail.
//
// Group commit: append() only buffers; commit() writes the whole batch
// with one write(2) and applies the fsync policy. A shard worker appends
// its entire drained batch and commits once -- one syscall (and at most
// one fsync) per batch, not per op.
//
// Segments: the active file is journal-<first_seq>.wal (16 hex digits).
// A checkpoint at sequence S rotates to journal-<S+1>.wal and deletes the
// older segments, whose frames the checkpoint supersedes. Recovery reads
// the surviving segments in sequence order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"

namespace dvbp::persist {

/// Thrown on journal/checkpoint I/O failures and unrecoverable format
/// errors (a torn *tail* is not an error -- see JournalScan).
class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what)
      : std::runtime_error(what) {}
};

/// When the journal file is fsync'd relative to commits.
enum class FsyncPolicy : std::uint8_t {
  kAlways,    ///< fsync on every commit: durable to the last applied op
  kInterval,  ///< fsync every `fsync_interval_ops` journaled ops
  kNone,      ///< never fsync: durable only through the page cache
};

/// Parses "always" | "interval" | "none" (the harness CLI spelling).
/// Throws std::invalid_argument for anything else.
FsyncPolicy parse_fsync_policy(std::string_view name);
std::string_view fsync_policy_name(FsyncPolicy policy) noexcept;

enum class OpKind : std::uint8_t {
  kArrive = 1,
  kDepart = 2,
  kAdvance = 3,  ///< clock advance with no placement mutation
  kEvict = 4,    ///< migration: job removed from its bin, left in limbo
  kReplace = 5,  ///< migration: evicted job re-placed (records the bin)
  /// Crash-safe tenant-credit settlement: the full arbiter state as an
  /// opaque blob. Replay restores the last such frame instead of
  /// re-deriving settlements (the usage integrals between frames are
  /// rebuilt by replaying the surrounding arrive/depart ops).
  kTenantCredits = 6,
};

/// One journaled operation. `time` and `expected_departure` are the exact
/// arguments the dispatcher was (or will be, on replay) called with --
/// any front-end clamping happens before journaling, so replay passes the
/// values verbatim and reproduces the run bit-exactly.
struct JournalRecord {
  std::uint64_t seq = 0;
  OpKind kind = OpKind::kArrive;
  Time time = 0.0;
  std::uint64_t job = 0;  ///< service job id (kArrive/kDepart/kEvict/kReplace)
  Time expected_departure = 0.0;  ///< kArrive only
  RVec size;                      ///< kArrive only
  TenantId tenant = kNoTenant;    ///< kArrive only: tenant label (optional
                                  ///< trailing field; kNoTenant if absent)
  BinId bin = kNoBin;     ///< kReplace only: bin the job landed in
  bool new_bin = false;   ///< kReplace only: that bin was freshly opened
  std::vector<std::uint8_t> blob;  ///< kTenantCredits only: arbiter state
};

/// Encodes `rec` as one frame (header + payload) appended to `out`.
void encode_frame(const JournalRecord& rec, std::vector<std::uint8_t>& out);

/// Result of scanning a journal directory.
struct JournalScan {
  std::vector<JournalRecord> records;  ///< valid frames, sequence order
  bool torn_tail = false;        ///< invalid/partial bytes followed the
                                 ///< last valid frame
  std::uint64_t tail_bytes_discarded = 0;  ///< size of that invalid tail
  std::string tail_segment;      ///< segment holding the invalid tail
  std::uint64_t tail_valid_bytes = 0;  ///< valid prefix of that segment
};

/// Reads every journal segment under `dir` (created by JournalWriter),
/// stopping cleanly at the first invalid frame: a short header, an
/// implausible length, a CRC mismatch, or a malformed payload all mark the
/// torn tail. Frames after the tear -- even if they would parse -- are
/// never returned (standard WAL torn-tail semantics). Throws PersistError
/// only for I/O errors.
JournalScan scan_journal(const std::string& dir);

/// Truncates the torn tail `scan` found, so a writer can append to the
/// segment again without burying garbage between valid frames. No-op when
/// the scan found no tear.
void truncate_torn_tail(const JournalScan& scan);

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  /// kInterval: at most this many journaled ops between fsyncs. The fsync
  /// itself runs on a background flusher thread (group commit), so the
  /// committing thread never blocks on the device flush; the loss window
  /// stays bounded by this count plus one in-flight flush.
  std::size_t fsync_interval_ops = 256;
  /// Borrowed, nullable; feeds dvbp.persist.journal_bytes_total,
  /// dvbp.persist.journal_commits_total, dvbp.persist.fsyncs_total.
  obs::MetricRegistry* metrics = nullptr;
};

/// Appender over the active segment of a journal directory. The public
/// API is not thread-safe: each owner (the serial DurableDispatcher, one
/// shard worker) has its own journal directory and writer. Under
/// FsyncPolicy::kInterval the writer runs a private background flusher
/// thread that fsyncs every `fsync_interval_ops` committed ops, so
/// commit() returns after write(2) and the device flush overlaps with the
/// owner's placement work; a flusher failure poisons the writer at the
/// next public call.
class JournalWriter {
 public:
  /// Opens the newest existing segment for append (call after
  /// scan_journal + truncate_torn_tail), or starts journal-<next_seq>.wal
  /// in a fresh/emptied directory. Creates `dir` if missing.
  JournalWriter(std::string dir, std::uint64_t next_seq,
                JournalOptions options);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Buffers one record (assigning it the next sequence number) for the
  /// next commit(). Returns the assigned sequence number.
  std::uint64_t append(OpKind kind, Time time, std::uint64_t job,
                       Time expected_departure = 0.0,
                       const RVec* size = nullptr, BinId bin = kNoBin,
                       bool new_bin = false,
                       TenantId tenant = kNoTenant);

  /// Buffers one kTenantCredits frame carrying `blob` (opaque arbiter
  /// state) for the next commit(). Returns the assigned sequence number.
  std::uint64_t append_credits(Time time,
                               const std::vector<std::uint8_t>& blob);

  /// Writes every buffered frame with one write(2), then fsyncs per the
  /// policy. Throws PersistError on I/O failure -- after which the writer
  /// is poisoned (every later append/commit throws) so a torn tail is
  /// never buried under newer frames.
  void commit();

  /// Starts segment journal-<next_seq()>.wal and deletes the superseded
  /// older segments. Called by the checkpoint path after the checkpoint
  /// file is durably in place; fault points cover the gap.
  void rotate();

  /// Sequence number the next append() will be assigned.
  std::uint64_t next_seq() const noexcept { return next_seq_; }
  std::uint64_t pending_ops() const noexcept { return pending_ops_; }

  /// Forces an fsync regardless of policy (used before a checkpoint so the
  /// checkpoint never claims ops the journal might still lose).
  void sync();

 private:
  void open_segment(bool create_new);
  void poison(const std::string& why);
  void flusher_main();
  /// With flush_mu_ held: waits out any in-flight background fsync and
  /// rethrows a flusher failure as a poisoning PersistError.
  void await_flusher(std::unique_lock<std::mutex>& lock);

  std::string dir_;
  std::uint64_t next_seq_;
  JournalOptions options_;
  int fd_ = -1;
  std::uint64_t segment_first_seq_ = 0;
  std::vector<std::uint8_t> pending_;
  std::size_t pending_ops_ = 0;
  bool poisoned_ = false;

  // Background group-commit flusher (kInterval only; see class comment).
  std::thread flusher_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::size_t unsynced_ops_ = 0;
  bool flush_in_flight_ = false;
  bool flusher_stop_ = false;
  bool flush_failed_ = false;
  std::string flush_error_;

  obs::Counter* bytes_total_ = nullptr;
  obs::Counter* commits_total_ = nullptr;
  obs::Counter* fsyncs_total_ = nullptr;
};

/// The journal segment files under `dir`, sequence order (for tests and
/// the checkpoint GC).
std::vector<std::string> journal_segments(const std::string& dir);

}  // namespace dvbp::persist
