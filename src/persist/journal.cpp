#include "persist/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/serial.hpp"
#include "persist/fault.hpp"

namespace dvbp::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
/// A frame is one op: header fields + one RVec. Anything claiming more
/// than this is corruption, not a record.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

std::string segment_name(std::uint64_t first_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "journal-%016llx.wal",
                static_cast<unsigned long long>(first_seq));
  return buf;
}

/// first_seq from a segment filename, or nullopt for non-segment files.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  constexpr std::string_view prefix = "journal-";
  constexpr std::string_view suffix = ".wal";
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
      0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    seq <<= 4;
    if (c >= '0' && c <= '9') {
      seq |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      seq |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return seq;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto seq = parse_segment_name(entry.path().filename().string());
    if (seq) out.emplace_back(*seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw PersistError("journal: write to '" + path +
                         "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Parses one frame at `pos`. Returns false (without touching `rec`) when
/// the bytes at `pos` are not a wholly valid frame -- the torn-tail case.
bool parse_frame(const std::vector<std::uint8_t>& bytes, std::size_t pos,
                 std::uint64_t expected_seq, JournalRecord& rec,
                 std::size_t& frame_len) {
  if (bytes.size() - pos < kFrameHeaderBytes) return false;
  serial::Reader header(bytes.data() + pos, kFrameHeaderBytes);
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  if (len > kMaxPayloadBytes) return false;
  if (bytes.size() - pos - kFrameHeaderBytes < len) return false;
  const std::uint8_t* payload = bytes.data() + pos + kFrameHeaderBytes;
  if (serial::crc32(payload, len) != crc) return false;
  try {
    serial::Reader in(payload, len);
    rec.seq = in.u64();
    const std::uint8_t kind = in.u8();
    if (kind < 1 || kind > 6) return false;
    rec.kind = static_cast<OpKind>(kind);
    rec.time = in.f64();
    rec.job = in.u64();
    rec.expected_departure = 0.0;
    rec.size = RVec();
    rec.tenant = kNoTenant;
    rec.bin = kNoBin;
    rec.new_bin = false;
    rec.blob.clear();
    if (rec.kind == OpKind::kArrive) {
      rec.expected_departure = in.f64();
      const std::uint32_t dim = in.u32();
      if (dim == 0 || dim > 1024) return false;
      RVec size(dim);
      for (std::uint32_t j = 0; j < dim; ++j) size[j] = in.f64();
      rec.size = std::move(size);
      // Optional trailing tenant label: frames written before the tenancy
      // layer (or for unlabeled jobs) simply end here.
      if (!in.done()) rec.tenant = in.u32();
    } else if (rec.kind == OpKind::kReplace) {
      rec.bin = in.u32();
      rec.new_bin = in.u8() != 0;
    } else if (rec.kind == OpKind::kTenantCredits) {
      rec.blob = in.blob();
    }
    if (!in.done()) return false;
  } catch (const serial::SerialError&) {
    return false;
  }
  // Sequence discontinuity: a stale or misnamed segment, treated like
  // corruption so replay never applies ops out of order.
  if (rec.seq != expected_seq) return false;
  frame_len = kFrameHeaderBytes + len;
  return true;
}

}  // namespace

FsyncPolicy parse_fsync_policy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "none") return FsyncPolicy::kNone;
  throw std::invalid_argument("parse_fsync_policy: unknown policy '" +
                              std::string(name) +
                              "' (expected always | interval | none)");
}

std::string_view fsync_policy_name(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNone: return "none";
  }
  return "unknown";
}

void encode_frame(const JournalRecord& rec, std::vector<std::uint8_t>& out) {
  serial::Writer payload;
  payload.u64(rec.seq);
  payload.u8(static_cast<std::uint8_t>(rec.kind));
  payload.f64(rec.time);
  payload.u64(rec.job);
  if (rec.kind == OpKind::kArrive) {
    payload.f64(rec.expected_departure);
    payload.u32(static_cast<std::uint32_t>(rec.size.dim()));
    for (double c : rec.size) payload.f64(c);
    // Trailing tenant label only when one was given: unlabeled frames stay
    // byte-identical to the pre-tenancy format.
    if (rec.tenant != kNoTenant) payload.u32(rec.tenant);
  } else if (rec.kind == OpKind::kReplace) {
    payload.u32(rec.bin);
    payload.u8(rec.new_bin ? 1 : 0);
  } else if (rec.kind == OpKind::kTenantCredits) {
    payload.blob(rec.blob);
  }
  serial::Writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(serial::crc32(payload.bytes()));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
}

JournalScan scan_journal(const std::string& dir) {
  JournalScan scan;
  std::uint64_t expected_seq = 0;  // 0: accept the first segment's start
  for (const auto& [first_seq, path] : list_segments(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw PersistError("journal: cannot open '" + path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) throw PersistError("journal: read of '" + path +
                                     "' failed");
    if (expected_seq == 0) expected_seq = first_seq;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      JournalRecord rec;
      std::size_t frame_len = 0;
      if (!parse_frame(bytes, pos, expected_seq, rec, frame_len)) {
        scan.torn_tail = true;
        scan.tail_bytes_discarded = bytes.size() - pos;
        scan.tail_segment = path;
        scan.tail_valid_bytes = pos;
        return scan;  // frames past a tear are never trusted
      }
      scan.records.push_back(std::move(rec));
      pos += frame_len;
      ++expected_seq;
    }
  }
  return scan;
}

void truncate_torn_tail(const JournalScan& scan) {
  if (!scan.torn_tail) return;
  if (::truncate(scan.tail_segment.c_str(),
                 static_cast<off_t>(scan.tail_valid_bytes)) != 0) {
    throw PersistError("journal: truncate of '" + scan.tail_segment +
                       "' failed: " + std::strerror(errno));
  }
}

std::vector<std::string> journal_segments(const std::string& dir) {
  std::vector<std::string> out;
  for (auto& [seq, path] : list_segments(dir)) out.push_back(path);
  return out;
}

JournalWriter::JournalWriter(std::string dir, std::uint64_t next_seq,
                             JournalOptions options)
    : dir_(std::move(dir)), next_seq_(next_seq),
      options_(std::move(options)) {
  if (next_seq_ == 0) {
    throw std::invalid_argument("JournalWriter: sequence numbers are "
                                "1-based");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw PersistError("journal: cannot create directory '" + dir_ +
                       "': " + ec.message());
  }
  if (options_.metrics != nullptr) {
    bytes_total_ =
        &options_.metrics->counter("dvbp.persist.journal_bytes_total");
    commits_total_ =
        &options_.metrics->counter("dvbp.persist.journal_commits_total");
    fsyncs_total_ = &options_.metrics->counter("dvbp.persist.fsyncs_total");
  }
  open_segment(/*create_new=*/list_segments(dir_).empty());
  if (options_.fsync == FsyncPolicy::kInterval) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

JournalWriter::~JournalWriter() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flusher_stop_ = true;
    }
    flush_cv_.notify_all();
    flusher_.join();
  }
  // Buffered (uncommitted) frames are dropped deliberately: only commit()
  // makes ops durable, exactly like a crash would. Unflushed-but-written
  // frames are likewise left to the page cache -- the interval contract.
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::flusher_main() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    flush_cv_.wait(lock, [&] {
      return flusher_stop_ ||
             unsynced_ops_ >= options_.fsync_interval_ops;
    });
    if (flusher_stop_) return;
    const std::size_t batch = unsynced_ops_;
    const int fd = fd_;
    flush_in_flight_ = true;
    lock.unlock();
    // The device flush runs with the lock released: the owner keeps
    // committing (and placing jobs) while the flush is in flight. fsync
    // concurrent with write(2) on the same fd is safe; the flush simply
    // covers whatever had been written when it reached the device.
    const bool ok = ::fsync(fd) == 0;
    const int err = ok ? 0 : errno;
    lock.lock();
    flush_in_flight_ = false;
    if (!ok) {
      flush_failed_ = true;
      flush_error_ = "journal: background fsync failed: " +
                     std::string(std::strerror(err));
      flush_cv_.notify_all();
      return;
    }
    unsynced_ops_ -= batch;
    if (fsyncs_total_ != nullptr) fsyncs_total_->inc();
    flush_cv_.notify_all();
  }
}

void JournalWriter::await_flusher(std::unique_lock<std::mutex>& lock) {
  flush_cv_.wait(lock, [&] { return !flush_in_flight_; });
  if (flush_failed_) {
    poisoned_ = true;
    throw PersistError(flush_error_);
  }
}

void JournalWriter::open_segment(bool create_new) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (create_new) {
    segment_first_seq_ = next_seq_;
  } else {
    const auto segments = list_segments(dir_);
    segment_first_seq_ = segments.back().first;
  }
  const std::string path =
      (fs::path(dir_) / segment_name(segment_first_seq_)).string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw PersistError("journal: cannot open '" + path +
                       "': " + std::strerror(errno));
  }
}

void JournalWriter::poison(const std::string& why) {
  poisoned_ = true;
  throw PersistError(why);
}

std::uint64_t JournalWriter::append(OpKind kind, Time time,
                                    std::uint64_t job,
                                    Time expected_departure,
                                    const RVec* size, BinId bin,
                                    bool new_bin, TenantId tenant) {
  if (poisoned_) {
    throw PersistError("journal: writer poisoned by an earlier failure");
  }
  JournalRecord rec;
  rec.seq = next_seq_++;
  rec.kind = kind;
  rec.time = time;
  rec.job = job;
  if (kind == OpKind::kArrive) {
    if (size == nullptr) {
      throw std::invalid_argument("journal: arrive record requires a size");
    }
    rec.expected_departure = expected_departure;
    rec.size = *size;
    rec.tenant = tenant;
  } else if (kind == OpKind::kReplace) {
    rec.bin = bin;
    rec.new_bin = new_bin;
  }
  encode_frame(rec, pending_);
  ++pending_ops_;
  return rec.seq;
}

std::uint64_t JournalWriter::append_credits(
    Time time, const std::vector<std::uint8_t>& blob) {
  if (poisoned_) {
    throw PersistError("journal: writer poisoned by an earlier failure");
  }
  JournalRecord rec;
  rec.seq = next_seq_++;
  rec.kind = OpKind::kTenantCredits;
  rec.time = time;
  rec.blob = blob;
  encode_frame(rec, pending_);
  ++pending_ops_;
  return rec.seq;
}

void JournalWriter::commit() {
  if (poisoned_) {
    throw PersistError("journal: writer poisoned by an earlier failure");
  }
  if (pending_.empty()) return;
  // Poison-on-entry, un-poison on success: if anything below throws
  // (I/O failure or an injected fault), the writer refuses further work --
  // a torn tail must never be buried under newer frames.
  poisoned_ = true;
  const std::string path =
      (fs::path(dir_) / segment_name(segment_first_seq_)).string();
  fault_point("journal.commit.begin");
  // Two-chunk write so the journal.commit.torn fault point leaves a real
  // partial frame on disk, the way an interrupted write(2) would.
  const std::size_t first_chunk =
      pending_.size() > 16 ? pending_.size() / 2 : pending_.size();
  write_all(fd_, pending_.data(), first_chunk, path);
  fault_point("journal.commit.torn");
  if (first_chunk < pending_.size()) {
    write_all(fd_, pending_.data() + first_chunk,
              pending_.size() - first_chunk, path);
  }
  fault_point("journal.commit.written");
  if (bytes_total_ != nullptr) {
    bytes_total_->inc(pending_.size());
  }
  if (commits_total_ != nullptr) commits_total_->inc();
  if (options_.fsync == FsyncPolicy::kAlways) {
    if (::fsync(fd_) != 0) {
      throw PersistError("journal: fsync of '" + path +
                         "' failed: " + std::strerror(errno));
    }
    if (fsyncs_total_ != nullptr) fsyncs_total_->inc();
  } else if (options_.fsync == FsyncPolicy::kInterval) {
    // Group commit: hand the flush to the background flusher and return.
    // A flusher failure surfaces (and poisons) here on the next commit.
    std::lock_guard<std::mutex> lock(flush_mu_);
    if (flush_failed_) throw PersistError(flush_error_);
    unsynced_ops_ += pending_ops_;
    if (unsynced_ops_ >= options_.fsync_interval_ops) {
      flush_cv_.notify_all();
    }
  }
  fault_point("journal.commit.synced");
  pending_.clear();
  pending_ops_ = 0;
  poisoned_ = false;
}

void JournalWriter::sync() {
  if (poisoned_) {
    throw PersistError("journal: writer poisoned by an earlier failure");
  }
  commit();
  if (options_.fsync == FsyncPolicy::kNone) return;
  poisoned_ = true;
  if (options_.fsync == FsyncPolicy::kInterval) {
    // Drain the background flusher, then flush inline so that on return
    // every committed frame is durable regardless of interval position.
    std::unique_lock<std::mutex> lock(flush_mu_);
    await_flusher(lock);
    if (::fsync(fd_) != 0) {
      throw PersistError("journal: fsync failed: " +
                         std::string(std::strerror(errno)));
    }
    unsynced_ops_ = 0;
    if (fsyncs_total_ != nullptr) fsyncs_total_->inc();
  } else {
    if (::fsync(fd_) != 0) {
      throw PersistError("journal: fsync failed: " +
                         std::string(std::strerror(errno)));
    }
    if (fsyncs_total_ != nullptr) fsyncs_total_->inc();
  }
  poisoned_ = false;
}

void JournalWriter::rotate() {
  if (poisoned_) {
    throw PersistError("journal: writer poisoned by an earlier failure");
  }
  if (!pending_.empty()) {
    throw std::logic_error("journal: rotate with uncommitted frames");
  }
  poisoned_ = true;
  const std::uint64_t old_first = segment_first_seq_;
  {
    // The flusher snapshots fd_ under this lock; never swap the segment
    // while a flush of the old fd is in flight.
    std::unique_lock<std::mutex> lock(flush_mu_);
    await_flusher(lock);
    unsynced_ops_ = 0;  // callers sync() before rotate(); be safe anyway
    open_segment(/*create_new=*/true);
  }
  // Older segments' frames are all <= the checkpoint sequence; delete
  // them. A crash between the two loops only leaves extra segments, which
  // replay skips by sequence number.
  for (const auto& [first_seq, path] : list_segments(dir_)) {
    if (first_seq <= old_first && first_seq != segment_first_seq_) {
      std::error_code ec;
      fs::remove(path, ec);  // best effort; stale segments are harmless
    }
  }
  poisoned_ = false;
}

}  // namespace dvbp::persist
