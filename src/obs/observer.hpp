// Observer: the instrumentation hook the allocation engines call.
//
// Binds an optional MetricRegistry and an optional Tracer and translates
// raw engine callbacks into metric updates and trace records. The engines
// (simulate(), Dispatcher, cloud::run_cluster) hold a nullable Observer*;
// a null pointer costs one predictable branch per event, and an Observer
// whose tracer is inactive skips all record formatting, so the hot path is
// unharmed when observability is off (guarded by bench_micro's
// BM_SimulateObserved suite).
//
// Metric names follow docs/OBSERVABILITY.md; all counters/gauges are
// resolved once at construction so per-event updates never touch the
// registry map.
#pragma once

#include <cstddef>
#include <span>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dvbp::obs {

class Observer {
 public:
  /// Both pointers are borrowed and may be null; they must outlive the
  /// observer. Metric instruments are registered eagerly here.
  explicit Observer(MetricRegistry* metrics, Tracer* tracer = nullptr);

  MetricRegistry* metrics() const noexcept { return metrics_; }
  Tracer* tracer() const noexcept { return tracer_; }

  /// True when per-candidate fit checks are wanted (fit-failure counting
  /// and reject records). Engines skip the extra scan otherwise.
  bool wants_rejections() const noexcept {
    return metrics_ != nullptr || tracing();
  }
  bool tracing() const noexcept {
    return tracer_ != nullptr && tracer_->active();
  }

  /// Sink for per-decision policy latency; null when metrics are off (so
  /// ScopedTimer skips the clock reads).
  Histogram* decision_latency() const noexcept { return decision_latency_; }

  // --- Engine callbacks (see docs/OBSERVABILITY.md for semantics) -------
  void on_arrival(Time t, ItemId item, std::span<const double> size,
                  std::size_t open_bins);
  void on_reject(Time t, ItemId item, BinId bin);
  void on_place(Time t, ItemId item, BinId bin, bool new_bin,
                std::size_t rejections);
  void on_open(Time t, BinId bin);
  void on_depart(Time t, ItemId item, BinId bin, bool emptied);
  void on_close(Time t, BinId bin, Time opened);
  // Migration callbacks (dvbp.migrate.* metrics; docs/MIGRATION.md).
  void on_evict(Time t, ItemId item, BinId bin, bool emptied);
  void on_replace(Time t, ItemId item, BinId bin, bool new_bin);

 private:
  MetricRegistry* metrics_;
  Tracer* tracer_;

  // Cached instruments (null when metrics_ is null).
  Counter* arrivals_ = nullptr;
  Counter* departures_ = nullptr;
  Counter* placements_ = nullptr;
  Counter* fit_failures_ = nullptr;
  Counter* bins_opened_ = nullptr;
  Counter* bins_closed_ = nullptr;
  Gauge* open_bins_ = nullptr;
  Gauge* active_items_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* migrations_ = nullptr;
  Counter* migration_closes_ = nullptr;
  Histogram* decision_latency_ = nullptr;
};

}  // namespace dvbp::obs
