#include "obs/trace.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace dvbp::obs {

std::string_view to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kArrival:
      return "arrival";
    case TraceEventKind::kReject:
      return "reject";
    case TraceEventKind::kPlace:
      return "place";
    case TraceEventKind::kOpen:
      return "open";
    case TraceEventKind::kDepart:
      return "depart";
    case TraceEventKind::kClose:
      return "close";
    case TraceEventKind::kEvict:
      return "evict";
    case TraceEventKind::kReplace:
      return "replace";
    case TraceEventKind::kAdmit:
      return "admit";
    case TraceEventKind::kDeny:
      return "deny";
  }
  return "unknown";
}

// ---- FileSink ---------------------------------------------------------------

FileSink::FileSink(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("FileSink: cannot open '" + path + "'");
  }
}

FileSink::~FileSink() { flush(); }

void FileSink::write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
}

void FileSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

// ---- RingBufferSink ---------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.emplace_back(line);
}

std::vector<std::string> RingBufferSink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t RingBufferSink::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// ---- Tracer -----------------------------------------------------------------

Tracer::Tracer(std::shared_ptr<TraceSink> sink) : sink_(std::move(sink)) {
  active_ = sink_ != nullptr && !sink_->is_null();
}

void Tracer::emit(const TraceEvent& ev) {
  if (!active_) return;
  std::string line;
  line.reserve(96);
  line += "{\"ev\":\"";
  line += to_string(ev.kind);
  line += "\",\"t\":";
  line += json_number(ev.time);
  switch (ev.kind) {
    case TraceEventKind::kArrival:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"size\":[";
      for (std::size_t i = 0; i < ev.size.size(); ++i) {
        if (i > 0) line += ',';
        line += json_number(ev.size[i]);
      }
      line += "],\"open_bins\":" + std::to_string(ev.open_bins);
      break;
    case TraceEventKind::kReject:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"bin\":" + std::to_string(ev.bin);
      break;
    case TraceEventKind::kPlace:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"bin\":" + std::to_string(ev.bin);
      line += ",\"new_bin\":";
      line += ev.new_bin ? "true" : "false";
      line += ",\"rejections\":" + std::to_string(ev.rejections);
      break;
    case TraceEventKind::kOpen:
      line += ",\"bin\":" + std::to_string(ev.bin);
      break;
    case TraceEventKind::kDepart:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"bin\":" + std::to_string(ev.bin);
      line += ",\"emptied\":";
      line += ev.emptied ? "true" : "false";
      break;
    case TraceEventKind::kClose:
      line += ",\"bin\":" + std::to_string(ev.bin);
      line += ",\"opened\":" + json_number(ev.opened);
      line += ",\"usage\":" + json_number(ev.time - ev.opened);
      break;
    case TraceEventKind::kEvict:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"bin\":" + std::to_string(ev.bin);
      line += ",\"emptied\":";
      line += ev.emptied ? "true" : "false";
      break;
    case TraceEventKind::kReplace:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"bin\":" + std::to_string(ev.bin);
      line += ",\"new_bin\":";
      line += ev.new_bin ? "true" : "false";
      break;
    case TraceEventKind::kAdmit:
    case TraceEventKind::kDeny:
      line += ",\"item\":" + std::to_string(ev.item);
      line += ",\"tenant\":" + std::to_string(ev.tenant);
      break;
  }
  line += '}';
  sink_->write(line);
  records_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::flush() {
  if (sink_ != nullptr) sink_->flush();
}

}  // namespace dvbp::obs
