#include "obs/replay.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace dvbp::obs {

namespace {

[[noreturn]] void bad_trace(const std::string& why, std::string_view line) {
  throw std::invalid_argument("replay_packing: " + why + " in line: " +
                             std::string(line));
}

class Replayer {
 public:
  void feed(std::string_view line) {
    if (line.empty()) return;
    const auto kind = scan_json_string(line, "ev");
    if (!kind) bad_trace("missing \"ev\"", line);
    const auto t = scan_json_number(line, "t");
    if (!t) bad_trace("missing \"t\"", line);
    if (*kind == "open") {
      on_open(line, *t);
    } else if (*kind == "place") {
      on_place(line);
    } else if (*kind == "close") {
      on_close(line, *t);
    } else if (*kind == "replace") {
      on_replace(line);
    } else if (*kind != "arrival" && *kind != "reject" &&
               *kind != "depart" && *kind != "evict" &&
               *kind != "admit" && *kind != "deny") {
      bad_trace("unknown event kind '" + std::string(*kind) + "'", line);
    }
  }

  Packing take() && {
    return Packing(std::move(assignment_), std::move(bins_));
  }

 private:
  BinId require_bin(std::string_view line) {
    const auto bin = scan_json_number(line, "bin");
    if (!bin) bad_trace("missing \"bin\"", line);
    return static_cast<BinId>(*bin);
  }

  void on_open(std::string_view line, Time t) {
    const BinId bin = require_bin(line);
    if (bin != bins_.size()) {
      bad_trace("bin ids must appear in opening order", line);
    }
    bins_.push_back(BinRecord{bin, t, t, {}});
  }

  void on_place(std::string_view line) {
    const BinId bin = require_bin(line);
    const auto item = scan_json_number(line, "item");
    if (!item) bad_trace("missing \"item\"", line);
    if (bin >= bins_.size()) bad_trace("placement into unopened bin", line);
    const auto id = static_cast<ItemId>(*item);
    if (id >= assignment_.size()) assignment_.resize(id + 1, kNoBin);
    if (assignment_[id] != kNoBin) {
      bad_trace("item placed twice", line);
    }
    assignment_[id] = bin;
    bins_[bin].items.push_back(id);
  }

  // A "replace" re-places an evicted item: unlike "place" it may
  // legitimately override an earlier assignment (the item migrated).
  void on_replace(std::string_view line) {
    const BinId bin = require_bin(line);
    const auto item = scan_json_number(line, "item");
    if (!item) bad_trace("missing \"item\"", line);
    if (bin >= bins_.size()) bad_trace("replace into unopened bin", line);
    const auto id = static_cast<ItemId>(*item);
    if (id >= assignment_.size() || assignment_[id] == kNoBin) {
      bad_trace("replace of an item never placed", line);
    }
    assignment_[id] = bin;
    bins_[bin].items.push_back(id);
  }

  void on_close(std::string_view line, Time t) {
    const BinId bin = require_bin(line);
    if (bin >= bins_.size()) bad_trace("closing an unopened bin", line);
    bins_[bin].closed = t;
  }

  std::vector<BinId> assignment_;
  std::vector<BinRecord> bins_;
};

}  // namespace

Packing replay_packing(const std::vector<std::string>& lines) {
  Replayer replayer;
  for (const std::string& line : lines) replayer.feed(line);
  return std::move(replayer).take();
}

Packing replay_packing(std::istream& is) {
  Replayer replayer;
  std::string line;
  while (std::getline(is, line)) replayer.feed(line);
  return std::move(replayer).take();
}

Packing replay_packing_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("replay_packing_file: cannot open '" + path +
                             "'");
  }
  return replay_packing(in);
}

}  // namespace dvbp::obs
