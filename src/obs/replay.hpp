// Trace replay: reconstruct the exact Packing of a run from its JSONL
// decision trace.
//
// A trace produced by the Tracer (docs/OBSERVABILITY.md schema) records
// every placement, bin opening, and bin closing; that is sufficient to
// rebuild the full assignment and every bin's usage period without rerunning
// the policy. The round-trip `simulate() -> trace -> replay_packing()`
// must reproduce the simulator's Packing bit-for-bit (tested in
// tests/test_obs.cpp), which makes traces a trustworthy audit log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/packing.hpp"

namespace dvbp::obs {

/// Rebuilds the Packing from JSONL trace lines (blank lines are skipped).
/// Throws std::invalid_argument on malformed records or on traces that are
/// structurally inconsistent (placement into a never-opened bin, ...).
Packing replay_packing(const std::vector<std::string>& lines);

/// Streams `is` line by line and replays.
Packing replay_packing(std::istream& is);

/// Opens `path` and replays. Throws std::runtime_error when unreadable.
Packing replay_packing_file(const std::string& path);

}  // namespace dvbp::obs
