#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dvbp::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

/// Position just past `"key":`, or npos.
std::size_t find_value(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::string_view::npos;
  return at + needle.size();
}

std::optional<double> parse_number_at(std::string_view line,
                                      std::size_t pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  double value = 0.0;
  const auto res =
      std::from_chars(line.data() + pos, line.data() + line.size(), value);
  if (res.ec != std::errc()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<double> scan_json_number(std::string_view line,
                                       std::string_view key) {
  const std::size_t pos = find_value(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  return parse_number_at(line, pos);
}

std::optional<std::string_view> scan_json_string(std::string_view line,
                                                 std::string_view key) {
  std::size_t pos = find_value(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  const std::size_t end = line.find('"', pos);
  if (end == std::string_view::npos) return std::nullopt;
  return line.substr(pos, end - pos);
}

std::optional<bool> scan_json_bool(std::string_view line,
                                   std::string_view key) {
  const std::size_t pos = find_value(line, key);
  if (pos == std::string_view::npos) return std::nullopt;
  if (line.substr(pos, 4) == "true") return true;
  if (line.substr(pos, 5) == "false") return false;
  return std::nullopt;
}

std::optional<std::vector<double>> scan_json_number_array(
    std::string_view line, std::string_view key) {
  std::size_t pos = find_value(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '[') {
    return std::nullopt;
  }
  ++pos;
  std::vector<double> values;
  while (pos < line.size() && line[pos] != ']') {
    double value = 0.0;
    const auto res =
        std::from_chars(line.data() + pos, line.data() + line.size(), value);
    if (res.ec != std::errc()) return std::nullopt;
    values.push_back(value);
    pos = static_cast<std::size_t>(res.ptr - line.data());
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  if (pos >= line.size()) return std::nullopt;  // unterminated array
  return values;
}

}  // namespace dvbp::obs
