// Tiny JSON formatting/scanning helpers shared by the metrics snapshot and
// the JSONL tracer. Writing covers exactly what we emit (strings, numbers,
// bools, arrays of numbers); scanning covers exactly what we wrote -- flat
// single-line objects with known keys -- so the trace replayer needs no
// general-purpose JSON parser.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dvbp::obs {

/// Shortest round-trip decimal representation of `v` ("1e99"-style exponents
/// included). NaN/inf are not valid JSON and render as null.
std::string json_number(double v);

/// Appends `s` with JSON string escaping (quotes, backslash, control chars).
void append_json_escaped(std::string& out, std::string_view s);

/// Scans a flat JSON object line for `"key":<number>` and parses the number.
/// Returns nullopt when the key is absent. Keys appearing inside string
/// values are not handled (our schemas never do that).
std::optional<double> scan_json_number(std::string_view line,
                                       std::string_view key);

/// Scans for `"key":"<string>"` (no escapes inside, as our schemas
/// guarantee for the fields scanned this way).
std::optional<std::string_view> scan_json_string(std::string_view line,
                                                 std::string_view key);

/// Scans for `"key":true|false`.
std::optional<bool> scan_json_bool(std::string_view line,
                                   std::string_view key);

/// Scans for `"key":[n0,n1,...]` of numbers.
std::optional<std::vector<double>> scan_json_number_array(
    std::string_view line, std::string_view key);

}  // namespace dvbp::obs
