// MetricRegistry: cheap runtime metrics for the live allocator paths.
//
// Three instrument kinds, all safe for concurrent writers:
//   Counter   -- monotonically increasing uint64 (relaxed atomic add);
//   Gauge     -- settable double (CAS add, plain store for set);
//   Histogram -- fixed-bucket latency/value histogram (atomic bucket counts).
// Instruments live in the registry and are handed out as stable references;
// hot paths cache the reference once and never touch the registry map again.
// Snapshots (`MetricRegistry::to_json`) read with relaxed atomics, so they
// are cheap and may lag in-flight updates by a few operations.
//
// Naming convention (see docs/OBSERVABILITY.md): dot-separated lowercase
// `dvbp.<scope>.<noun>[_<unit>|_total]`, e.g. `dvbp.alloc.placements_total`,
// `dvbp.alloc.open_bins`, `dvbp.alloc.decision_latency_ns`. The durability
// layer reports under `dvbp.persist.*` (journal_bytes_total, fsyncs_total,
// checkpoints_total, recovery_ms, ...; see docs/DURABILITY.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dvbp::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (open bins, active jobs, queue depth...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    // CAS loop instead of std::atomic<double>::fetch_add for portability.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set at registration
/// and never change, so observation is a lock-free scan + one atomic add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Bucket counts, including the trailing overflow bucket
  /// (size == bounds().size() + 1).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Linear-interpolated quantile estimate in [0, 1]; 0 when empty.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // deque: atomics can't move
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for nanosecond latencies: 1us..1s in a
/// 1-2.5-5 ladder. Decision latencies of the in-memory allocator sit in
/// the low decades; the upper ones keep queued end-to-end tails (network
/// p999 under backpressure) out of the overflow bucket.
std::vector<double> default_latency_bounds_ns();

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime. Throws
  /// std::invalid_argument when `name` is already registered as a different
  /// kind (or, for histograms, with different bounds).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  std::size_t size() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms serialize bounds, bucket counts, count, sum, p50/p99.
  std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// RAII timer: measures wall time from construction to destruction with
/// steady_clock and records nanoseconds into `sink`. A null sink disables
/// the timer entirely (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) noexcept : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      sink_->observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dvbp::obs
