#include "obs/observer.hpp"

namespace dvbp::obs {

Observer::Observer(MetricRegistry* metrics, Tracer* tracer)
    : metrics_(metrics), tracer_(tracer) {
  if (metrics_ == nullptr) return;
  arrivals_ = &metrics_->counter("dvbp.alloc.arrivals_total");
  departures_ = &metrics_->counter("dvbp.alloc.departures_total");
  placements_ = &metrics_->counter("dvbp.alloc.placements_total");
  fit_failures_ = &metrics_->counter("dvbp.alloc.fit_failures_total");
  bins_opened_ = &metrics_->counter("dvbp.alloc.bins_opened_total");
  bins_closed_ = &metrics_->counter("dvbp.alloc.bins_closed_total");
  open_bins_ = &metrics_->gauge("dvbp.alloc.open_bins");
  active_items_ = &metrics_->gauge("dvbp.alloc.active_items");
  evictions_ = &metrics_->counter("dvbp.migrate.evictions_total");
  migrations_ = &metrics_->counter("dvbp.migrate.migrations_total");
  migration_closes_ =
      &metrics_->counter("dvbp.migrate.bins_closed_total");
  decision_latency_ =
      &metrics_->histogram("dvbp.alloc.decision_latency_ns");
}

void Observer::on_arrival(Time t, ItemId item, std::span<const double> size,
                          std::size_t open_bins) {
  if (arrivals_ != nullptr) {
    arrivals_->inc();
    active_items_->add(1.0);
  }
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kArrival;
    ev.time = t;
    ev.item = item;
    ev.size = size;
    ev.open_bins = open_bins;
    tracer_->emit(ev);
  }
}

void Observer::on_reject(Time t, ItemId item, BinId bin) {
  if (fit_failures_ != nullptr) fit_failures_->inc();
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kReject;
    ev.time = t;
    ev.item = item;
    ev.bin = bin;
    tracer_->emit(ev);
  }
}

void Observer::on_place(Time t, ItemId item, BinId bin, bool new_bin,
                        std::size_t rejections) {
  if (placements_ != nullptr) placements_->inc();
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kPlace;
    ev.time = t;
    ev.item = item;
    ev.bin = bin;
    ev.new_bin = new_bin;
    ev.rejections = rejections;
    tracer_->emit(ev);
  }
}

void Observer::on_open(Time t, BinId bin) {
  if (bins_opened_ != nullptr) {
    bins_opened_->inc();
    open_bins_->add(1.0);
  }
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kOpen;
    ev.time = t;
    ev.bin = bin;
    tracer_->emit(ev);
  }
}

void Observer::on_depart(Time t, ItemId item, BinId bin, bool emptied) {
  if (departures_ != nullptr) {
    departures_->inc();
    active_items_->add(-1.0);
  }
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kDepart;
    ev.time = t;
    ev.item = item;
    ev.bin = bin;
    ev.emptied = emptied;
    tracer_->emit(ev);
  }
}

void Observer::on_close(Time t, BinId bin, Time opened) {
  if (bins_closed_ != nullptr) {
    bins_closed_->inc();
    open_bins_->add(-1.0);
  }
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kClose;
    ev.time = t;
    ev.bin = bin;
    ev.opened = opened;
    tracer_->emit(ev);
  }
}

void Observer::on_evict(Time t, ItemId item, BinId bin, bool emptied) {
  if (evictions_ != nullptr) {
    evictions_->inc();
    if (emptied) migration_closes_->inc();
  }
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kEvict;
    ev.time = t;
    ev.item = item;
    ev.bin = bin;
    ev.emptied = emptied;
    tracer_->emit(ev);
  }
}

void Observer::on_replace(Time t, ItemId item, BinId bin, bool new_bin) {
  if (migrations_ != nullptr) migrations_->inc();
  if (tracing()) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kReplace;
    ev.time = t;
    ev.item = item;
    ev.bin = bin;
    ev.new_bin = new_bin;
    tracer_->emit(ev);
  }
}

}  // namespace dvbp::obs
