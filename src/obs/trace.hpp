// Structured decision tracing: one JSONL record per allocator event.
//
// The simulator and the live Dispatcher emit the same six event kinds --
// arrival, candidate-bin rejection, placement, bin open, departure, bin
// close -- through a Tracer into a pluggable sink. The schema is specified
// in docs/OBSERVABILITY.md; obs/replay.hpp reconstructs the full Packing
// from a trace, so a trace is a complete, replayable account of a run.
//
// Sinks:
//   NullSink       -- drops everything; Tracer::active() is false, so
//                     callers skip record formatting entirely (hot-path
//                     cost: one branch).
//   FileSink       -- buffered JSONL file, one record per line.
//   RingBufferSink -- in-memory ring of the most recent lines, for tests
//                     and crash dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace dvbp::obs {

enum class TraceEventKind : std::uint8_t {
  kArrival,   ///< item shown to the policy
  kReject,    ///< open bin that cannot hold the item
  kPlace,     ///< irrevocable placement decision
  kOpen,      ///< new bin opened
  kDepart,    ///< item left its bin
  kClose,     ///< bin emptied and closed permanently
  kEvict,     ///< item removed for migration (still active, in limbo)
  kReplace,   ///< evicted item re-placed into a bin
  kAdmit,     ///< admission gate let a tenant's arrival through
  kDeny,      ///< admission gate pushed an arrival back (RETRY_LATER)
};

/// "arrival", "reject", "place", "open", "depart", "close", "evict",
/// "replace", "admit", "deny".
std::string_view to_string(TraceEventKind kind) noexcept;

/// One allocator event. Only the fields meaningful for `kind` are
/// serialized (see docs/OBSERVABILITY.md for the per-kind schema).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kArrival;
  Time time = 0.0;
  ItemId item = kNoItem;
  BinId bin = kNoBin;
  std::span<const double> size;   ///< arrival: item demand vector
  std::size_t open_bins = 0;      ///< arrival: bins open before the decision
  bool new_bin = false;           ///< place: did this placement open a bin
  std::size_t rejections = 0;     ///< place: # open bins that could not fit
  bool emptied = false;           ///< depart: did the bin become empty
  Time opened = 0.0;              ///< close: when the bin had opened
  TenantId tenant = kNoTenant;    ///< admit/deny: tenant the gate judged
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// `line` is one complete JSON object, no trailing newline. Must be safe
  /// for concurrent callers.
  virtual void write(std::string_view line) = 0;
  virtual void flush() {}
  virtual bool is_null() const noexcept { return false; }
};

class NullSink final : public TraceSink {
 public:
  void write(std::string_view) override {}
  bool is_null() const noexcept override { return true; }
};

class FileSink final : public TraceSink {
 public:
  /// Truncates `path`. Throws std::runtime_error when the file cannot be
  /// opened.
  explicit FileSink(const std::string& path);
  ~FileSink() override;

  void write(std::string_view line) override;
  void flush() override;

 private:
  std::mutex mu_;
  std::ofstream out_;
};

class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16);

  void write(std::string_view line) override;

  /// Snapshot of the retained lines, oldest first.
  std::vector<std::string> lines() const;
  /// Records evicted because the ring was full.
  std::uint64_t dropped() const noexcept;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::string> ring_;
  std::uint64_t dropped_ = 0;
};

class Tracer {
 public:
  /// A null `sink` behaves like NullSink.
  explicit Tracer(std::shared_ptr<TraceSink> sink);

  /// False when every record would be dropped; callers use this to skip
  /// event construction on the hot path.
  bool active() const noexcept { return active_; }

  std::uint64_t records_emitted() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }

  void emit(const TraceEvent& ev);
  void flush();

 private:
  std::shared_ptr<TraceSink> sink_;
  bool active_ = false;
  std::atomic<std::uint64_t> records_{0};
};

}  // namespace dvbp::obs
