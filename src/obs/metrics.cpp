#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace dvbp::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted");
  }
}

void Histogram::observe(double value) noexcept {
  // Bounds are tiny (≈ 20 buckets); a branch-predictable linear scan beats
  // binary search at this size and keeps the path allocation- and lock-free.
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    counts.push_back(b.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank) {
      // Interpolate within [lo, hi]; the overflow bucket reports its lower
      // bound (no upper edge to interpolate towards).
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const std::uint64_t in_bucket = counts[i];
      const double within =
          in_bucket == 0
              ? 1.0
              : (rank - static_cast<double>(seen - in_bucket)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> default_latency_bounds_ns() {
  // 1us .. 1s, 1-2.5-5 ladder (nanoseconds). The upper decades exist so a
  // p999 over queued end-to-end latencies (e.g. dvbp.net.request_latency_ns
  // under backpressure) lands in a finite bucket and stays resolvable
  // instead of collapsing into the overflow bucket.
  return {1e3,   2.5e3, 5e3,   1e4,   2.5e4, 5e4,   1e5,   2.5e5, 5e5,
          1e6,   2.5e6, 5e6,   1e7,   2.5e7, 5e7,   1e8,   2.5e8, 5e8,
          1e9};
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto kind = kinds_.find(name);
  if (kind != kinds_.end() && kind->second != Kind::kCounter) {
    throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                "' already registered as a different kind");
  }
  if (kind == kinds_.end()) {
    kinds_.emplace(std::string(name), Kind::kCounter);
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto kind = kinds_.find(name);
  if (kind != kinds_.end() && kind->second != Kind::kGauge) {
    throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                "' already registered as a different kind");
  }
  if (kind == kinds_.end()) {
    kinds_.emplace(std::string(name), Kind::kGauge);
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds) {
  if (upper_bounds.empty()) upper_bounds = default_latency_bounds_ns();
  std::lock_guard<std::mutex> lock(mu_);
  const auto kind = kinds_.find(name);
  if (kind != kinds_.end() && kind->second != Kind::kHistogram) {
    throw std::invalid_argument("MetricRegistry: '" + std::string(name) +
                                "' already registered as a different kind");
  }
  if (kind == kinds_.end()) {
    kinds_.emplace(std::string(name), Kind::kHistogram);
    return histograms_.try_emplace(std::string(name), std::move(upper_bounds))
        .first->second;
  }
  Histogram& existing = histograms_.find(name)->second;
  if (existing.bounds() != upper_bounds) {
    throw std::invalid_argument("MetricRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with different bounds");
  }
  return existing;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kinds_.size();
}

std::string MetricRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":" + json_number(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":{\"bounds\":[";
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += json_number(bounds[i]);
    }
    out += "],\"buckets\":[";
    const auto counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + json_number(h.sum());
    out += ",\"p50\":" + json_number(h.quantile(0.5));
    out += ",\"p99\":" + json_number(h.quantile(0.99));
    out += ",\"p999\":" + json_number(h.quantile(0.999));
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace dvbp::obs
