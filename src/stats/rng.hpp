// Deterministic pseudo-random number generation for experiments.
//
// xoshiro256++ seeded via SplitMix64, implemented from the public-domain
// reference algorithms. Every Monte-Carlo trial derives an independent
// stream from (master seed, trial index) so results are reproducible and
// independent of how trials are scheduled across threads.
#pragma once

#include <array>
#include <cstdint>

namespace dvbp {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state, and as a
/// cheap stateless mixer for deriving per-trial seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0. Satisfies UniformRandomBitGenerator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (caches the spare deviate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives the canonical RNG for a given trial of a seeded experiment.
  static Xoshiro256pp for_trial(std::uint64_t master_seed,
                                std::uint64_t trial) noexcept;

  // --- Checkpointing access (src/persist/) --------------------------------
  // The full generator state, exposed so randomized policies can serialize
  // and restore their stream position bit-exactly across a crash/recovery
  // cycle (Policy::save_state / restore_state).

  const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }
  double spare_normal() const noexcept { return spare_normal_; }
  bool has_spare_normal() const noexcept { return has_spare_; }

  void set_state(const std::array<std::uint64_t, 4>& s, double spare_normal,
                 bool has_spare) noexcept {
    s_ = s;
    spare_normal_ = spare_normal;
    has_spare_ = has_spare;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace dvbp
