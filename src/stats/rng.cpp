#include "stats/rng.hpp"

#include <cmath>

namespace dvbp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256pp::uniform_int(std::int64_t lo,
                                       std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Xoshiro256pp::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

Xoshiro256pp Xoshiro256pp::for_trial(std::uint64_t master_seed,
                                     std::uint64_t trial) noexcept {
  SplitMix64 sm(master_seed ^ (0xA5A5A5A55A5A5A5AULL + trial * 0x9E3779B97F4A7C15ULL));
  return Xoshiro256pp(sm.next());
}

}  // namespace dvbp
