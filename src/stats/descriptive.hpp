// Descriptive statistics used by the experiment harness: streaming
// mean/variance (Welford), min/max, and normal-approximation confidence
// intervals. This is what turns per-trial cost ratios into the
// "mean +- stddev" cells of Figure 4.
#pragma once

#include <cstddef>
#include <vector>

namespace dvbp {

/// Single-pass accumulator (Welford's algorithm; numerically stable).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Standard error of the mean; 0 for n < 2.
  double stderr_mean() const noexcept;
  /// Half-width of a normal-approximation CI (z = 1.96 for 95%).
  double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a sample vector.
double mean(const std::vector<double>& xs);
double sample_stddev(const std::vector<double>& xs);
/// Linear-interpolation quantile, q in [0,1]. Sorts a copy.
double quantile(std::vector<double> xs, double q);
double median(std::vector<double> xs);

}  // namespace dvbp
