// Fixed-width histogram for diagnostic distributions (e.g. per-trial cost
// ratios, bin-count distributions) with an ASCII renderer for bench output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dvbp {

class Histogram {
 public:
  /// Buckets partition [lo, hi) uniformly; values outside are counted in
  /// underflow/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Multi-line ASCII bar chart, widest bar = `width` characters.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace dvbp
