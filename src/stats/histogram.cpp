#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dvbp {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("bucket_lo");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("bucket_hi");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bucket + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[b]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    os << '[';
    os.precision(4);
    os << bucket_lo(b) << ", " << bucket_hi(b) << ") ";
    os << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  if (underflow_ || overflow_) {
    os << "underflow=" << underflow_ << " overflow=" << overflow_ << '\n';
  }
  return os.str();
}

}  // namespace dvbp
