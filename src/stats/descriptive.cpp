#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dvbp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci_halfwidth(double z) const noexcept {
  return z * stderr_mean();
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

}  // namespace dvbp
