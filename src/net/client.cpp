#include "net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dvbp::net {

namespace {

/// Auto-flush threshold: bounds client-side buffering under pipelining
/// while still coalescing small frames into few write(2) calls.
constexpr std::size_t kSendBufFlush = 64 * 1024;

constexpr std::size_t kRecvChunk = 64 * 1024;

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    throw NetError("getaddrinfo(" + host + "): " + ::gai_strerror(rc));
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_str("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      break;
    }
    last_error = errno_str("connect");
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    throw NetError("Client: cannot connect to " + host + ":" + port_str +
                   " (" + last_error + ")");
  }
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::stamp(Request& req) {
  if (fd_ < 0) throw NetError("Client: connection is closed");
  req.id = next_id_++;
  encode_request(req, send_buf_);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (send_buf_.size() >= kSendBufFlush) flush();
  return req.id;
}

std::uint64_t Client::send_arrive(Time now, const RVec& size,
                                  Time expected_departure,
                                  TenantId tenant) {
  Request req;
  req.type = MsgType::kArrive;
  req.time = now;
  req.expected_departure = expected_departure;
  req.size = size;
  req.tenant = tenant;
  return stamp(req);
}

std::uint64_t Client::send_depart(Time now, std::uint64_t job) {
  Request req;
  req.type = MsgType::kDepart;
  req.time = now;
  req.job = job;
  return stamp(req);
}

std::uint64_t Client::send_query(Time now) {
  Request req;
  req.type = MsgType::kQuery;
  req.time = now;
  return stamp(req);
}

std::uint64_t Client::send_snapshot() {
  Request req;
  req.type = MsgType::kSnapshot;
  return stamp(req);
}

std::uint64_t Client::send_drain() {
  Request req;
  req.type = MsgType::kDrain;
  return stamp(req);
}

std::uint64_t Client::send_ping() {
  Request req;
  req.type = MsgType::kPing;
  return stamp(req);
}

void Client::flush() {
  if (fd_ < 0) throw NetError("Client: connection is closed");
  std::size_t pos = 0;
  while (pos < send_buf_.size()) {
    const ssize_t n =
        ::write(fd_, send_buf_.data() + pos, send_buf_.size() - pos);
    if (n > 0) {
      pos += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      close();
      throw NetError(errno_str("Client: write"));
    }
  }
  send_buf_.clear();
}

Response Client::recv_response() {
  if (fd_ < 0) throw NetError("Client: connection is closed");
  std::uint8_t buf[kRecvChunk];
  for (;;) {
    if (auto payload = decoder_.next(); payload.has_value()) {
      const Response resp =
          decode_response(payload->data(), payload->size());
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      return resp;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      close();
      throw NetError("Client: server closed the connection");
    } else if (errno == EINTR) {
      continue;
    } else {
      close();
      throw NetError(errno_str("Client: read"));
    }
  }
}

void Client::require_empty_pipeline(const char* caller) const {
  if (outstanding_.load(std::memory_order_acquire) != 0) {
    throw std::logic_error(
        std::string("Client::") + caller +
        ": pipelined requests outstanding (responses arrive in completion "
        "order; use recv_response to drain them first)");
  }
}

Response Client::roundtrip(const Request& req) {
  Request r = req;
  stamp(r);
  flush();
  return recv_response();
}

Response Client::arrive(Time now, const RVec& size, Time expected_departure,
                        TenantId tenant) {
  require_empty_pipeline("arrive");
  Request req;
  req.type = MsgType::kArrive;
  req.time = now;
  req.expected_departure = expected_departure;
  req.size = size;
  req.tenant = tenant;
  return roundtrip(req);
}

Response Client::depart(Time now, std::uint64_t job) {
  require_empty_pipeline("depart");
  Request req;
  req.type = MsgType::kDepart;
  req.time = now;
  req.job = job;
  return roundtrip(req);
}

Response Client::query(Time now) {
  require_empty_pipeline("query");
  Request req;
  req.type = MsgType::kQuery;
  req.time = now;
  return roundtrip(req);
}

Response Client::snapshot() {
  require_empty_pipeline("snapshot");
  Request req;
  req.type = MsgType::kSnapshot;
  return roundtrip(req);
}

Response Client::drain() {
  require_empty_pipeline("drain");
  Request req;
  req.type = MsgType::kDrain;
  return roundtrip(req);
}

Response Client::ping() {
  require_empty_pipeline("ping");
  Request req;
  req.type = MsgType::kPing;
  return roundtrip(req);
}

}  // namespace dvbp::net
