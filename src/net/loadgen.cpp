#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/rvec.hpp"
#include "net/client.hpp"
#include "trace/reader.hpp"

namespace dvbp::net {

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct ConnStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t unknown_job = 0;
  std::uint64_t other_errors = 0;
  std::vector<double> latencies_ns;  // OK responses only
};

struct InFlight {
  bool is_depart = false;
  std::uint64_t job = 0;  // departs: the job being departed
  Clock::time_point sent_at{};
};

/// Tallies one response; returns the job to the live set when a depart was
/// refused retriably. The caller holds whatever lock guards `live`.
void account(const Response& resp, const InFlight& rec, ConnStats& stats,
             std::vector<std::uint64_t>& live) {
  switch (resp.status) {
    case Status::kOk:
      ++stats.ok;
      stats.latencies_ns.push_back(ns_between(rec.sent_at, Clock::now()));
      if (!rec.is_depart) live.push_back(resp.job);
      break;
    case Status::kRetryLater:
      ++stats.retry_later;
      if (rec.is_depart) live.push_back(rec.job);
      break;
    case Status::kShuttingDown:
      ++stats.shutting_down;
      break;
    case Status::kBadRequest:
      ++stats.bad_request;
      break;
    case Status::kUnknownJob:
      ++stats.unknown_job;
      break;
    default:
      ++stats.other_errors;
      break;
  }
}

/// Draws the next request and sends it (buffered); the returned id is
/// already entered in `inflight` before any byte can reach the wire.
std::uint64_t issue(Client& client, const LoadgenOptions& opt,
                    std::mt19937_64& rng, double& vtime,
                    std::vector<std::uint64_t>& live,
                    std::unordered_map<std::uint64_t, InFlight>& inflight) {
  vtime += 1e-6;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const bool do_depart = !live.empty() && coin(rng) < opt.depart_fraction;
  std::uint64_t id = 0;
  if (do_depart) {
    const std::size_t k = static_cast<std::size_t>(rng() % live.size());
    const std::uint64_t job = live[k];
    live[k] = live.back();
    live.pop_back();
    id = client.send_depart(vtime, job);
    inflight.emplace(id, InFlight{true, job, Clock::now()});
  } else {
    std::uniform_real_distribution<double> unit(0.05, 0.6);
    RVec size(opt.dim);
    for (std::size_t j = 0; j < opt.dim; ++j) size[j] = unit(rng);
    id = client.send_arrive(vtime, size);
    inflight.emplace(id, InFlight{false, 0, Clock::now()});
  }
  return id;
}

void closed_loop_worker(const LoadgenOptions& opt, std::size_t idx,
                        ConnStats& stats) {
  Client client(opt.host, opt.port);
  std::mt19937_64 rng(opt.seed * 1000003 + idx);
  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::uint64_t> live;
  double vtime = 0.0;
  const std::uint64_t total = opt.requests_per_connection;

  // `terminal + inflight.size()` is the number of window slots consumed:
  // a RETRY_LATER counts in neither, so its slot re-issues automatically.
  auto terminal = [&] {
    return stats.ok + stats.shutting_down + stats.bad_request +
           stats.unknown_job + stats.other_errors;
  };
  while (terminal() < total) {
    while (terminal() + inflight.size() < total &&
           inflight.size() < opt.window) {
      issue(client, opt, rng, vtime, live, inflight);
      ++stats.sent;
    }
    client.flush();
    const Response resp = client.recv_response();
    const auto it = inflight.find(resp.id);
    if (it == inflight.end()) {
      throw std::logic_error("loadgen: response for unknown request id");
    }
    const InFlight rec = it->second;
    inflight.erase(it);
    account(resp, rec, stats, live);
  }
}

void open_loop_worker(const LoadgenOptions& opt, std::size_t idx,
                      ConnStats& stats) {
  Client client(opt.host, opt.port);
  std::mt19937_64 rng(opt.seed * 1000003 + idx);
  std::mutex mu;  // guards inflight + live between sender and receiver
  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::vector<std::uint64_t> live;
  std::atomic<bool> sender_done{false};
  std::exception_ptr sender_error;

  std::thread sender([&] {
    try {
      double vtime = 0.0;
      const double rate =
          opt.open_loop_rate / static_cast<double>(opt.connections);
      const auto period = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / rate));
      const auto start = Clock::now();
      const auto end =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(opt.duration_s));
      auto deadline = start;
      while (Clock::now() < end) {
        deadline += period;
        // If we fall behind the schedule we do NOT stretch it -- requests
        // burst out late at wire speed, which is what open loop means.
        std::this_thread::sleep_until(deadline);
        {
          std::lock_guard<std::mutex> lock(mu);
          issue(client, opt, rng, vtime, live, inflight);
        }
        client.flush();
        ++stats.sent;
      }
    } catch (...) {
      sender_error = std::current_exception();
    }
    sender_done.store(true, std::memory_order_release);
  });

  try {
    for (;;) {
      if (client.outstanding() == 0) {
        if (sender_done.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      const Response resp = client.recv_response();
      std::lock_guard<std::mutex> lock(mu);
      const auto it = inflight.find(resp.id);
      if (it == inflight.end()) {
        throw std::logic_error("loadgen: response for unknown request id");
      }
      const InFlight rec = it->second;
      inflight.erase(it);
      account(resp, rec, stats, live);
    }
  } catch (...) {
    sender_done.store(true, std::memory_order_release);
    sender.join();
    throw;
  }
  sender.join();
  if (sender_error) std::rethrow_exception(sender_error);
}

/// Closed-loop replay of one connection's partition of a recorded trace
/// (items with id % connections == idx). The window never reorders the
/// partition's event sequence: a depart whose arrival has not resolved to
/// a server job id stalls issuing until it does, and RETRY_LATER pushes
/// the event back to the FRONT of the pending queue, so arrive-before-
/// depart order is preserved per item under retries too.
void trace_replay_worker(const LoadgenOptions& opt,
                         const trace::TraceReader& reader, std::size_t idx,
                         ConnStats& stats) {
  Client client(opt.host, opt.port);
  trace::TraceCursor cursor(reader);
  std::deque<trace::TraceEvent> pending;  // retries + one stalled head
  std::unordered_map<std::uint64_t, InFlight> inflight;
  std::unordered_map<std::uint64_t, trace::TraceEvent> event_of;
  std::unordered_map<ItemId, std::uint64_t> job_of_item;
  RVec size(reader.dim());
  bool stream_done = false;

  const auto issuable = [&](const trace::TraceEvent& e) {
    return e.kind == EventKind::kArrival || job_of_item.count(e.item) > 0;
  };

  while (true) {
    while (inflight.size() < std::max<std::size_t>(opt.window, 1)) {
      trace::TraceEvent next;
      bool have = false;
      if (!pending.empty()) {
        if (!issuable(pending.front())) break;  // stalled on its arrival
        next = pending.front();
        pending.pop_front();
        have = true;
      } else if (!stream_done) {
        trace::TraceEvent ev;
        while (cursor.next(ev)) {
          if (ev.item % opt.connections == idx) {
            next = ev;
            have = true;
            break;
          }
        }
        if (!have) {
          stream_done = true;
        } else if (!issuable(next)) {
          pending.push_front(next);  // arrival still in flight; wait
          break;
        }
      }
      if (!have) break;

      std::uint64_t id = 0;
      if (next.kind == EventKind::kArrival) {
        reader.size_into(next.item, size);
        id = client.send_arrive(next.time, size);
        inflight.emplace(id, InFlight{false, 0, Clock::now()});
      } else {
        const std::uint64_t job = job_of_item[next.item];
        id = client.send_depart(next.time, job);
        inflight.emplace(id, InFlight{true, job, Clock::now()});
      }
      event_of.emplace(id, next);
      ++stats.sent;
    }
    if (inflight.empty()) break;  // drained (or wedged on a failed arrival)

    client.flush();
    const Response resp = client.recv_response();
    const auto it = inflight.find(resp.id);
    if (it == inflight.end()) {
      throw std::logic_error("loadgen: response for unknown request id");
    }
    const InFlight rec = it->second;
    inflight.erase(it);
    const auto ev_it = event_of.find(resp.id);
    const trace::TraceEvent replayed = ev_it->second;
    event_of.erase(ev_it);

    switch (resp.status) {
      case Status::kOk:
        ++stats.ok;
        stats.latencies_ns.push_back(ns_between(rec.sent_at, Clock::now()));
        if (rec.is_depart) {
          job_of_item.erase(replayed.item);
        } else {
          job_of_item.emplace(replayed.item, resp.job);
        }
        break;
      case Status::kRetryLater:
        ++stats.retry_later;
        pending.push_front(replayed);
        break;
      case Status::kShuttingDown:
        ++stats.shutting_down;
        break;
      case Status::kBadRequest:
        ++stats.bad_request;
        break;
      case Status::kUnknownJob:
        ++stats.unknown_job;
        break;
      default:
        ++stats.other_errors;
        break;
    }
  }
}

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  std::size_t idx =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

LoadgenResult run_loadgen(const LoadgenOptions& options) {
  if (options.connections == 0) {
    throw std::invalid_argument("loadgen: connections must be >= 1");
  }
  if (options.dim == 0) {
    throw std::invalid_argument("loadgen: dim must be >= 1");
  }
  if (options.open_loop_rate > 0.0 && options.duration_s <= 0.0) {
    throw std::invalid_argument("loadgen: open loop needs duration_s > 0");
  }
  if (!options.trace_path.empty() && options.open_loop_rate > 0.0) {
    throw std::invalid_argument(
        "loadgen: trace replay is closed-loop only (open_loop_rate == 0)");
  }
  // Opened (and fully validated) once, shared read-only by all workers.
  std::optional<trace::TraceReader> trace_reader;
  if (!options.trace_path.empty()) {
    trace_reader.emplace(options.trace_path);
  }

  std::vector<ConnStats> stats(options.connections);
  std::vector<std::exception_ptr> errors(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);

  const auto start = Clock::now();
  for (std::size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back([&, i] {
      try {
        if (trace_reader.has_value()) {
          trace_replay_worker(options, *trace_reader, i, stats[i]);
        } else if (options.open_loop_rate > 0.0) {
          open_loop_worker(options, i, stats[i]);
        } else {
          closed_loop_worker(options, i, stats[i]);
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  LoadgenResult result;
  std::vector<double> latencies;
  for (const ConnStats& s : stats) {
    result.requests_sent += s.sent;
    result.ok += s.ok;
    result.retry_later += s.retry_later;
    result.shutting_down += s.shutting_down;
    result.bad_request += s.bad_request;
    result.unknown_job += s.unknown_job;
    result.other_errors += s.other_errors;
    latencies.insert(latencies.end(), s.latencies_ns.begin(),
                     s.latencies_ns.end());
  }
  result.elapsed_s = elapsed;
  result.throughput_rps =
      elapsed > 0.0 ? static_cast<double>(result.ok) / elapsed : 0.0;
  std::sort(latencies.begin(), latencies.end());
  result.samples = latencies.size();
  result.p50_ns = nearest_rank(latencies, 0.50);
  result.p99_ns = nearest_rank(latencies, 0.99);
  result.p999_ns = nearest_rank(latencies, 0.999);
  result.max_ns = latencies.empty() ? 0.0 : latencies.back();
  return result;
}

}  // namespace dvbp::net
