// PlacementServer: the binary-RPC network front-end of the sharded
// placement service (docs/PROTOCOL.md, docs/ARCHITECTURE.md).
//
// Topology: one acceptor thread (accepts, round-robins connections across
// loops) + N event-loop threads (epoll, level-triggered, nonblocking
// sockets). Each connection owns a streaming FrameDecoder for partial-
// frame reassembly and a write buffer flushed opportunistically (EPOLLOUT
// armed only while the socket is full). Decoded Arrive/Depart requests are
// submitted to the borrowed ShardedDispatcher through the non-blocking
// try_arrive/try_depart path; the owning shard worker fires the
// CompletionSink once the op is applied, which enqueues the encoded
// response on the connection and wakes its loop via eventfd -- the
// completion hookup that makes a response mean "placed", not "buffered".
//
// Admission control / backpressure (never unbounded buffering):
//   * per-connection in-flight window (max_inflight_per_conn): requests
//     beyond it are answered RETRY_LATER immediately;
//   * full shard queue: try_arrive/try_depart refuse, answered RETRY_LATER.
// Both are counted by dvbp.net.backpressure_rejections_total.
//
// Graceful drain (Drain RPC or a signal wired via install_signal_drain):
// stop accepting, answer new Arrive/Depart with SHUTTING_DOWN, wait for
// every accepted op to apply (service drain -- completions fire first, so
// every accepted request gets exactly one response), sync the journals
// when durability is on, then answer the Drain with the final snapshot's
// packing hash and close every connection once its responses are flushed.
//
// Metrics (dvbp.net.*): connections_total, connections_active, frames_in/
// out_total, bytes_in/out_total, decode_errors_total, requests_total,
// backpressure_rejections_total, request_latency_ns (receive -> applied).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloud/sharded_dispatcher.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "tenancy/gate.hpp"

namespace dvbp::net {

/// Thrown on socket-level failures (bind, listen, epoll...).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  std::uint16_t port = 0;
  std::size_t event_loops = 1;
  /// Per-connection cap on accepted-but-unanswered Arrive/Depart ops.
  std::size_t max_inflight_per_conn = 1024;
  /// Borrowed, nullable; receives the dvbp.net.* instruments.
  obs::MetricRegistry* metrics = nullptr;
  /// Borrowed, nullable: per-tenant admission gate (docs/TENANCY.md). When
  /// set, every Arrive is gated BEFORE submission -- an over-quota tenant
  /// without credits is answered RETRY_LATER and the op never reaches the
  /// service -- and the booked demand is released when the job departs.
  /// The gate runs in the front-end, before routing, so its decision
  /// sequence is independent of the shard count.
  tenancy::AdmissionGate* gate = nullptr;
};

class PlacementServer {
 public:
  /// Binds, listens, and starts the acceptor + event-loop threads. The
  /// service is borrowed and must outlive the server. Throws NetError when
  /// the socket setup fails, std::invalid_argument on bad options.
  PlacementServer(cloud::ShardedDispatcher& service,
                  ServerOptions options = {});

  /// Hard-stops if still running (stop()), then joins everything.
  ~PlacementServer();

  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  /// The bound TCP port (resolves option port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Triggers the graceful drain exactly as a Drain RPC would (minus the
  /// response). Async-signal-safe: an atomic store plus an eventfd write.
  void request_drain() noexcept;

  /// Routes `signo` (e.g. SIGTERM, SIGINT) to request_drain() on this
  /// server. At most one PlacementServer per process may install signal
  /// handlers; they stay installed until the process exits.
  void install_signal_drain(int signo);

  /// Blocks until the server has fully stopped: after a graceful drain
  /// completed (every response flushed, every connection closed) or after
  /// stop().
  void wait();

  /// Hard stop: stops reading, waits for in-flight ops to apply so no
  /// completion can fire into a destroyed loop, then closes everything.
  /// Unread client data is lost (use the Drain RPC for a graceful end).
  void stop();

  /// True once a drain has been requested (RPC, signal, or request_drain).
  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  struct EventLoop;
  struct Connection;

  void acceptor_run();
  void loop_run(EventLoop& loop);
  void handle_accept();
  void register_conn(EventLoop& loop,
                     const std::shared_ptr<Connection>& conn);
  void handle_readable(EventLoop& loop,
                       const std::shared_ptr<Connection>& conn);
  /// Returns false when the connection was closed mid-processing.
  bool process_request(EventLoop& loop,
                       const std::shared_ptr<Connection>& conn,
                       const std::vector<std::uint8_t>& payload);
  /// Appends the encoded response to the connection's write buffer (the
  /// caller flushes once per read batch).
  void respond(const std::shared_ptr<Connection>& conn,
               const Response& resp);
  void pump_completions(EventLoop& loop,
                        const std::shared_ptr<Connection>& conn);
  void flush_writes(EventLoop& loop,
                    const std::shared_ptr<Connection>& conn);
  void close_conn(EventLoop& loop, const std::shared_ptr<Connection>& conn);
  /// Runs the drain state machine once (idempotent): quiesce the service,
  /// snapshot, sync journals. Later callers block until done, then no-op.
  void execute_drain();
  /// Flags every loop to close its connections once flushed (idempotent).
  void begin_graceful_close();
  void wake_acceptor() noexcept;
  void join_threads();

  cloud::ShardedDispatcher& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<std::size_t> next_loop_{0};

  std::thread acceptor_;
  int acceptor_wake_fd_ = -1;

  std::atomic<bool> draining_{false};
  std::atomic<bool> read_stopped_{false};   ///< loops stop processing input
  std::atomic<bool> graceful_close_{false};  ///< close conns once flushed
  std::atomic<bool> shutdown_loops_{false};  ///< loops close conns and exit
  std::atomic<bool> acceptor_stop_{false};
  std::atomic<bool> stopped_{false};

  std::mutex drain_mu_;  ///< serializes execute_drain; guards the fields below
  bool drain_done_ = false;
  std::uint64_t drain_hash_ = 0;
  std::uint64_t drain_bins_ = 0;
  double drain_cost_ = 0.0;

  std::mutex join_mu_;  ///< makes wait()/stop() joins safe to race

  /// Gate bookkeeping (options_.gate != nullptr only): the tenant and
  /// booked demand of every live job, so a Depart -- possibly on another
  /// connection -- releases exactly what its Arrive booked.
  std::mutex tenant_mu_;
  std::unordered_map<JobId, std::pair<TenantId, double>> tenant_of_job_;

  // Cached instruments (null when metrics are off).
  obs::Counter* connections_total_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* decode_errors_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Histogram* request_latency_ = nullptr;
};

}  // namespace dvbp::net
