// Load generator for the placement server (bench/bench_net.cpp, `harness
// loadgen`).
//
// Drives N concurrent connections with a synthetic arrive/depart mix and
// measures end-to-end request latency (send -> response, client side) and
// sustained throughput. Two modes:
//
//   * Closed loop (open_loop_rate == 0): each connection keeps a fixed
//     window of pipelined requests in flight and tops it up as responses
//     arrive -- the classic saturation measurement. RETRY_LATER responses
//     are counted and the slot is re-issued (for a depart, the job returns
//     to the live set), so the admitted-op count is exact.
//
//   * Open loop (open_loop_rate > 0): a sender thread per connection paces
//     requests at the target aggregate rate regardless of responses, while
//     a receiver thread drains them -- the mode that overruns the server
//     on purpose and makes backpressure visible: RETRY_LATER responses are
//     counted, never retried.
//
//   * Trace replay (trace_path set): closed-loop replay of a recorded
//     binary trace (src/trace/). Items are partitioned across connections
//     by id; each connection streams its partition's arrive/depart events
//     in trace order through its pipeline window, mapping trace items to
//     server job ids as admissions resolve. A depart whose arrival is
//     still in flight stalls the window (never reorders), so the server
//     observes a per-connection event order consistent with the trace.
//
// Latencies are recorded exactly (one sample per OK response; sorted at
// the end), so p999 is a real order statistic, not an interpolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dvbp::net {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 1;
  std::size_t dim = 2;
  /// Fraction of requests that depart a previously admitted job (the rest
  /// are arrivals); drawn per request from a per-connection PRNG.
  double depart_fraction = 0.45;
  std::uint64_t seed = 42;

  // Closed loop.
  std::size_t window = 64;
  std::uint64_t requests_per_connection = 10000;

  // Open loop: aggregate target rate (requests/s across all connections);
  // 0 selects closed loop. Runs for `duration_s` wall seconds.
  double open_loop_rate = 0.0;
  double duration_s = 1.0;

  // Trace replay: path to a binary trace file (docs/TRACES.md). When set,
  // the synthetic mix is replaced by the trace's event stream (closed
  // loop only; dim/depart_fraction/requests_per_connection are ignored).
  std::string trace_path;
};

struct LoadgenResult {
  std::uint64_t requests_sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t retry_later = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t unknown_job = 0;
  std::uint64_t other_errors = 0;
  double elapsed_s = 0.0;
  /// OK responses per wall second (applied placements + departures).
  double throughput_rps = 0.0;
  // Exact order statistics over OK-response latencies, nanoseconds.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
  std::uint64_t samples = 0;
};

/// Runs the configured workload to completion and aggregates across
/// connections. Throws NetError when a connection cannot be established or
/// dies mid-run (the server closing a draining connection is an error
/// here: the loadgen is meant to finish before any drain).
LoadgenResult run_loadgen(const LoadgenOptions& options);

}  // namespace dvbp::net
