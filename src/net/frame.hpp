// Wire protocol of the placement server (docs/PROTOCOL.md).
//
// Frames reuse the CRC32 length-prefixed layout of the write-ahead journal
// (src/persist/journal.hpp), little-endian throughout (asserted at compile
// time in core/serial.hpp):
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// Request payload:
//   u64 request_id | u8 type | body
//     kArrive:   f64 time | f64 expected_departure | u32 dim | dim x f64
//                [ u32 tenant ]  (trailing, only when the client labeled
//                                 the job -- pre-tenancy frames stop at
//                                 the size vector and still decode)
//     kDepart:   f64 time | u64 job
//     kQuery:    f64 time
//     kSnapshot: (empty)
//     kDrain:    (empty)
//     kPing:     (empty)
//
// Response payload:
//   u64 request_id | u8 type | u8 status | body (kOk only)
//     kArrive:   u64 job
//     kDepart:   (empty)
//     kQuery:    f64 cost | u64 open_bins | u64 jobs_active | u64 jobs_admitted
//     kSnapshot: u64 packing_hash | u64 num_bins | f64 cost
//     kDrain:    u64 packing_hash | u64 num_bins | f64 cost
//     kPing:     (empty)
//
// A frame is either wholly valid (sane length, CRC match, body parses and
// is fully consumed) or the connection is broken: unlike the journal's
// torn-tail tolerance, a corrupt frame on a live socket means the peer and
// we disagree about framing, and resynchronization is impossible -- the
// decoder throws FrameError and the server closes the connection (counted
// by dvbp.net.decode_errors_total, fuzzed in tests/test_net_frame.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"

namespace dvbp::net {

/// Thrown on malformed wire bytes (bad length, CRC mismatch, body that
/// does not parse). The connection that produced them must be closed.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// u32 len + u32 crc32.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// One frame is one request/response; anything claiming more than this is
/// corruption (matches the journal's bound for the same reason).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  kArrive = 1,
  kDepart = 2,
  kQuery = 3,
  kSnapshot = 4,
  kDrain = 5,
  kPing = 6,
};

enum class Status : std::uint8_t {
  kOk = 0,
  /// Admission control: shard queue full or the per-connection in-flight
  /// window exhausted. The request was NOT applied; retry after backoff.
  kRetryLater = 1,
  /// Request decoded but failed validation (dimension mismatch, size
  /// outside [0,1]^d, non-increasing departure...). Never applied.
  kBadRequest = 2,
  /// Depart for a job the service does not know or that already departed.
  kUnknownJob = 3,
  /// Server is draining: no new arrive/depart is admitted.
  kShuttingDown = 4,
  /// Snapshot requested while ops were in flight (needs quiescence).
  kNotQuiescent = 5,
  kInternalError = 6,
};

/// Human-readable status name (for logs and the loadgen report).
std::string_view status_name(Status s) noexcept;

struct Request {
  std::uint64_t id = 0;
  MsgType type = MsgType::kPing;
  Time time = 0.0;  ///< kArrive / kDepart / kQuery
  std::uint64_t job = 0;  ///< kDepart
  Time expected_departure =
      std::numeric_limits<Time>::infinity();  ///< kArrive
  RVec size;                                  ///< kArrive
  /// kArrive: tenant label; kNoTenant (the default) is never put on the
  /// wire, so unlabeled requests are byte-identical to the old protocol.
  TenantId tenant = kNoTenant;
};

struct Response {
  std::uint64_t id = 0;
  MsgType type = MsgType::kPing;
  Status status = Status::kOk;
  std::uint64_t job = 0;  ///< kArrive
  // kQuery:
  double cost = 0.0;  ///< also kSnapshot / kDrain
  std::uint64_t open_bins = 0;
  std::uint64_t jobs_active = 0;
  std::uint64_t jobs_admitted = 0;
  // kSnapshot / kDrain:
  std::uint64_t packing_hash = 0;
  std::uint64_t num_bins = 0;
};

/// Encodes `req` as one frame (header + payload) appended to `out`.
void encode_request(const Request& req, std::vector<std::uint8_t>& out);

/// Encodes `resp` as one frame appended to `out`.
void encode_response(const Response& resp, std::vector<std::uint8_t>& out);

/// Parses one request payload (the bytes after the frame header). Throws
/// FrameError when the body is malformed or not fully consumed.
Request decode_request(const std::uint8_t* payload, std::size_t len);

/// Parses one response payload. Throws FrameError on malformed bytes.
Response decode_response(const std::uint8_t* payload, std::size_t len);

/// Streaming frame reassembly over a byte stream: feed() raw socket bytes
/// in whatever chunks recv(2) produced, then drain complete payloads with
/// next(). Partial frames are buffered until their remainder arrives; the
/// buffer is compacted as frames are consumed, so steady-state memory is
/// one partial frame, not the connection's history.
class FrameDecoder {
 public:
  /// Appends raw bytes. Throws FrameError as soon as the buffered prefix
  /// is provably corrupt (implausible length or CRC mismatch on a complete
  /// frame) -- the caller must close the connection.
  void feed(const std::uint8_t* data, std::size_t len);

  /// Returns the next complete payload, or nullopt when more bytes are
  /// needed. Throws FrameError on corruption (see feed()).
  std::optional<std::vector<std::uint8_t>> next();

  /// Bytes currently buffered (partial frame + unconsumed completes).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  void check_header() const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace dvbp::net
