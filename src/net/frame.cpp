#include "net/frame.hpp"

#include <cstring>

#include "core/serial.hpp"

namespace dvbp::net {

namespace {

/// Body sanity bound: one arrive carries one RVec (journal uses the same
/// cap for the same reason).
constexpr std::uint32_t kMaxDim = 1024;

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MsgType::kArrive) &&
         t <= static_cast<std::uint8_t>(MsgType::kPing);
}

void append_frame(const serial::Writer& payload,
                  std::vector<std::uint8_t>& out) {
  serial::Writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(serial::crc32(payload.bytes()));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
}

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRetryLater: return "retry-later";
    case Status::kBadRequest: return "bad-request";
    case Status::kUnknownJob: return "unknown-job";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kNotQuiescent: return "not-quiescent";
    case Status::kInternalError: return "internal-error";
  }
  return "unknown";
}

void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  serial::Writer payload;
  payload.u64(req.id);
  payload.u8(static_cast<std::uint8_t>(req.type));
  switch (req.type) {
    case MsgType::kArrive:
      payload.f64(req.time);
      payload.f64(req.expected_departure);
      payload.u32(static_cast<std::uint32_t>(req.size.dim()));
      for (double c : req.size) payload.f64(c);
      // Optional trailing tenant label (see header comment).
      if (req.tenant != kNoTenant) payload.u32(req.tenant);
      break;
    case MsgType::kDepart:
      payload.f64(req.time);
      payload.u64(req.job);
      break;
    case MsgType::kQuery:
      payload.f64(req.time);
      break;
    case MsgType::kSnapshot:
    case MsgType::kDrain:
    case MsgType::kPing:
      break;
  }
  append_frame(payload, out);
}

void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  serial::Writer payload;
  payload.u64(resp.id);
  payload.u8(static_cast<std::uint8_t>(resp.type));
  payload.u8(static_cast<std::uint8_t>(resp.status));
  if (resp.status == Status::kOk) {
    switch (resp.type) {
      case MsgType::kArrive:
        payload.u64(resp.job);
        break;
      case MsgType::kDepart:
      case MsgType::kPing:
        break;
      case MsgType::kQuery:
        payload.f64(resp.cost);
        payload.u64(resp.open_bins);
        payload.u64(resp.jobs_active);
        payload.u64(resp.jobs_admitted);
        break;
      case MsgType::kSnapshot:
      case MsgType::kDrain:
        payload.u64(resp.packing_hash);
        payload.u64(resp.num_bins);
        payload.f64(resp.cost);
        break;
    }
  }
  append_frame(payload, out);
}

Request decode_request(const std::uint8_t* payload, std::size_t len) {
  try {
    serial::Reader in(payload, len);
    Request req;
    req.id = in.u64();
    const std::uint8_t type = in.u8();
    if (!valid_type(type)) {
      throw FrameError("request: unknown message type " +
                       std::to_string(type));
    }
    req.type = static_cast<MsgType>(type);
    switch (req.type) {
      case MsgType::kArrive: {
        req.time = in.f64();
        req.expected_departure = in.f64();
        const std::uint32_t dim = in.u32();
        if (dim == 0 || dim > kMaxDim) {
          throw FrameError("request: implausible dimension " +
                           std::to_string(dim));
        }
        RVec size(dim);
        for (std::uint32_t j = 0; j < dim; ++j) size[j] = in.f64();
        req.size = std::move(size);
        if (!in.done()) req.tenant = in.u32();
        break;
      }
      case MsgType::kDepart:
        req.time = in.f64();
        req.job = in.u64();
        break;
      case MsgType::kQuery:
        req.time = in.f64();
        break;
      case MsgType::kSnapshot:
      case MsgType::kDrain:
      case MsgType::kPing:
        break;
    }
    if (!in.done()) {
      throw FrameError("request: trailing bytes after body");
    }
    return req;
  } catch (const serial::SerialError& e) {
    throw FrameError(std::string("request: ") + e.what());
  }
}

Response decode_response(const std::uint8_t* payload, std::size_t len) {
  try {
    serial::Reader in(payload, len);
    Response resp;
    resp.id = in.u64();
    const std::uint8_t type = in.u8();
    if (!valid_type(type)) {
      throw FrameError("response: unknown message type " +
                       std::to_string(type));
    }
    resp.type = static_cast<MsgType>(type);
    const std::uint8_t status = in.u8();
    if (status > static_cast<std::uint8_t>(Status::kInternalError)) {
      throw FrameError("response: unknown status " + std::to_string(status));
    }
    resp.status = static_cast<Status>(status);
    if (resp.status == Status::kOk) {
      switch (resp.type) {
        case MsgType::kArrive:
          resp.job = in.u64();
          break;
        case MsgType::kDepart:
        case MsgType::kPing:
          break;
        case MsgType::kQuery:
          resp.cost = in.f64();
          resp.open_bins = in.u64();
          resp.jobs_active = in.u64();
          resp.jobs_admitted = in.u64();
          break;
        case MsgType::kSnapshot:
        case MsgType::kDrain:
          resp.packing_hash = in.u64();
          resp.num_bins = in.u64();
          resp.cost = in.f64();
          break;
      }
    }
    if (!in.done()) {
      throw FrameError("response: trailing bytes after body");
    }
    return resp;
  } catch (const serial::SerialError& e) {
    throw FrameError(std::string("response: ") + e.what());
  }
}

void FrameDecoder::check_header() const {
  serial::Reader header(buf_.data() + pos_, kFrameHeaderBytes);
  const std::uint32_t len = header.u32();
  if (len > kMaxPayloadBytes) {
    throw FrameError("frame: implausible payload length " +
                     std::to_string(len));
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  // Compact before growing: drop the consumed prefix once it dominates the
  // buffer so a long-lived connection's memory stays O(partial frame).
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  // Reject an implausible length as soon as the header is complete: no
  // point buffering towards a 4 GiB "frame" that can never be valid.
  if (buffered() >= kFrameHeaderBytes) check_header();
}

std::optional<std::vector<std::uint8_t>> FrameDecoder::next() {
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  check_header();
  serial::Reader header(buf_.data() + pos_, kFrameHeaderBytes);
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  if (buffered() - kFrameHeaderBytes < len) return std::nullopt;
  const std::uint8_t* payload = buf_.data() + pos_ + kFrameHeaderBytes;
  if (serial::crc32(payload, len) != crc) {
    throw FrameError("frame: CRC mismatch");
  }
  std::vector<std::uint8_t> out(payload, payload + len);
  pos_ += kFrameHeaderBytes + len;
  return out;
}

}  // namespace dvbp::net
