#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/packing.hpp"
#include "core/packing_hash.hpp"

namespace dvbp::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// A connection whose unflushed responses exceed this is not reading what
/// it asked for; close it rather than buffer without bound. (Arrive/Depart
/// responses are already bounded by the in-flight window; this bounds the
/// inline-answered types: Ping, Query, rejections.)
constexpr std::size_t kMaxWriteBuffer = 16 * 1024 * 1024;

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::chrono::steady_clock::time_point now_tp() {
  return std::chrono::steady_clock::now();
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection / EventLoop

struct PlacementServer::Connection
    : cloud::CompletionSink,
      std::enable_shared_from_this<Connection> {
  struct Pending {
    MsgType type = MsgType::kPing;
    std::chrono::steady_clock::time_point received{};
  };

  PlacementServer* server = nullptr;
  EventLoop* loop = nullptr;

  // Loop-thread-only state. `fd` doubles as the liveness flag on the loop
  // thread (-1 once closed); shard workers must use `closed` instead.
  int fd = -1;
  FrameDecoder decoder;
  std::vector<std::uint8_t> write_buf;
  std::size_t write_pos = 0;
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool close_after_flush = false;

  // Shared with shard workers, guarded by `mu`.
  std::mutex mu;
  bool closed = false;
  /// Encoded completion responses awaiting pickup by the loop thread.
  std::vector<std::uint8_t> completed;
  std::uint64_t completed_frames = 0;
  /// request_id -> in-flight op (entered *before* submission: the
  /// completion can fire before try_arrive/try_depart even returns).
  std::unordered_map<std::uint64_t, Pending> pending;

  /// Accepted-but-unanswered ops (admission window).
  std::atomic<std::size_t> inflight{0};

  void op_applied(std::uint64_t cookie, JobId job) noexcept override;
};

struct PlacementServer::EventLoop {
  PlacementServer* server = nullptr;
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;

  // Inbox: filled by the acceptor (new connections) and shard workers
  // (completion flushes), drained by the loop thread on each wake.
  std::mutex inbox_mu;
  std::vector<std::shared_ptr<Connection>> incoming;
  std::vector<std::shared_ptr<Connection>> flushes;
  /// Dedupes eventfd writes: one wake covers any number of inbox pushes.
  std::atomic<bool> wake_pending{false};

  // Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;

  ~EventLoop() {
    if (epfd >= 0) ::close(epfd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void notify() noexcept {
    if (!wake_pending.exchange(true, std::memory_order_acq_rel)) {
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
    }
  }

  /// Called by shard workers from op_applied: hand the connection to the
  /// loop thread for response pickup. noexcept: an allocation failure here
  /// leaves the response staged in conn->completed, to be collected on the
  /// connection's next pump.
  void schedule_flush(std::shared_ptr<Connection> conn) noexcept {
    try {
      {
        std::lock_guard<std::mutex> lock(inbox_mu);
        flushes.push_back(std::move(conn));
      }
      notify();
    } catch (...) {
    }
  }
};

void PlacementServer::Connection::op_applied(std::uint64_t cookie,
                                             JobId job) noexcept {
  const auto applied_at = now_tp();
  std::chrono::nanoseconds latency{0};
  bool deliver = false;
  try {
    {
      std::lock_guard<std::mutex> lock(mu);
      // A closed connection has its pending map cleared, so a completion
      // that raced the close drops out here -- and, crucially, never
      // touches `loop`, which may be tearing down by then.
      auto it = pending.find(cookie);
      if (closed || it == pending.end()) return;
      latency = applied_at - it->second.received;
      Response resp;
      resp.id = cookie;
      resp.type = it->second.type;
      resp.status = Status::kOk;
      resp.job = job;
      pending.erase(it);
      encode_response(resp, completed);
      ++completed_frames;
      deliver = true;
    }
    inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (server->request_latency_ != nullptr) {
      server->request_latency_->observe(
          static_cast<double>(latency.count()));
    }
    if (deliver) loop->schedule_flush(shared_from_this());
  } catch (...) {
    // Allocation failure encoding the response: the client will see the
    // connection close (or time out) rather than a missing frame.
  }
}

// ---------------------------------------------------------------------------
// Signal hookup

namespace {
std::atomic<PlacementServer*> g_signal_server{nullptr};

extern "C" void dvbp_net_signal_handler(int) {
  PlacementServer* s = g_signal_server.load(std::memory_order_relaxed);
  if (s != nullptr) s->request_drain();  // atomic store + eventfd write
}
}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

PlacementServer::PlacementServer(cloud::ShardedDispatcher& service,
                                 ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.event_loops == 0) {
    throw std::invalid_argument("PlacementServer: event_loops must be >= 1");
  }
  if (options_.max_inflight_per_conn == 0) {
    throw std::invalid_argument(
        "PlacementServer: max_inflight_per_conn must be >= 1");
  }

  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    connections_total_ = &m.counter("dvbp.net.connections_total");
    connections_active_ = &m.gauge("dvbp.net.connections_active");
    frames_in_ = &m.counter("dvbp.net.frames_in_total");
    frames_out_ = &m.counter("dvbp.net.frames_out_total");
    bytes_in_ = &m.counter("dvbp.net.bytes_in_total");
    bytes_out_ = &m.counter("dvbp.net.bytes_out_total");
    decode_errors_ = &m.counter("dvbp.net.decode_errors_total");
    requests_total_ = &m.counter("dvbp.net.requests_total");
    backpressure_ = &m.counter("dvbp.net.backpressure_rejections_total");
    request_latency_ = &m.histogram("dvbp.net.request_latency_ns",
                                    obs::default_latency_bounds_ns());
  }

  // All fds first (cleanup on failure), threads last.
  auto fail = [this](const std::string& why) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (acceptor_wake_fd_ >= 0) ::close(acceptor_wake_fd_);
    loops_.clear();  // ~EventLoop closes its fds
    throw NetError(why);
  };

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) fail(errno_str("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    fail("PlacementServer: bad listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    fail(errno_str("bind"));
  }
  if (::listen(listen_fd_, 128) < 0) fail(errno_str("listen"));

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &blen) < 0) {
    fail(errno_str("getsockname"));
  }
  port_ = ntohs(bound.sin_port);

  acceptor_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (acceptor_wake_fd_ < 0) fail(errno_str("eventfd"));

  loops_.reserve(options_.event_loops);
  for (std::size_t i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->server = this;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epfd < 0 || loop->wake_fd < 0) {
      loops_.push_back(std::move(loop));  // so fail() closes its fds
      fail(errno_str("epoll_create1/eventfd"));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev) < 0) {
      loops_.push_back(std::move(loop));
      fail(errno_str("epoll_ctl(wake)"));
    }
    loops_.push_back(std::move(loop));
  }

  try {
    for (auto& loop : loops_) {
      EventLoop* l = loop.get();
      l->thread = std::thread([this, l] { loop_run(*l); });
    }
    acceptor_ = std::thread([this] { acceptor_run(); });
  } catch (...) {
    shutdown_loops_.store(true);
    acceptor_stop_.store(true);
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) {
        loop->notify();
        loop->thread.join();
      }
    }
    if (acceptor_.joinable()) {
      wake_acceptor();
      acceptor_.join();
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (acceptor_wake_fd_ >= 0) ::close(acceptor_wake_fd_);
    loops_.clear();
    throw;
  }
}

PlacementServer::~PlacementServer() {
  stop();
  PlacementServer* self = this;
  g_signal_server.compare_exchange_strong(self, nullptr);
  if (acceptor_wake_fd_ >= 0) ::close(acceptor_wake_fd_);
  // listen_fd_ is closed by the acceptor thread on exit (or by stop()).
}

void PlacementServer::wake_acceptor() noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(acceptor_wake_fd_, &one, sizeof(one));
}

void PlacementServer::request_drain() noexcept {
  draining_.store(true, std::memory_order_release);
  wake_acceptor();
}

void PlacementServer::install_signal_drain(int signo) {
  PlacementServer* expected = nullptr;
  if (!g_signal_server.compare_exchange_strong(expected, this) &&
      expected != this) {
    throw std::logic_error(
        "install_signal_drain: another PlacementServer owns the handlers");
  }
  struct sigaction sa{};
  sa.sa_handler = &dvbp_net_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (::sigaction(signo, &sa, nullptr) != 0) {
    throw NetError(errno_str("sigaction"));
  }
}

void PlacementServer::wait() { join_threads(); }

void PlacementServer::join_threads() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
}

void PlacementServer::stop() {
  bool expected = false;
  if (stopped_.compare_exchange_strong(expected, true)) {
    // seq_cst store order matters: a thread that observes draining_ must
    // also observe shutdown_loops_, so nobody starts a graceful drain in
    // response to a hard stop.
    shutdown_loops_.store(true);
    acceptor_stop_.store(true);
    draining_.store(true);
    read_stopped_.store(true);
    wake_acceptor();
    for (auto& loop : loops_) loop->notify();
  }
  join_threads();
  // Ops submitted by the loops' final iterations may still be in flight on
  // shard workers; wait them out so no completion can run concurrently
  // with our destruction. (Completions fire before an op counts as
  // applied, so drain() returning bounds op_applied too.)
  try {
    service_.drain();
  } catch (...) {
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Drain state machine

void PlacementServer::execute_drain() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  if (drain_done_) return;
  draining_.store(true, std::memory_order_release);
  acceptor_stop_.store(true, std::memory_order_release);
  wake_acceptor();
  // Quiesce. A request that raced the draining_ flag can slip one more op
  // in after a drain() returns; each loop admits finitely many such
  // stragglers before it observes the flag, so this converges.
  for (;;) {
    try {
      service_.drain();
    } catch (...) {
      // Worker-side error (e.g. journal failure): the placement state is
      // still consistent and worth reporting; the error stays readable
      // through the service's next drain().
    }
    try {
      const Packing p = service_.snapshot();
      drain_hash_ = packing_hash(p);
      drain_bins_ = p.num_bins();
      drain_cost_ = p.cost();
      break;
    } catch (const std::logic_error&) {
      continue;  // ops slipped in: drain again
    }
  }
  service_.sync_journals();
  drain_done_ = true;
}

void PlacementServer::begin_graceful_close() {
  graceful_close_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->notify();
}

// ---------------------------------------------------------------------------
// Acceptor

void PlacementServer::acceptor_run() {
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.events = EPOLLIN;
    ev.data.fd = acceptor_wake_fd_;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, acceptor_wake_fd_, &ev);
    std::array<epoll_event, 4> events{};
    while (!acceptor_stop_.load(std::memory_order_acquire) &&
           !draining_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epfd, events.data(),
                                 static_cast<int>(events.size()), -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == acceptor_wake_fd_) {
          std::uint64_t v = 0;
          while (::read(acceptor_wake_fd_, &v, sizeof(v)) > 0) {
          }
        } else {
          handle_accept();
        }
      }
    }
    ::close(epfd);
  }
  // Stop taking connections before the drain quiesces the service.
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (draining_.load() && !shutdown_loops_.load()) {
    // Drain requested out-of-band (signal / request_drain): run it here.
    // If a Drain RPC is already running it, execute_drain() just waits.
    execute_drain();
    begin_graceful_close();
  }
}

void PlacementServer::handle_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient (EMFILE...): retry on next wake
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->server = this;
    conn->fd = fd;
    EventLoop& loop =
        *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                loops_.size()];
    conn->loop = &loop;
    if (connections_total_ != nullptr) connections_total_->inc();
    if (connections_active_ != nullptr) connections_active_->add(1.0);
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mu);
      loop.incoming.push_back(std::move(conn));
    }
    loop.notify();
  }
}

// ---------------------------------------------------------------------------
// Event loop

void PlacementServer::loop_run(EventLoop& loop) {
  std::array<epoll_event, 64> events{};
  std::vector<std::shared_ptr<Connection>> incoming;
  std::vector<std::shared_ptr<Connection>> flushes;
  for (;;) {
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t v = 0;
        while (::read(loop.wake_fd, &v, sizeof(v)) > 0) {
        }
        // Reset before draining the inbox: a push that misses this drain
        // rearms the eventfd and gets the next one.
        loop.wake_pending.store(false, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lock(loop.inbox_mu);
          incoming.swap(loop.incoming);
          flushes.swap(loop.flushes);
        }
        for (auto& conn : incoming) register_conn(loop, conn);
        incoming.clear();
        for (auto& conn : flushes) pump_completions(loop, conn);
        flushes.clear();
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> conn = it->second;  // close erases the map
      const std::uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(loop, conn);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) flush_writes(loop, conn);
      if (conn->fd >= 0 && (ev & EPOLLIN) != 0) handle_readable(loop, conn);
    }
    if (shutdown_loops_.load(std::memory_order_acquire)) {
      while (!loop.conns.empty()) {
        close_conn(loop, loop.conns.begin()->second);
      }
      break;
    }
    if (graceful_close_.load(std::memory_order_acquire)) {
      // Close-out sweep: every connection closes once its last response is
      // flushed. Snapshot the map first -- closing mutates it.
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(loop.conns.size());
      for (auto& [cfd, c] : loop.conns) all.push_back(c);
      for (auto& c : all) {
        c->close_after_flush = true;
        pump_completions(loop, c);  // also flushes and closes when empty
      }
      if (loop.conns.empty()) break;
    }
  }
}

void PlacementServer::register_conn(EventLoop& loop,
                                    const std::shared_ptr<Connection>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
    ::close(conn->fd);
    conn->fd = -1;
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    if (connections_active_ != nullptr) connections_active_->add(-1.0);
    return;
  }
  loop.conns.emplace(conn->fd, conn);
  if (graceful_close_.load(std::memory_order_acquire)) {
    conn->close_after_flush = true;  // late arrival during drain
  }
}

void PlacementServer::handle_readable(
    EventLoop& loop, const std::shared_ptr<Connection>& conn) {
  if (read_stopped_.load(std::memory_order_acquire)) return;
  std::uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (bytes_in_ != nullptr) {
        bytes_in_->inc(static_cast<std::uint64_t>(n));
      }
      try {
        conn->decoder.feed(buf, static_cast<std::size_t>(n));
        for (;;) {
          auto payload = conn->decoder.next();
          if (!payload.has_value()) break;
          if (frames_in_ != nullptr) frames_in_->inc();
          if (!process_request(loop, conn, *payload)) return;
        }
      } catch (const FrameError&) {
        if (decode_errors_ != nullptr) decode_errors_->inc();
        close_conn(loop, conn);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // drained
    } else if (n == 0) {
      close_conn(loop, conn);  // peer closed
      return;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      close_conn(loop, conn);
      return;
    }
  }
  flush_writes(loop, conn);  // push out the responses this batch produced
}

bool PlacementServer::process_request(
    EventLoop& loop, const std::shared_ptr<Connection>& conn,
    const std::vector<std::uint8_t>& payload) {
  Request req;
  try {
    req = decode_request(payload.data(), payload.size());
  } catch (const FrameError&) {
    if (decode_errors_ != nullptr) decode_errors_->inc();
    close_conn(loop, conn);
    return false;
  }
  if (requests_total_ != nullptr) requests_total_->inc();

  Response resp;
  resp.id = req.id;
  resp.type = req.type;

  switch (req.type) {
    case MsgType::kPing:
      respond(conn, resp);
      return true;

    case MsgType::kQuery:
      try {
        resp.cost = service_.cost_so_far(req.time);
        resp.open_bins = service_.open_bins();
        resp.jobs_active = service_.jobs_active();
        resp.jobs_admitted = service_.jobs_admitted();
      } catch (const std::invalid_argument&) {
        resp.status = Status::kBadRequest;
      } catch (...) {
        resp.status = Status::kInternalError;
      }
      respond(conn, resp);
      return true;

    case MsgType::kSnapshot:
      try {
        const Packing p = service_.snapshot();
        resp.packing_hash = packing_hash(p);
        resp.num_bins = p.num_bins();
        resp.cost = p.cost();
      } catch (const std::logic_error&) {
        resp.status = Status::kNotQuiescent;
      } catch (...) {
        resp.status = Status::kInternalError;
      }
      respond(conn, resp);
      return true;

    case MsgType::kDrain:
      try {
        execute_drain();
        {
          std::lock_guard<std::mutex> lock(drain_mu_);
          resp.packing_hash = drain_hash_;
          resp.num_bins = drain_bins_;
          resp.cost = drain_cost_;
        }
      } catch (...) {
        resp.status = Status::kInternalError;
      }
      respond(conn, resp);
      // The drain response is this connection's last frame; the close-out
      // sweep flushes it and closes every connection.
      begin_graceful_close();
      return conn->fd >= 0;

    case MsgType::kArrive:
    case MsgType::kDepart:
      break;
  }

  // Arrive / Depart: asynchronous, answered by the completion hookup.
  if (draining_.load(std::memory_order_acquire)) {
    resp.status = Status::kShuttingDown;
    respond(conn, resp);
    return true;
  }
  if (conn->inflight.load(std::memory_order_acquire) >=
      options_.max_inflight_per_conn) {
    if (backpressure_ != nullptr) backpressure_->inc();
    resp.status = Status::kRetryLater;
    respond(conn, resp);
    return true;
  }

  // Enter the pending map before submitting: the completion can fire on a
  // shard worker before try_arrive/try_depart even returns.
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    duplicate = !conn->pending
                     .emplace(req.id,
                              Connection::Pending{req.type, now_tp()})
                     .second;
  }
  if (duplicate) {
    resp.status = Status::kBadRequest;  // request id already in flight
    respond(conn, resp);
    return true;
  }
  conn->inflight.fetch_add(1, std::memory_order_acq_rel);

  // Tenant admission gate: decided in the front-end, before the service
  // ever sees the op, so the decision sequence is shard-count-independent.
  // A denial is a typed RETRY_LATER -- the client backs off and retries,
  // never queues invisibly.
  const double gate_units =
      req.type == MsgType::kArrive ? req.size.linf() : 0.0;
  bool gated = false;
  if (options_.gate != nullptr && req.type == MsgType::kArrive) {
    if (!options_.gate->admit(req.time, req.tenant, req.size, req.id)) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->pending.erase(req.id);
      }
      conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (backpressure_ != nullptr) backpressure_->inc();
      resp.status = Status::kRetryLater;
      respond(conn, resp);
      return true;
    }
    gated = true;
  }

  bool accepted = false;
  Status failure = Status::kRetryLater;
  try {
    if (req.type == MsgType::kArrive) {
      const TenantId tenant = req.tenant;
      const auto job =
          service_.try_arrive(req.time, std::move(req.size),
                              req.expected_departure, conn, req.id, tenant);
      accepted = job.has_value();
      if (accepted && options_.gate != nullptr) {
        std::lock_guard<std::mutex> lock(tenant_mu_);
        tenant_of_job_.emplace(*job, std::make_pair(tenant, gate_units));
      }
    } else {
      accepted = service_.try_depart(req.time, req.job, conn, req.id);
      if (accepted && options_.gate != nullptr) {
        // Release what the job's Arrive booked (possibly on another
        // connection); unknown ids were admitted before the gate existed.
        std::pair<TenantId, double> booked{kNoTenant, 0.0};
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(tenant_mu_);
          const auto it = tenant_of_job_.find(static_cast<JobId>(req.job));
          if (it != tenant_of_job_.end()) {
            booked = it->second;
            found = true;
            tenant_of_job_.erase(it);
          }
        }
        if (found) options_.gate->release_units(booked.first, booked.second);
      }
    }
  } catch (const std::invalid_argument&) {
    failure = req.type == MsgType::kArrive ? Status::kBadRequest
                                           : Status::kUnknownJob;
  } catch (...) {
    failure = Status::kInternalError;
  }
  if (!accepted) {
    // A gated-then-refused submission must give the booked demand back.
    if (gated) options_.gate->release_units(req.tenant, gate_units);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->pending.erase(req.id);
    }
    conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (failure == Status::kRetryLater && backpressure_ != nullptr) {
      backpressure_->inc();
    }
    resp.status = failure;
    respond(conn, resp);
  }
  return true;
}

void PlacementServer::respond(const std::shared_ptr<Connection>& conn,
                              const Response& resp) {
  if (conn->fd < 0) return;
  encode_response(resp, conn->write_buf);
  if (frames_out_ != nullptr) frames_out_->inc();
  // Not flushed here: handle_readable flushes once per read batch, which
  // coalesces pipelined responses into one write(2).
}

void PlacementServer::pump_completions(
    EventLoop& loop, const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  std::uint64_t frames = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->completed.empty()) {
      conn->write_buf.insert(conn->write_buf.end(), conn->completed.begin(),
                             conn->completed.end());
      conn->completed.clear();
      frames = conn->completed_frames;
      conn->completed_frames = 0;
    }
  }
  if (frames > 0 && frames_out_ != nullptr) frames_out_->inc(frames);
  flush_writes(loop, conn);
}

void PlacementServer::flush_writes(EventLoop& loop,
                                   const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  while (conn->write_pos < conn->write_buf.size()) {
    const ssize_t n =
        ::write(conn->fd, conn->write_buf.data() + conn->write_pos,
                conn->write_buf.size() - conn->write_pos);
    if (n > 0) {
      conn->write_pos += static_cast<std::size_t>(n);
      if (bytes_out_ != nullptr) {
        bytes_out_->inc(static_cast<std::uint64_t>(n));
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket full: arm EPOLLOUT and come back when it drains.
      if (!conn->want_write) {
        conn->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn->fd;
        ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      if (conn->write_pos > 0) {
        conn->write_buf.erase(
            conn->write_buf.begin(),
            conn->write_buf.begin() +
                static_cast<std::ptrdiff_t>(conn->write_pos));
        conn->write_pos = 0;
      }
      if (conn->write_buf.size() > kMaxWriteBuffer) {
        close_conn(loop, conn);  // peer is not reading its responses
      }
      return;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      close_conn(loop, conn);
      return;
    }
  }
  conn->write_buf.clear();
  conn->write_pos = 0;
  if (conn->want_write) {
    conn->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  if (conn->close_after_flush) {
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      idle = conn->completed.empty() && conn->pending.empty();
    }
    if (idle) close_conn(loop, conn);
  }
}

void PlacementServer::close_conn(EventLoop& loop,
                                 const std::shared_ptr<Connection>& conn) {
  // `conn` may alias the map's own shared_ptr (the shutdown sweep passes
  // `loop.conns.begin()->second` directly); keep a local owner so the
  // erase below cannot destroy the Connection out from under us.
  std::shared_ptr<Connection> keep = conn;
  if (keep->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(keep->mu);
    keep->closed = true;
    keep->pending.clear();  // completions in flight drop out harmlessly
    keep->completed.clear();
    keep->completed_frames = 0;
  }
  ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, keep->fd, nullptr);
  ::close(keep->fd);
  loop.conns.erase(keep->fd);
  keep->fd = -1;
  if (connections_active_ != nullptr) connections_active_->add(-1.0);
}

}  // namespace dvbp::net
