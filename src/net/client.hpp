// Blocking, pipelining client for the placement server (docs/PROTOCOL.md).
//
// Two usage styles:
//   * Synchronous: arrive()/depart()/query()/snapshot()/drain()/ping() send
//     one request, flush, and block for its response. They require an empty
//     pipeline (no outstanding pipelined requests) because responses to
//     Arrive/Depart are delivered in *completion* order, not send order.
//   * Pipelined: send_*() stamp a fresh request id and buffer the frame
//     (auto-flushing past a threshold); flush() pushes the buffer out;
//     recv_response() blocks for the next response frame, whatever request
//     it answers. The caller matches responses to requests by id. This is
//     what the load generator uses to keep a window of requests in flight.
//
// Thread-safety: at most one sending thread (send_*/flush) plus at most
// one receiving thread (recv_response) concurrently; the sync conveniences
// count as both. The open-loop load generator is exactly this split.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"  // NetError

namespace dvbp::net {

class Client {
 public:
  /// Resolves `host` (name or literal IP) and connects; throws NetError on
  /// failure. The socket is blocking with TCP_NODELAY.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Pipelined interface --------------------------------------------

  /// Buffer an Arrive; returns its request id. A tenant other than
  /// kNoTenant labels the arrival for the server-side admission gate.
  std::uint64_t send_arrive(Time now, const RVec& size,
                            Time expected_departure =
                                std::numeric_limits<Time>::infinity(),
                            TenantId tenant = kNoTenant);
  std::uint64_t send_depart(Time now, std::uint64_t job);
  std::uint64_t send_query(Time now);
  std::uint64_t send_snapshot();
  std::uint64_t send_drain();
  std::uint64_t send_ping();

  /// Writes every buffered frame to the socket (blocking).
  void flush();

  /// Blocks for the next response frame. Throws NetError when the server
  /// closed the connection, FrameError on corrupt bytes.
  Response recv_response();

  /// Requests sent whose responses have not been received yet.
  std::uint64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_acquire);
  }

  // --- Synchronous conveniences (empty pipeline required) -------------

  Response arrive(Time now, const RVec& size,
                  Time expected_departure =
                      std::numeric_limits<Time>::infinity(),
                  TenantId tenant = kNoTenant);
  Response depart(Time now, std::uint64_t job);
  Response query(Time now);
  Response snapshot();
  Response drain();
  Response ping();

  /// Closes the socket; every later call throws NetError.
  void close() noexcept;
  bool connected() const noexcept { return fd_ >= 0; }

 private:
  std::uint64_t stamp(Request& req);
  void require_empty_pipeline(const char* caller) const;
  Response roundtrip(const Request& req);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;           // sender thread only
  std::vector<std::uint8_t> send_buf_;  // sender thread only
  FrameDecoder decoder_;                // receiver thread only
  std::atomic<std::uint64_t> outstanding_{0};
};

}  // namespace dvbp::net
