// Lower bounds on the optimal offline cost OPT(R) -- Lemma 1 of the paper.
//
//   (i)   LB_height = integral of ceil(||s(R,t)||_inf) dt   (the tightest)
//   (ii)  LB_util   = (1/d) * sum_r ||s(r)||_inf * l(I(r))
//   (iii) LB_span   = span(R)
//
// The paper's experiments normalize algorithm cost by (i); bench_fig4 does
// the same. s(R,t) is piecewise constant between event timestamps, so (i)
// is an exact sweep, not a numerical quadrature.
#pragma once

#include "core/instance.hpp"

namespace dvbp {

struct LowerBounds {
  double height = 0.0;       ///< Lemma 1 (i)
  double utilization = 0.0;  ///< Lemma 1 (ii)
  double span = 0.0;         ///< Lemma 1 (iii)

  /// The best (largest) of the three; still a lower bound on OPT.
  double best() const noexcept;
};

/// Lemma 1 (i). Exact event sweep; O(n log n + n*d).
double lb_height(const Instance& inst);

/// Lemma 1 (ii).
double lb_utilization(const Instance& inst);

/// Lemma 1 (iii).
double lb_span(const Instance& inst);

/// All three in one sweep.
LowerBounds lower_bounds(const Instance& inst);

}  // namespace dvbp
