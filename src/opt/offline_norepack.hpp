// Offline packing WITHOUT repacking: each item is assigned to one bin for
// its whole life (as online algorithms must), but the assignment may use
// full knowledge of the future. This sits strictly between the online
// policies and the paper's OPT (which may repack continuously, eq. (2)):
//
//   OPT(repack) <= OPT(no-repack) <= cost(any online policy).
//
// Computing OPT(no-repack) exactly is NP-hard; this module provides a
// first-fit-by-duration seed plus steepest-descent local search (move one
// item to another feasible bin when it lowers total usage time), which is
// a strong practical upper bound. The gap between the two offline optima
// quantifies the value of migration/repacking; the gap between
// OPT(no-repack) and the online costs quantifies the value of
// clairvoyance alone.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/packing.hpp"

namespace dvbp {

struct NoRepackOptions {
  /// Local-search sweeps over all items; each sweep is O(n * bins * n).
  std::size_t max_sweeps = 50;
  /// Random restarts beyond the deterministic seed assignment.
  std::size_t restarts = 3;
  std::uint64_t seed = 0xBEEF;
};

struct NoRepackResult {
  Packing packing;     ///< best assignment found (validates clean)
  double cost = 0.0;
  std::size_t sweeps = 0;   ///< local-search sweeps actually performed
  std::size_t moves = 0;    ///< improving moves applied
};

/// Heuristic offline no-repacking packing of `inst`.
NoRepackResult offline_norepack(const Instance& inst,
                                const NoRepackOptions& opts = {});

}  // namespace dvbp
