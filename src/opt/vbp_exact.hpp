// Exact vector bin packing: the minimum number of unit bins that hold a set
// of d-dimensional sizes. NP-hard; solved by depth-first branch-and-bound
// with FFD priming, symmetry breaking (identical-load bins are tried once;
// at most one "open a new bin" branch per item), and a residual-demand lower
// bound for pruning.
//
// This powers the exact offline optimum via eq. (2) of the paper:
// OPT(R,t) is exactly this quantity for the items active at t.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rvec.hpp"

namespace dvbp {

struct VbpOptions {
  /// Abort knob: stop branching after this many search nodes and report the
  /// best packing found so far (result.exact = false).
  std::uint64_t node_limit = 20'000'000;
};

struct VbpResult {
  std::size_t bins = 0;       ///< min bins found (exact when `exact`)
  bool exact = true;          ///< false iff node_limit was exhausted
  std::uint64_t nodes = 0;    ///< search nodes expanded
};

/// Minimum number of unit bins packing `sizes`. Throws
/// std::invalid_argument when some size does not fit a unit bin.
VbpResult vbp_min_bins(const std::vector<RVec>& sizes,
                       const VbpOptions& opts = {});

}  // namespace dvbp
