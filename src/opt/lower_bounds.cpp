#include "opt/lower_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "core/event.hpp"
#include "core/types.hpp"  // robust_ceil (tolerances live in one place)

namespace dvbp {

double lb_height(const Instance& inst) {
  if (inst.empty()) return 0.0;
  const std::vector<Event> events = build_event_stream(inst);
  RVec load(inst.dim());
  double total = 0.0;
  Time prev = events.front().time;
  for (const Event& ev : events) {
    if (ev.time > prev) {
      total += robust_ceil(load.linf()) * (ev.time - prev);
      prev = ev.time;
    }
    if (ev.kind == EventKind::kArrival) {
      load += inst[ev.item].size;
    } else {
      load -= inst[ev.item].size;
      load.clamp_nonnegative();
    }
  }
  return total;
}

double lb_utilization(const Instance& inst) {
  if (inst.empty()) return 0.0;
  return inst.total_utilization() / static_cast<double>(inst.dim());
}

double lb_span(const Instance& inst) { return inst.span(); }

double LowerBounds::best() const noexcept {
  return std::max({height, utilization, span});
}

LowerBounds lower_bounds(const Instance& inst) {
  return LowerBounds{lb_height(inst), lb_utilization(inst), lb_span(inst)};
}

}  // namespace dvbp
