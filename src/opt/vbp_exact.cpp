#include "opt/vbp_exact.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "opt/ffd.hpp"
#include "core/types.hpp"  // robust_ceil

namespace dvbp {

namespace {

constexpr double kLoadEq = 1e-12;

bool loads_equal(const RVec& a, const RVec& b) noexcept {
  for (std::size_t j = 0; j < a.dim(); ++j) {
    const double diff = a[j] - b[j];
    if (diff > kLoadEq || diff < -kLoadEq) return false;
  }
  return true;
}

class Solver {
 public:
  Solver(std::vector<RVec> sizes, const VbpOptions& opts)
      : sizes_(std::move(sizes)), opts_(opts), dim_(sizes_.front().dim()) {
    // Largest-first order shrinks the search tree dramatically.
    std::stable_sort(sizes_.begin(), sizes_.end(),
                     [](const RVec& a, const RVec& b) {
                       return a.linf() > b.linf();
                     });
    // Suffix demand totals for the residual lower bound.
    suffix_.assign(sizes_.size() + 1, RVec(dim_));
    for (std::size_t i = sizes_.size(); i-- > 0;) {
      suffix_[i] = suffix_[i + 1];
      suffix_[i] += sizes_[i];
    }
  }

  VbpResult solve() {
    best_ = ffd_bin_count(sizes_);
    const auto lb0 = static_cast<std::size_t>(
        robust_ceil(suffix_[0].linf()));
    if (best_ <= std::max<std::size_t>(lb0, 1) || sizes_.size() <= 1) {
      return {best_, true, nodes_};  // FFD already optimal
    }
    bins_.clear();
    dfs(0);
    return {best_, !aborted_, nodes_};
  }

 private:
  void dfs(std::size_t i) {
    if (aborted_) return;
    if (++nodes_ > opts_.node_limit) {
      aborted_ = true;
      return;
    }
    if (i == sizes_.size()) {
      best_ = std::min(best_, bins_.size());
      return;
    }
    if (bins_.size() >= best_) return;  // can't improve
    if (bins_.size() + residual_lb(i) >= best_) return;

    const RVec& s = sizes_[i];
    // Try each existing bin, skipping bins whose load equals an
    // already-tried bin's load (placing into either is symmetric).
    for (std::size_t b = 0; b < bins_.size(); ++b) {
      if (!bins_[b].fits_with(s)) continue;
      bool duplicate = false;
      for (std::size_t c = 0; c < b; ++c) {
        if (loads_equal(bins_[b], bins_[c])) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bins_[b] += s;
      dfs(i + 1);
      bins_[b] -= s;
      bins_[b].clamp_nonnegative();
      if (aborted_) return;
    }
    // One canonical "new bin" branch. Opening beyond best_-1 bins cannot
    // lead to an improvement (bin counts never decrease down the tree).
    if (bins_.size() + 1 < best_) {
      bins_.push_back(s);
      dfs(i + 1);
      bins_.pop_back();
    }
  }

  /// Lower bound on *additional* bins needed for items i.. given current
  /// open-bin slack: demand exceeding total free capacity, per dimension.
  std::size_t residual_lb(std::size_t i) const {
    double worst = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) {
      double free_cap = 0.0;
      for (const RVec& b : bins_) free_cap += 1.0 - b[j];
      worst = std::max(worst, suffix_[i][j] - free_cap);
    }
    if (worst <= 0.0) return 0;
    return static_cast<std::size_t>(robust_ceil(worst));
  }

  std::vector<RVec> sizes_;
  const VbpOptions& opts_;
  std::size_t dim_;
  std::vector<RVec> suffix_;
  std::vector<RVec> bins_;
  std::size_t best_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

VbpResult vbp_min_bins(const std::vector<RVec>& sizes,
                       const VbpOptions& opts) {
  if (sizes.empty()) return {0, true, 0};
  for (const RVec& s : sizes) {
    if (!s.fits_in_capacity(1.0)) {
      throw std::invalid_argument("vbp_min_bins: item exceeds unit capacity");
    }
  }
  Solver solver(sizes, opts);
  return solver.solve();
}

}  // namespace dvbp
