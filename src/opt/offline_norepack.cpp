#include "opt/offline_norepack.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/interval_set.hpp"
#include "stats/rng.hpp"

namespace dvbp {

namespace {

/// A tentative bin: a set of item ids sharing one server for their lives.
using Group = std::vector<ItemId>;

/// Usage cost of a group: measure of the union of its items' intervals
/// (idle gaps are free -- a gapped bin splits into several at equal cost).
double group_cost(const Instance& inst, const Group& group) {
  IntervalSet usage;
  for (ItemId r : group) usage.add(inst[r].interval());
  return usage.measure();
}

/// True when the group never exceeds unit capacity in any dimension. The
/// load changes only at member arrivals, so checking at each member's
/// arrival instant suffices.
bool group_feasible(const Instance& inst, const Group& group,
                    ItemId extra = kNoItem) {
  auto load_ok_at = [&](Time t) {
    RVec load(inst.dim());
    for (ItemId r : group) {
      if (inst[r].active_at(t)) load += inst[r].size;
    }
    if (extra != kNoItem && inst[extra].active_at(t)) {
      load += inst[extra].size;
    }
    return load.fits_in_capacity(1.0);
  };
  for (ItemId r : group) {
    if (!load_ok_at(inst[r].arrival)) return false;
  }
  if (extra != kNoItem && !load_ok_at(inst[extra].arrival)) return false;
  return true;
}

/// Greedy seed: first-fit the items in the given order.
std::vector<Group> seed_assignment(const Instance& inst,
                                   const std::vector<ItemId>& order) {
  std::vector<Group> groups;
  for (ItemId r : order) {
    bool placed = false;
    for (Group& g : groups) {
      if (group_feasible(inst, g, r)) {
        g.push_back(r);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({r});
  }
  return groups;
}

double total_cost(const Instance& inst, const std::vector<Group>& groups) {
  double c = 0.0;
  for (const Group& g : groups) c += group_cost(inst, g);
  return c;
}

/// Steepest-feasible-descent: move single items between groups while the
/// total usage time drops.
void local_search(const Instance& inst, std::vector<Group>& groups,
                  const NoRepackOptions& opts, std::size_t* sweeps,
                  std::size_t* moves) {
  for (std::size_t sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (sweeps) ++*sweeps;
    bool improved = false;
    for (std::size_t src = 0; src < groups.size(); ++src) {
      for (std::size_t pos = 0; pos < groups[src].size(); ++pos) {
        const ItemId r = groups[src][pos];
        Group without = groups[src];
        without.erase(without.begin() + static_cast<std::ptrdiff_t>(pos));
        const double src_delta =
            group_cost(inst, without) - group_cost(inst, groups[src]);

        double best_delta = -1e-9;  // require strict improvement
        std::size_t best_dst = groups.size();
        for (std::size_t dst = 0; dst < groups.size(); ++dst) {
          if (dst == src) continue;
          if (!group_feasible(inst, groups[dst], r)) continue;
          Group with = groups[dst];
          with.push_back(r);
          const double dst_delta =
              group_cost(inst, with) - group_cost(inst, groups[dst]);
          const double delta = src_delta + dst_delta;
          if (delta < best_delta) {
            best_delta = delta;
            best_dst = dst;
          }
        }
        if (best_dst < groups.size()) {
          groups[best_dst].push_back(r);
          groups[src] = std::move(without);
          if (moves) ++*moves;
          improved = true;
          if (groups[src].empty()) {
            groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(src));
            --src;
            break;  // restart the inner scan of this (now different) group
          }
          --pos;  // positions shifted
        }
      }
    }
    if (!improved) break;
  }
}

/// Converts groups into a Packing, splitting gapped groups into one bin
/// per maximal contiguous usage interval (the model's bins never idle).
Packing to_packing(const Instance& inst, const std::vector<Group>& groups) {
  std::vector<BinId> assignment(inst.size(), kNoBin);
  std::vector<BinRecord> records;
  for (const Group& g : groups) {
    IntervalSet usage;
    for (ItemId r : g) usage.add(inst[r].interval());
    for (const Interval& part : usage.parts()) {
      BinRecord record;
      record.id = static_cast<BinId>(records.size());
      record.opened = part.lo;
      record.closed = part.hi;
      for (ItemId r : g) {
        if (part.covers(inst[r].interval())) {
          record.items.push_back(r);
          assignment[r] = record.id;
        }
      }
      std::sort(record.items.begin(), record.items.end(),
                [&](ItemId a, ItemId b) {
                  if (inst[a].arrival != inst[b].arrival) {
                    return inst[a].arrival < inst[b].arrival;
                  }
                  return a < b;
                });
      records.push_back(std::move(record));
    }
  }
  return Packing(std::move(assignment), std::move(records));
}

}  // namespace

NoRepackResult offline_norepack(const Instance& inst,
                                const NoRepackOptions& opts) {
  if (auto err = inst.validate()) {
    throw std::invalid_argument("offline_norepack: invalid instance: " +
                                *err);
  }
  NoRepackResult result;
  if (inst.empty()) return result;

  // Deterministic seed: longest-duration first (long items anchor bins).
  std::vector<ItemId> order(inst.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (inst[a].duration() != inst[b].duration()) {
      return inst[a].duration() > inst[b].duration();
    }
    return a < b;
  });

  Xoshiro256pp rng(opts.seed);
  std::vector<Group> best;
  double best_cost = 0.0;
  for (std::size_t attempt = 0; attempt <= opts.restarts; ++attempt) {
    if (attempt > 0) {
      for (std::size_t i = order.size() - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i)));
        std::swap(order[i], order[j]);
      }
    }
    std::vector<Group> groups = seed_assignment(inst, order);
    local_search(inst, groups, opts, &result.sweeps, &result.moves);
    const double cost = total_cost(inst, groups);
    if (best.empty() || cost < best_cost) {
      best = std::move(groups);
      best_cost = cost;
    }
  }

  result.packing = to_packing(inst, best);
  result.cost = result.packing.cost();
  return result;
}

}  // namespace dvbp
