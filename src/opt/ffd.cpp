#include "opt/ffd.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dvbp {

std::size_t ffd_pack(const std::vector<RVec>& sizes,
                     std::vector<std::size_t>* assignment) {
  if (sizes.empty()) {
    if (assignment) assignment->clear();
    return 0;
  }
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sizes[a].linf() > sizes[b].linf();
                   });

  std::vector<RVec> bins;  // loads
  if (assignment) assignment->assign(sizes.size(), 0);
  for (std::size_t idx : order) {
    const RVec& s = sizes[idx];
    if (!s.fits_in_capacity(1.0)) {
      throw std::invalid_argument("ffd_pack: item exceeds unit capacity");
    }
    bool placed = false;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].fits_with(s)) {
        bins[b] += s;
        if (assignment) (*assignment)[idx] = b;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bins.push_back(s);
      if (assignment) (*assignment)[idx] = bins.size() - 1;
    }
  }
  return bins.size();
}

std::size_t ffd_bin_count(const std::vector<RVec>& sizes) {
  return ffd_pack(sizes, nullptr);
}

}  // namespace dvbp
