// Exact (and heuristic) offline optimum for MinUsageTime DVBP.
//
// The offline optimum may repack items at any instant (paper Sec. 2.2), so
// by eq. (2): OPT(R) = integral over t of OPT(R,t) dt, where OPT(R,t) is
// the optimal vector-bin-packing number of the items active at t. The load
// is piecewise constant between event timestamps, so the integral is a
// finite sum over event segments; each segment's VBP is solved exactly
// (vbp_exact) with memoization across segments that share an active set.
//
// Exact OPT is exponential in the worst case -- keep active sets per
// segment under ~24 items (tests and bench_bounds do). offline_ffd_cost is
// the polynomial fallback: an *upper* bound on OPT using FFD per segment.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "opt/vbp_exact.hpp"

namespace dvbp {

struct OfflineOptResult {
  double cost = 0.0;          ///< OPT(R) when exact, else an upper bound
  bool exact = true;          ///< false iff some segment hit the node limit
  std::size_t segments = 0;   ///< event segments integrated
  std::size_t max_active = 0; ///< peak simultaneously-active items
  std::uint64_t vbp_calls = 0;  ///< distinct VBP instances actually solved
};

/// Exact OPT(R) via eq. (2).
OfflineOptResult offline_opt(const Instance& inst, const VbpOptions& opts = {});

/// Upper bound on OPT(R): per-segment FFD instead of exact VBP.
double offline_ffd_cost(const Instance& inst);

}  // namespace dvbp
