#include "opt/offline_opt.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/event.hpp"
#include "opt/ffd.hpp"

namespace dvbp {

namespace {

/// FNV-1a over the sorted active-item ids. Used only as the hash of the
/// memo key; equality compares the full id vectors, so collisions cannot
/// corrupt results.
struct IdSetHash {
  std::uint64_t operator()(const std::vector<ItemId>& sorted_ids) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (ItemId id : sorted_ids) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    h ^= sorted_ids.size();
    h *= 1099511628211ULL;
    return h;
  }
};

/// Sweeps event segments calling `count_bins(active ids)` per segment.
template <typename CountFn>
OfflineOptResult sweep(const Instance& inst, CountFn&& count_bins) {
  OfflineOptResult result;
  if (inst.empty()) return result;

  const std::vector<Event> events = build_event_stream(inst);
  std::vector<ItemId> active;  // kept sorted
  std::unordered_map<std::vector<ItemId>, std::size_t, IdSetHash> cache;

  Time prev = events.front().time;
  for (const Event& ev : events) {
    if (ev.time > prev) {
      if (!active.empty()) {
        ++result.segments;
        result.max_active = std::max(result.max_active, active.size());
        auto it = cache.find(active);
        std::size_t bins;
        if (it != cache.end()) {
          bins = it->second;
        } else {
          bins = count_bins(active, result);
          cache.emplace(active, bins);
        }
        result.cost += static_cast<double>(bins) * (ev.time - prev);
      }
      prev = ev.time;
    }
    if (ev.kind == EventKind::kArrival) {
      active.insert(std::lower_bound(active.begin(), active.end(), ev.item),
                    ev.item);
    } else {
      active.erase(std::lower_bound(active.begin(), active.end(), ev.item));
    }
  }
  return result;
}

std::vector<RVec> sizes_of(const Instance& inst,
                           const std::vector<ItemId>& ids) {
  std::vector<RVec> sizes;
  sizes.reserve(ids.size());
  for (ItemId id : ids) sizes.push_back(inst[id].size);
  return sizes;
}

}  // namespace

OfflineOptResult offline_opt(const Instance& inst, const VbpOptions& opts) {
  return sweep(inst, [&](const std::vector<ItemId>& active,
                         OfflineOptResult& r) -> std::size_t {
    const VbpResult v = vbp_min_bins(sizes_of(inst, active), opts);
    ++r.vbp_calls;
    if (!v.exact) r.exact = false;
    return v.bins;
  });
}

double offline_ffd_cost(const Instance& inst) {
  return sweep(inst, [&](const std::vector<ItemId>& active,
                         OfflineOptResult& r) -> std::size_t {
           ++r.vbp_calls;
           return ffd_bin_count(sizes_of(inst, active));
         })
      .cost;
}

}  // namespace dvbp
