// First Fit Decreasing for (static) vector bin packing: sort sizes by
// decreasing L_inf norm, then First Fit. Classic VBP heuristic (cf.
// Panigrahy et al. [25]); used as the upper bound that primes the exact
// branch-and-bound solver, and as a fast stand-in for OPT(R,t) on instances
// too large for the exact solver.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rvec.hpp"

namespace dvbp {

/// Number of unit bins FFD uses to pack `sizes`. Every size must fit in a
/// unit bin (throws std::invalid_argument otherwise).
std::size_t ffd_bin_count(const std::vector<RVec>& sizes);

/// As above, also reporting the assignment: result[i] = bin index of item i.
std::size_t ffd_pack(const std::vector<RVec>& sizes,
                     std::vector<std::size_t>* assignment);

}  // namespace dvbp
