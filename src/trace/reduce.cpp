#include "trace/reduce.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"
#include "trace/format.hpp"
#include "trace/writer.hpp"

namespace dvbp::trace {

StreamBounds streaming_lower_bounds(const TraceReader& reader) {
  StreamBounds b;
  if (reader.empty()) return b;
  const std::size_t d = reader.dim();

  // (ii) is a plain row scan; (i) and (iii) share one event sweep.
  double util = 0.0;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    double linf = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      linf = std::max(linf, reader.demand(i, j));
    }
    util += linf * (reader.departure(i) - reader.arrival(i));
  }
  b.utilization = util / static_cast<double>(d);

  TraceCursor cursor(reader);
  TraceEvent ev;
  RVec load(d);
  RVec size(d);
  std::size_t active = 0;
  Time prev = reader.first_arrival();
  while (cursor.next(ev)) {
    if (ev.time > prev) {
      const Time dt = ev.time - prev;
      b.height += robust_ceil(load.linf()) * dt;
      if (active > 0) b.span += dt;
      prev = ev.time;
    }
    if (ev.kind == EventKind::kArrival) {
      reader.size_into(ev.item, size);
      load += size;
      ++active;
    } else {
      reader.size_into(ev.item, size);
      load -= size;
      load.clamp_nonnegative();
      --active;
    }
  }
  return b;
}

namespace {

/// A grid class: items sharing rounded units and a grid interval.
struct GroupKey {
  std::uint32_t cell_lo = 0;
  std::uint32_t cell_hi = 0;
  std::vector<std::uint32_t> units;

  bool operator<(const GroupKey& o) const {
    if (cell_lo != o.cell_lo) return cell_lo < o.cell_lo;
    if (cell_hi != o.cell_hi) return cell_hi < o.cell_hi;
    return units < o.units;
  }
};

}  // namespace

ReduceResult reduce_trace(const TraceReader& in, const std::string& out_path,
                          const ReduceOptions& options) {
  const std::uint32_t g = options.size_grid;
  const std::uint32_t cells = options.time_cells;
  if (g == 0 || cells == 0) {
    throw TraceError("reduce: size_grid and time_cells must be >= 1");
  }

  ReduceResult result;
  result.original_items = in.size();
  result.dim = static_cast<std::uint32_t>(in.dim());
  result.size_grid = g;
  result.time_cells = cells;
  result.original_bounds = streaming_lower_bounds(in);

  const std::size_t d = in.dim();
  TraceWriter out(d, /*with_tenants=*/false);
  if (in.empty()) {
    out.write(out_path);
    return result;
  }

  const Time t0 = in.first_arrival();
  const Time cell = (in.last_departure() - t0) / cells;
  result.cell_width = cell;

  // One row scan, grouping by (rounded units, widened grid interval).
  std::map<GroupKey, std::uint64_t> groups;
  GroupKey key;
  key.units.resize(d);
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      // Round UP to units of 1/g; robust_ceil forgives float residue so an
      // exact multiple like 0.25 * 16 = 4 never rounds to 5. Demands may
      // legally sit at 1 + kCapacityEps, whose ceiling would be g + 1; the
      // clamp snaps them to exactly 1, still within every fit check.
      const double scaled = in.demand(i, j) * g;
      const auto u = static_cast<std::uint32_t>(
          std::max(0.0, robust_ceil(scaled)));
      key.units[j] = std::min(u, g);
    }

    const Time a = in.arrival(i);
    const Time e = in.departure(i);
    // Widen the interval outward to cell boundaries. The correction loops
    // undo any floating error of the division: the final [lo, hi] MUST
    // cover [a, e] or the dominance argument breaks.
    std::uint64_t k_lo =
        cell > 0.0 ? static_cast<std::uint64_t>(
                         std::max(0.0, std::floor((a - t0) / cell)))
                   : 0;
    while (k_lo > 0 && t0 + static_cast<double>(k_lo) * cell > a) --k_lo;
    std::uint64_t k_hi =
        cell > 0.0 ? static_cast<std::uint64_t>(
                         std::max(1.0, std::ceil((e - t0) / cell)))
                   : 1;
    if (k_hi <= k_lo) k_hi = k_lo + 1;
    while (t0 + static_cast<double>(k_hi) * cell < e) ++k_hi;

    key.cell_lo = static_cast<std::uint32_t>(k_lo);
    key.cell_hi = static_cast<std::uint32_t>(k_hi);
    ++groups[key];
  }
  result.groups = groups.size();

  // Stack each class: m members per super-item keeps every dimension at
  // exactly (units_j * m) / g <= 1 -- integer arithmetic, no epsilon.
  RVec size(d);
  for (const auto& [k, count] : groups) {
    std::uint64_t m = count;  // all-zero demand stacks without limit
    for (std::size_t j = 0; j < d; ++j) {
      if (k.units[j] > 0) {
        m = std::min<std::uint64_t>(m, g / k.units[j]);
      }
    }
    if (m == 0) m = 1;  // unreachable (units <= g), defensive

    const Time lo = t0 + static_cast<double>(k.cell_lo) * cell;
    const Time hi = t0 + static_cast<double>(k.cell_hi) * cell;
    std::uint64_t remaining = count;
    while (remaining > 0) {
      const std::uint64_t stack = std::min(m, remaining);
      for (std::size_t j = 0; j < d; ++j) {
        size[j] = static_cast<double>(k.units[j] * stack) /
                  static_cast<double>(g);
      }
      out.add(lo, hi, size);
      ++result.reduced_items;
      remaining -= stack;
    }
  }

  out.write(out_path);
  return result;
}

}  // namespace dvbp::trace
