// Azure-style CSV -> binary trace conversion.
//
// Input rows are `vmid,start,end,frac_0,...,frac_{d-1}`: an opaque VM/job
// identifier, lifetime endpoints, and d normalized demand fractions (the
// Azure public VM traces expose core and memory fractions; d is inferred
// from the first data row and enforced afterwards). `#`-comments, blank
// lines, and one leading header row (detected, not configured: its start
// field does not parse as a number) are skipped.
//
// Distinct vmids map to dense tenant labels in first-appearance order when
// ConvertOptions::tenants is set, so a trace can drive the multi-tenant
// fairness layer; placement itself stays tenant-blind.
//
// Conversion is lossless for well-formed rows: timestamps and demands are
// parsed once with strtod and stored as their exact IEEE-754 bits. Rows
// that cannot be packed (demand above 1+eps, end <= start, negative start)
// are either skipped-and-counted (default) or fatal (strict).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/writer.hpp"

namespace dvbp::trace {

struct ConvertOptions {
  /// Map vmids to dense tenant labels and emit the tenant column.
  bool tenants = false;
  /// Fail on the first malformed/unpackable row instead of skipping it.
  bool strict = false;
};

struct ConvertStats {
  std::uint64_t rows_read = 0;     ///< data rows seen (comments excluded)
  std::uint64_t items_written = 0;
  std::uint64_t rows_skipped = 0;  ///< malformed/unpackable rows dropped
  std::uint32_t dim = 0;           ///< inferred demand dimension
  std::uint32_t tenants = 0;       ///< distinct vmids (0 unless mapping)
};

/// Converts CSV from `in` into a binary trace at `out_path`. Throws
/// TraceError on unparsable structure (in strict mode: on any bad row).
ConvertStats convert_csv(std::istream& in, const std::string& out_path,
                         const ConvertOptions& options = {});

/// File-path convenience wrapper.
ConvertStats convert_csv_file(const std::string& csv_path,
                              const std::string& out_path,
                              const ConvertOptions& options = {});

}  // namespace dvbp::trace
