#include "trace/convert.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/rvec.hpp"
#include "core/types.hpp"
#include "trace/format.hpp"

namespace dvbp::trace {

namespace {

/// Splits `line` on commas, trimming ASCII whitespace around each field.
void split_fields(const std::string& line, std::vector<std::string>& out) {
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    std::size_t lo = start;
    std::size_t hi = end;
    while (lo < hi && std::isspace(static_cast<unsigned char>(line[lo]))) {
      ++lo;
    }
    while (hi > lo &&
           std::isspace(static_cast<unsigned char>(line[hi - 1]))) {
      --hi;
    }
    out.emplace_back(line.substr(lo, hi - lo));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

bool parse_f64(const std::string& field, double& out) {
  if (field.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

}  // namespace

ConvertStats convert_csv(std::istream& in, const std::string& out_path,
                         const ConvertOptions& options) {
  ConvertStats stats;
  std::unordered_map<std::string, TenantId> tenant_of;
  std::vector<std::string> fields;
  std::string line;
  std::uint64_t lineno = 0;
  bool first_data_row = true;
  // Deferred construction: the dimension is only known at the first row.
  std::optional<TraceWriter> writer;
  RVec size;

  auto bad_row = [&](const std::string& why) {
    if (options.strict) {
      throw TraceError("csv line " + std::to_string(lineno) + ": " + why);
    }
    ++stats.rows_skipped;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;

    split_fields(line, fields);
    if (fields.size() < 4) {
      ++stats.rows_read;
      bad_row("expected vmid,start,end and at least one demand column");
      continue;
    }

    double start_t = 0.0;
    double end_t = 0.0;
    if (!parse_f64(fields[1], start_t) || !parse_f64(fields[2], end_t)) {
      // A non-numeric start/end on the very first row is the header.
      if (first_data_row) {
        first_data_row = false;
        continue;
      }
      ++stats.rows_read;
      bad_row("start/end fields are not numbers");
      continue;
    }
    first_data_row = false;
    ++stats.rows_read;

    const std::uint32_t row_dim = static_cast<std::uint32_t>(fields.size() - 3);
    if (!writer.has_value()) {
      if (row_dim > kMaxDim) {
        throw TraceError("csv line " + std::to_string(lineno) +
                         ": unusable demand dimension " +
                         std::to_string(row_dim));
      }
      stats.dim = row_dim;
      writer.emplace(row_dim, options.tenants);
      size = RVec(row_dim);
    }
    if (row_dim != stats.dim) {
      bad_row("row has " + std::to_string(row_dim) +
              " demand columns, trace has " + std::to_string(stats.dim));
      continue;
    }

    bool ok = !std::isnan(start_t) && start_t >= 0.0 && end_t > start_t &&
              std::isfinite(start_t) && std::isfinite(end_t);
    for (std::uint32_t j = 0; ok && j < row_dim; ++j) {
      double v = 0.0;
      ok = parse_f64(fields[3 + j], v) && std::isfinite(v) && v >= 0.0 &&
           v <= 1.0 + kCapacityEps;
      size[j] = v;
    }
    if (!ok) {
      bad_row("row is malformed or not packable into a unit bin");
      continue;
    }

    TenantId tenant = kNoTenant;
    if (options.tenants) {
      const auto [it, inserted] = tenant_of.emplace(
          fields[0], static_cast<TenantId>(tenant_of.size()));
      tenant = it->second;
      (void)inserted;
    }
    writer->add(start_t, end_t, size, tenant);
    ++stats.items_written;
  }

  if (!writer.has_value()) {
    // Header-only or empty input: emit a valid empty d=1 trace.
    stats.dim = 1;
    writer.emplace(1, options.tenants);
  }
  writer->write(out_path);
  stats.tenants = static_cast<std::uint32_t>(tenant_of.size());
  return stats;
}

ConvertStats convert_csv_file(const std::string& csv_path,
                              const std::string& out_path,
                              const ConvertOptions& options) {
  std::ifstream in(csv_path);
  if (!in) {
    throw TraceError("cannot open csv '" + csv_path + "'");
  }
  return convert_csv(in, out_path, options);
}

}  // namespace dvbp::trace
