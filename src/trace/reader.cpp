#include "trace/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/serial.hpp"
#include "trace/format.hpp"

namespace dvbp::trace {

namespace {

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double get_f64(const std::uint8_t* p) noexcept {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw TraceError("trace '" + path + "': " + why);
}

}  // namespace

TraceReader::TraceReader(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(path, std::string("cannot open: ") + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path, std::string("fstat failed: ") + std::strerror(err));
  }
  bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (bytes_ < kHeaderBytes + 4) {
    ::close(fd);
    fail(path, "file smaller than header + footer (" +
                   std::to_string(bytes_) + " bytes)");
  }
  map_ = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    fail(path, std::string("mmap failed: ") + std::strerror(errno));
  }
  const std::uint8_t* base = static_cast<const std::uint8_t*>(map_);

  try {
    if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
      fail(path, "bad magic (not a dvbp trace file)");
    }
    const std::uint32_t header_bytes = get_u32(base + 8);
    const std::uint32_t version = get_u32(base + 12);
    if (version != kVersion) {
      fail(path, "unsupported version " + std::to_string(version));
    }
    if (header_bytes != kHeaderBytes) {
      fail(path, "bad header_bytes " + std::to_string(header_bytes));
    }
    const std::uint32_t dim = get_u32(base + 16);
    const std::uint32_t flags = get_u32(base + 20);
    if (dim == 0 || dim > kMaxDim) {
      fail(path, "dimension " + std::to_string(dim) + " outside [1, " +
                     std::to_string(kMaxDim) + "]");
    }
    if ((flags & ~kFlagTenants) != 0) {
      fail(path, "unknown flag bits set");
    }
    const bool tenants = (flags & kFlagTenants) != 0;
    const std::uint64_t n = get_u64(base + 24);

    // Exact-size check before trusting any offset: this alone rejects
    // every truncation and most appended-garbage corruptions.
    if (bytes_ != expected_file_bytes(n, dim, tenants)) {
      fail(path, "file size " + std::to_string(bytes_) +
                     " does not match layout for n=" + std::to_string(n) +
                     " d=" + std::to_string(dim));
    }

    const std::uint64_t off_arrival = get_u64(base + 32);
    const std::uint64_t off_departure = get_u64(base + 40);
    const std::uint64_t off_demand = get_u64(base + 48);
    const std::uint64_t off_tenant = get_u64(base + 56);
    if (off_arrival != kHeaderBytes || off_departure != off_arrival + n * 8 ||
        off_demand != off_departure + n * 8 ||
        off_tenant != (tenants ? off_demand + n * 8 * dim : 0)) {
      fail(path, "section offsets do not match the version-1 layout");
    }
    if (get_u64(base + 80) != 0) {
      fail(path, "reserved header field is nonzero");
    }

    const std::uint32_t stored_crc = get_u32(base + bytes_ - 4);
    const std::uint32_t actual_crc = serial::crc32(base, bytes_ - 4);
    if (stored_crc != actual_crc) {
      fail(path, "CRC32 mismatch (file corrupt)");
    }

    n_ = static_cast<std::size_t>(n);
    dim_ = dim;
    arrival_ = base + off_arrival;
    departure_ = base + off_departure;
    demand_ = base + off_demand;
    tenant_ = tenants ? base + off_tenant : nullptr;
    first_arrival_ = get_f64(base + 64);
    last_departure_ = get_f64(base + 72);

    // Semantic scan: after this the simulator/cursor can assume a valid
    // instance, so a hostile-but-CRC-consistent file still cannot push a
    // NaN or an unsorted arrival into the packing engine.
    Time max_dep = 0.0;
    Time prev = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const Time a = arrival(i);
      const Time e = departure(i);
      if (!std::isfinite(a) || a < 0.0) {
        fail(path, "item " + std::to_string(i) + ": bad arrival");
      }
      if (i > 0 && a < prev) {
        fail(path, "arrival column not nondecreasing at item " +
                       std::to_string(i));
      }
      prev = a;
      if (!std::isfinite(e) || !(e > a)) {
        fail(path,
             "item " + std::to_string(i) + ": departure <= arrival");
      }
      max_dep = std::max(max_dep, e);
      for (std::size_t j = 0; j < dim_; ++j) {
        const double v = demand(i, j);
        if (!std::isfinite(v) || v < 0.0 || v > 1.0 + kCapacityEps) {
          fail(path, "item " + std::to_string(i) + ": demand[" +
                         std::to_string(j) + "] outside [0, 1+eps]");
        }
      }
    }
    const Time want_first = n_ > 0 ? arrival(0) : 0.0;
    const Time want_last = n_ > 0 ? max_dep : 0.0;
    if (first_arrival_ != want_first || last_departure_ != want_last) {
      fail(path, "header time summary disagrees with columns");
    }
    if (n_ > static_cast<std::uint64_t>(kNoItem)) {
      fail(path, "item count overflows ItemId");
    }
  } catch (...) {
    unmap();
    throw;
  }
}

TraceReader::~TraceReader() { unmap(); }

TraceReader::TraceReader(TraceReader&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      bytes_(other.bytes_),
      n_(other.n_),
      dim_(other.dim_),
      first_arrival_(other.first_arrival_),
      last_departure_(other.last_departure_),
      arrival_(other.arrival_),
      departure_(other.departure_),
      demand_(other.demand_),
      tenant_(other.tenant_) {
  other.map_ = nullptr;
  other.bytes_ = 0;
  other.n_ = 0;
  other.arrival_ = other.departure_ = other.demand_ = other.tenant_ = nullptr;
}

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    map_ = other.map_;
    bytes_ = other.bytes_;
    n_ = other.n_;
    dim_ = other.dim_;
    first_arrival_ = other.first_arrival_;
    last_departure_ = other.last_departure_;
    arrival_ = other.arrival_;
    departure_ = other.departure_;
    demand_ = other.demand_;
    tenant_ = other.tenant_;
    other.map_ = nullptr;
    other.bytes_ = 0;
    other.n_ = 0;
    other.arrival_ = other.departure_ = other.demand_ = other.tenant_ =
        nullptr;
  }
  return *this;
}

void TraceReader::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, bytes_);
    map_ = nullptr;
  }
}

void TraceReader::size_into(std::size_t i, RVec& out) const {
  if (out.dim() != dim_) out = RVec(dim_);
  for (std::size_t j = 0; j < dim_; ++j) out[j] = demand(i, j);
}

Item TraceReader::item(std::size_t i) const {
  Item r;
  r.id = static_cast<ItemId>(i);
  r.arrival = arrival(i);
  r.departure = departure(i);
  r.tenant = tenant(i);
  size_into(i, r.size);
  return r;
}

Instance TraceReader::materialize() const {
  Instance inst(dim_);
  RVec size(dim_);
  for (std::size_t i = 0; i < n_; ++i) {
    size_into(i, size);
    const ItemId id = inst.add(arrival(i), departure(i), size);
    const TenantId t = tenant(i);
    if (t != kNoTenant) inst.set_tenant(id, t);
  }
  // Rows are already arrival-sorted (validated at open), so this keeps
  // ids == row indices; it only (re)arms the instance's sorted flag.
  inst.sort_by_arrival();
  return inst;
}

bool TraceCursor::next(TraceEvent& ev) {
  const TraceReader& r = *reader_;
  const std::size_t n = r.size();
  const auto cmp = std::greater<std::pair<Time, ItemId>>();
  while (true) {
    const bool have_arrival = next_arrival_ < n;
    const bool have_departure = !heap_.empty();
    if (!have_arrival && !have_departure) return false;
    // Departures win ties: EventOrder sorts kDeparture before kArrival
    // at equal timestamps, and heap order (time, id) matches the final
    // tie-break on item id.
    if (have_departure &&
        (!have_arrival || heap_.front().first <= r.arrival(next_arrival_))) {
      ev.time = heap_.front().first;
      ev.kind = EventKind::kDeparture;
      ev.item = heap_.front().second;
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      heap_.pop_back();
    } else {
      const std::size_t i = next_arrival_++;
      ev.time = r.arrival(i);
      ev.kind = EventKind::kArrival;
      ev.item = static_cast<ItemId>(i);
      heap_.emplace_back(r.departure(i), static_cast<ItemId>(i));
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
    ++emitted_;
    return true;
  }
}

void TraceCursor::reset() {
  next_arrival_ = 0;
  emitted_ = 0;
  heap_.clear();
}

}  // namespace dvbp::trace
