// TraceReader: zero-copy, mmap-backed access to a binary trace file
// (trace/format.hpp), plus TraceCursor, a streaming merge of the 2n
// arrival/departure events in exactly the order build_event_stream()
// produces -- without ever materializing an Instance or an event vector.
//
// Validation happens once, at open: magic/version/layout checks, the
// trailing CRC32 over the whole file, and one semantic scan (arrivals
// nondecreasing, departure > arrival, demands inside the unit bin). After
// open() succeeds every accessor can trust the mapping, so the per-event
// hot path is a couple of 8-byte loads. A truncated or corrupted file --
// any byte, anywhere -- fails open() with TraceError; the reader never
// crashes on hostile input (fuzzed in tests/test_trace.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/item.hpp"
#include "core/rvec.hpp"
#include "core/types.hpp"

namespace dvbp::trace {

class TraceReader {
 public:
  /// Maps and validates `path`. Throws TraceError on I/O failure or any
  /// format/CRC/semantic violation.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  TraceReader(TraceReader&& other) noexcept;
  TraceReader& operator=(TraceReader&& other) noexcept;

  const std::string& path() const noexcept { return path_; }
  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  std::size_t dim() const noexcept { return dim_; }
  bool has_tenants() const noexcept { return tenant_ != nullptr; }
  std::uint64_t file_bytes() const noexcept { return bytes_; }
  Time first_arrival() const noexcept { return first_arrival_; }
  Time last_departure() const noexcept { return last_departure_; }

  Time arrival(std::size_t i) const noexcept {
    return load_f64(arrival_ + i * 8);
  }
  Time departure(std::size_t i) const noexcept {
    return load_f64(departure_ + i * 8);
  }
  /// Demand of item `i` in dimension `j` (columns are dimension-major).
  double demand(std::size_t i, std::size_t j) const noexcept {
    return load_f64(demand_ + (j * n_ + i) * 8);
  }
  TenantId tenant(std::size_t i) const noexcept {
    if (tenant_ == nullptr) return kNoTenant;
    std::uint32_t v;
    std::memcpy(&v, tenant_ + i * 4, 4);
    return v;
  }

  /// Gathers item `i`'s demand vector into `out` (resized to dim()).
  void size_into(std::size_t i, RVec& out) const;
  /// Item `i` as a core Item (id == row index).
  Item item(std::size_t i) const;

  /// Materializes the whole trace as an Instance -- the compatibility
  /// bridge for offline tooling; O(n) memory, avoid for huge traces.
  Instance materialize() const;

 private:
  void unmap() noexcept;

  static double load_f64(const std::uint8_t* p) noexcept {
    double v;
    std::memcpy(&v, p, 8);
    return v;
  }

  std::string path_;
  void* map_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  Time first_arrival_ = 0.0;
  Time last_departure_ = 0.0;
  const std::uint8_t* arrival_ = nullptr;
  const std::uint8_t* departure_ = nullptr;
  const std::uint8_t* demand_ = nullptr;
  const std::uint8_t* tenant_ = nullptr;
};

/// One streamed trace event; mirrors core Event.
struct TraceEvent {
  Time time = 0.0;
  EventKind kind = EventKind::kArrival;
  ItemId item = kNoItem;
};

/// Streaming event merge over a TraceReader. Arrivals come straight off
/// the sorted arrival column; departures of the currently active items sit
/// in a min-heap on (departure, id). The emitted order is IDENTICAL to
/// build_event_stream(materialize()): time ascending, departures before
/// arrivals at equal timestamps, ties by item id -- so a Dispatcher fed
/// from the cursor reproduces simulate() bin for bin. O(active) memory.
class TraceCursor {
 public:
  explicit TraceCursor(const TraceReader& reader) : reader_(&reader) {}

  /// Emits the next event; false when the stream is exhausted.
  bool next(TraceEvent& ev);

  /// Rewinds to the start of the stream.
  void reset();

  std::uint64_t events_emitted() const noexcept { return emitted_; }

 private:
  const TraceReader* reader_;
  std::size_t next_arrival_ = 0;
  std::uint64_t emitted_ = 0;
  /// Min-heap via std::greater on (departure, id).
  std::vector<std::pair<Time, ItemId>> heap_;
};

}  // namespace dvbp::trace
