// Streaming trace replay: feed a trace's event stream straight into a
// Dispatcher without ever materializing an Instance or an event vector.
//
// The cursor emits events in exactly build_event_stream() order and the
// Dispatcher is differential-tested to match simulate() bin for bin, so a
// replayed trace produces bit-identical cost/bins to materializing the
// trace and running the batch engine -- pinned for all ten registered
// policies in tests/test_trace.cpp. Memory stays O(active items), which is
// what lets the harness pack multi-million-event traces.
#pragma once

#include <cstdint>

#include "core/packing.hpp"
#include "core/policies/policy.hpp"
#include "core/types.hpp"
#include "trace/reader.hpp"

namespace dvbp::obs {
class Observer;        // obs/observer.hpp
class MetricRegistry;  // obs/metrics.hpp
}  // namespace dvbp::obs

namespace dvbp::trace {

struct ReplayOptions {
  /// Per-dimension bin capacity (>= 1; 1.0 is the paper's model).
  double bin_capacity = 1.0;
  /// Optional per-event instrumentation (borrowed, nullable).
  obs::Observer* observer = nullptr;
  /// When set, replay registers and maintains the dvbp.trace.* metrics
  /// (events_total, arrivals_total, departures_total, open_bins,
  /// bins_opened_total, replay_cost).
  obs::MetricRegistry* metrics = nullptr;
  /// When set, receives the final placement (for audits/hashing; costs
  /// O(items) memory, so leave null for huge traces).
  Packing* packing_out = nullptr;
};

struct ReplayResult {
  std::uint64_t events = 0;         ///< events replayed (2 * items)
  std::uint64_t items = 0;          ///< items admitted
  std::size_t bins_opened = 0;      ///< total bins ever opened
  std::size_t max_open_bins = 0;    ///< peak simultaneously-open bins
  double cost = 0.0;                ///< eq. (1) usage time; == simulate()
};

/// Replays `reader`'s events through `policy` (after policy.reset()).
/// Departure times are shown to clairvoyant policies at arrival, matching
/// the batch engine. Throws PolicyViolation on illegal policy decisions.
ReplayResult replay_trace(const TraceReader& reader, Policy& policy,
                          const ReplayOptions& options = {});

}  // namespace dvbp::trace
