#include "trace/replay.hpp"

#include <algorithm>

#include "core/dispatcher.hpp"
#include "obs/metrics.hpp"

namespace dvbp::trace {

ReplayResult replay_trace(const TraceReader& reader, Policy& policy,
                          const ReplayOptions& options) {
  Dispatcher dispatcher(reader.dim(), policy, options.bin_capacity,
                        options.observer);

  obs::Counter* events_total = nullptr;
  obs::Counter* arrivals_total = nullptr;
  obs::Counter* departures_total = nullptr;
  obs::Counter* bins_opened_total = nullptr;
  obs::Gauge* open_bins = nullptr;
  obs::Gauge* replay_cost = nullptr;
  if (options.metrics != nullptr) {
    obs::MetricRegistry& m = *options.metrics;
    events_total = &m.counter("dvbp.trace.events_total");
    arrivals_total = &m.counter("dvbp.trace.arrivals_total");
    departures_total = &m.counter("dvbp.trace.departures_total");
    bins_opened_total = &m.counter("dvbp.trace.bins_opened_total");
    open_bins = &m.gauge("dvbp.trace.open_bins");
    replay_cost = &m.gauge("dvbp.trace.replay_cost");
  }

  ReplayResult result;
  // Arrivals stream in row order, so the dispatcher hands out JobId == row
  // index == ItemId; departures can reuse the event's item id directly.
  TraceCursor cursor(reader);
  TraceEvent ev;
  RVec size(reader.dim());
  while (cursor.next(ev)) {
    if (ev.kind == EventKind::kArrival) {
      const std::size_t i = ev.item;
      reader.size_into(i, size);
      const Dispatcher::Admission adm = dispatcher.arrive(
          ev.time, size, reader.departure(i), reader.tenant(i));
      (void)adm;
      ++result.items;
      if (arrivals_total != nullptr) arrivals_total->inc();
      if (bins_opened_total != nullptr && adm.opened_new_bin) {
        bins_opened_total->inc();
      }
    } else {
      dispatcher.depart(ev.time, ev.item);
      if (departures_total != nullptr) departures_total->inc();
    }
    ++result.events;
    if (events_total != nullptr) events_total->inc();
    if (open_bins != nullptr) {
      open_bins->set(static_cast<double>(dispatcher.open_bins()));
    }
    result.max_open_bins =
        std::max(result.max_open_bins, dispatcher.open_bins());
  }

  result.bins_opened = dispatcher.bins_opened();
  // Every trace item departs, so all bins are closed by now: sum their
  // usage in bin-id order -- the exact arithmetic of Packing::cost() --
  // rather than cost_so_far()'s close-order running sum, whose different
  // addition order can drift by an ULP on large-magnitude workloads.
  result.cost = 0.0;
  for (const BinRecord& rec : dispatcher.records()) {
    result.cost += rec.usage_time();
  }
  if (replay_cost != nullptr) replay_cost->set(result.cost);
  if (options.packing_out != nullptr) {
    *options.packing_out = dispatcher.packing();
  }
  return result;
}

}  // namespace dvbp::trace
