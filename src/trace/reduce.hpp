// Data reduction for exact-OPT anchoring on large traces, after van Bevern
// et al. (On data reduction for dynamic vector bin packing; PAPERS.md).
//
// Two reductions, both UPPER-directed (they only make the instance harder):
//
//   1. Rounding. Every demand is rounded UP to the grid {0, 1/g, ..., g/g}
//      (integer unit arithmetic, so no epsilon can leak), and every active
//      interval is widened OUTWARD to a uniform time grid of `time_cells`
//      cells spanning [first_arrival, last_departure].
//   2. Merging. Items that became identical -- same unit vector, same grid
//      interval -- are stacked into super-items of up to
//      m = min_j floor(g / units_j) members, so a stack's demand is
//      exactly (units_j * m) / g <= 1 per dimension.
//
// Soundness: any packing of the reduced trace induces a packing of the
// original (each member rides where its stack went, inside an interval
// that covers its own), hence
//
//     OPT(original) <= OPT(reduced) <= offline_opt(reduced).cost,
//
// and the right-hand side holds even when vbp_exact hits its node limit
// (offline_opt's cost is an upper bound whenever !exact). The LOWER end of
// the reported OPT interval never touches the reduced instance: it is the
// Lemma-1 bounds computed exactly on the ORIGINAL trace by a streaming
// sweep. Together: OPT(original) in [streaming_lower_bounds(original).best,
// offline_opt(reduced).cost] -- the interval the harness prints.
//
// Stacking is deliberately NOT used for lower bounds: it can only raise
// OPT (two 0.4-items stacked to 0.8 can no longer pair with a 0.6-item),
// so a bound computed on the stacked instance would not transfer down.
#pragma once

#include <cstdint>
#include <string>

#include "trace/reader.hpp"

namespace dvbp::trace {

/// Lemma-1 lower bounds on OPT of a trace, computed by a streaming event
/// sweep in O(active) memory -- the trace-native mirror of
/// opt/lower_bounds.hpp (identical arithmetic, including robust_ceil and
/// the clamp of departure residue).
struct StreamBounds {
  double height = 0.0;       ///< Lemma 1 (i): integral of ceil(linf load)
  double utilization = 0.0;  ///< Lemma 1 (ii)
  double span = 0.0;         ///< Lemma 1 (iii)

  double best() const noexcept {
    return height > utilization ? (height > span ? height : span)
                                : (utilization > span ? utilization : span);
  }
};

StreamBounds streaming_lower_bounds(const TraceReader& reader);

struct ReduceOptions {
  /// Demand grid granularity g: sizes round up to multiples of 1/g.
  /// Smaller g merges more aggressively (coarser upper bound).
  std::uint32_t size_grid = 16;
  /// Number of uniform time cells spanning the trace's active window.
  std::uint32_t time_cells = 64;
};

struct ReduceResult {
  std::uint64_t original_items = 0;
  std::uint64_t reduced_items = 0;
  std::uint64_t groups = 0;       ///< distinct (units, interval) classes
  std::uint32_t dim = 0;
  std::uint32_t size_grid = 0;    ///< echo of the options used
  std::uint32_t time_cells = 0;
  double cell_width = 0.0;        ///< seconds per time cell
  /// Lemma-1 bounds of the ORIGINAL trace (the interval's lower end).
  StreamBounds original_bounds;
};

/// Reduces `in` and writes the shrunken trace to `out_path`. Throws
/// TraceError on bad options (zero grids) or I/O failure. The tenant
/// column is dropped: the reduced trace exists to anchor OPT, which is
/// tenant-blind.
ReduceResult reduce_trace(const TraceReader& in, const std::string& out_path,
                          const ReduceOptions& options = {});

}  // namespace dvbp::trace
