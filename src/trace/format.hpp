// The dvbp binary trace format (docs/TRACES.md): a compact, mmap-friendly
// columnar container for real or synthetic DVBP workloads.
//
// Layout (little-endian, raw IEEE-754 float bits -- core/serial.hpp):
//
//   offset  size  field
//   0       8     magic "DVBPTRC1"
//   8       4     u32 header_bytes (== kHeaderBytes for version 1)
//   12      4     u32 version (== 1)
//   16      4     u32 dim d (>= 1)
//   20      4     u32 flags (bit 0: tenant column present)
//   24      8     u64 n (item count; 2n events)
//   32      8     u64 off_arrival    -- n x f64, nondecreasing
//   40      8     u64 off_departure  -- n x f64, departure[i] > arrival[i]
//   48      8     u64 off_demand     -- d consecutive columns of n x f64
//                                       (dimension-major: column j holds
//                                        demand j of every item)
//   56      8     u64 off_tenant     -- n x u32 (0 when absent)
//   64      8     f64 first_arrival  (0 when n == 0)
//   72      8     f64 last_departure (0 when n == 0)
//   80      8     u64 reserved (0)
//   88      ...   columns, at the offsets above (all 8-byte aligned)
//   EOF-4   4     u32 crc32 over bytes [0, EOF-4)  -- same CRC-32 as the
//                 journal frames (serial::crc32)
//
// Items are stored sorted by (arrival, insertion order) and the row index
// IS the ItemId, exactly like Instance::sort_by_arrival. The whole file is
// covered by the trailing CRC, so a torn download or flipped byte is
// rejected at open -- the reader never walks unvalidated bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dvbp::trace {

/// Thrown on malformed/corrupt trace files and trace I/O failures. The
/// reader throws this (never crashes) for every byte-level truncation or
/// corruption -- pinned by the fuzz suite in tests/test_trace.cpp.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr char kMagic[8] = {'D', 'V', 'B', 'P', 'T', 'R', 'C', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 88;
inline constexpr std::uint32_t kFlagTenants = 1u << 0;

/// Sanity cap on the stored dimension; real workloads use single digits,
/// and a corrupt header must not drive a multi-gigabyte layout computation.
inline constexpr std::uint32_t kMaxDim = 4096;

/// Expected file size for (n, d, tenants): header + columns + CRC footer.
inline std::uint64_t expected_file_bytes(std::uint64_t n, std::uint32_t dim,
                                         bool tenants) noexcept {
  return kHeaderBytes + n * 8 * (2 + dim) + (tenants ? n * 4 : 0) + 4;
}

}  // namespace dvbp::trace
