#include "trace/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "core/serial.hpp"
#include "trace/format.hpp"

namespace dvbp::trace {

namespace {

void put_u32(std::vector<std::uint8_t>& buf, std::size_t at,
             std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::size_t at,
             std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_f64(std::vector<std::uint8_t>& buf, std::size_t at, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(buf, at, bits);
}

}  // namespace

TraceWriter::TraceWriter(std::size_t dim, bool with_tenants)
    : dim_(dim), with_tenants_(with_tenants) {
  if (dim == 0 || dim > kMaxDim) {
    throw TraceError("TraceWriter: dimension must be in [1, " +
                     std::to_string(kMaxDim) + "], got " +
                     std::to_string(dim));
  }
}

void TraceWriter::add(Time arrival, Time departure, const RVec& size,
                      TenantId tenant) {
  if (!std::isfinite(arrival) || arrival < 0.0) {
    throw TraceError("TraceWriter::add: arrival must be finite and >= 0");
  }
  if (!std::isfinite(departure) || !(departure > arrival)) {
    throw TraceError("TraceWriter::add: departure must exceed arrival");
  }
  if (size.dim() != dim_) {
    throw TraceError("TraceWriter::add: size has dimension " +
                     std::to_string(size.dim()) + ", trace has " +
                     std::to_string(dim_));
  }
  for (std::size_t j = 0; j < dim_; ++j) {
    if (!std::isfinite(size[j]) || size[j] < 0.0 ||
        size[j] > 1.0 + kCapacityEps) {
      throw TraceError(
          "TraceWriter::add: size component outside [0, 1+eps]");
    }
  }
  arrival_.push_back(arrival);
  departure_.push_back(departure);
  for (std::size_t j = 0; j < dim_; ++j) demand_.push_back(size[j]);
  tenant_.push_back(tenant);
}

void TraceWriter::write(const std::string& path) {
  const std::uint64_t n = arrival_.size();

  // Stable arrival order: ties keep insertion order, exactly like
  // Instance::sort_by_arrival (the row index becomes the ItemId).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arrival_[a] < arrival_[b];
                   });

  const std::uint64_t total =
      expected_file_bytes(n, static_cast<std::uint32_t>(dim_),
                          with_tenants_);
  std::vector<std::uint8_t> buf(total, 0);

  const std::uint64_t off_arrival = kHeaderBytes;
  const std::uint64_t off_departure = off_arrival + n * 8;
  const std::uint64_t off_demand = off_departure + n * 8;
  const std::uint64_t off_tenant =
      with_tenants_ ? off_demand + n * 8 * dim_ : 0;

  std::memcpy(buf.data(), kMagic, sizeof(kMagic));
  put_u32(buf, 8, kHeaderBytes);
  put_u32(buf, 12, kVersion);
  put_u32(buf, 16, static_cast<std::uint32_t>(dim_));
  put_u32(buf, 20, with_tenants_ ? kFlagTenants : 0);
  put_u64(buf, 24, n);
  put_u64(buf, 32, off_arrival);
  put_u64(buf, 40, off_departure);
  put_u64(buf, 48, off_demand);
  put_u64(buf, 56, off_tenant);
  Time first = 0.0;
  Time last = 0.0;
  if (n > 0) {
    first = arrival_[order.front()];
    last = *std::max_element(departure_.begin(), departure_.end());
  }
  put_f64(buf, 64, first);
  put_f64(buf, 72, last);
  put_u64(buf, 80, 0);

  for (std::uint64_t i = 0; i < n; ++i) {
    const std::size_t src = order[i];
    put_f64(buf, off_arrival + i * 8, arrival_[src]);
    put_f64(buf, off_departure + i * 8, departure_[src]);
    for (std::size_t j = 0; j < dim_; ++j) {
      put_f64(buf, off_demand + (j * n + i) * 8, demand_[src * dim_ + j]);
    }
    if (with_tenants_) put_u32(buf, off_tenant + i * 4, tenant_[src]);
  }

  const std::uint32_t crc = serial::crc32(buf.data(), total - 4);
  put_u32(buf, total - 4, crc);

  // tmp + fsync + rename: a crashed writer never leaves a half-written
  // file under the final name (the persist checkpoint convention).
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw TraceError("TraceWriter: cannot create '" + tmp +
                     "': " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < buf.size()) {
    const ssize_t rc =
        ::write(fd, buf.data() + written, buf.size() - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw TraceError("TraceWriter: write to '" + tmp +
                       "' failed: " + std::strerror(err));
    }
    written += static_cast<std::size_t>(rc);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw TraceError("TraceWriter: fsync/close of '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw TraceError("TraceWriter: rename to '" + path +
                     "' failed: " + std::strerror(err));
  }
}

void TraceWriter::write_instance(const Instance& inst,
                                 const std::string& path) {
  bool tenants = false;
  for (const Item& r : inst.items()) {
    if (r.tenant != kNoTenant) {
      tenants = true;
      break;
    }
  }
  TraceWriter w(inst.dim() == 0 ? 1 : inst.dim(), tenants);
  for (const Item& r : inst.items()) {
    w.add(r.arrival, r.departure, r.size, r.tenant);
  }
  w.write(path);
}

}  // namespace dvbp::trace
