// TraceWriter: stages DVBP items and writes one binary columnar trace file
// (trace/format.hpp). Staging is column-wise in memory -- the file is
// columnar, so the writer keeps each column contiguous and the final write
// is a handful of large memcpys, not a per-item encode loop.
//
// Items may be added in any order; write() stable-sorts by arrival so the
// row index is the ItemId, mirroring Instance::sort_by_arrival. For an
// Instance already in arrival order (every registered generator emits one)
// the round-trip instance -> trace -> materialize() is bit-exact: sizes
// and timestamps are stored as raw IEEE-754 doubles, never through text.
//
// The file lands atomically: staged to <path>.tmp, fsync'd, then renamed
// over <path> (the checkpoint convention of src/persist/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/rvec.hpp"
#include "core/types.hpp"

namespace dvbp::trace {

class TraceWriter {
 public:
  /// `with_tenants` selects whether the u32 tenant column is emitted.
  explicit TraceWriter(std::size_t dim, bool with_tenants = false);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t items() const noexcept { return arrival_.size(); }
  bool with_tenants() const noexcept { return with_tenants_; }

  /// Stages one item. Validation mirrors Instance::add: finite
  /// nonnegative arrival, departure > arrival, size of the writer's
  /// dimension with every component in [0, 1 + kCapacityEps]. Throws
  /// TraceError on violations.
  void add(Time arrival, Time departure, const RVec& size,
           TenantId tenant = kNoTenant);

  /// Sorts the staged items by (arrival, insertion order) and writes the
  /// file. The writer stays usable (more items may be added and written
  /// again). Throws TraceError on I/O failure.
  void write(const std::string& path);

  /// Writes `inst` as a trace file. The tenant column is included iff any
  /// item carries a tenant label.
  static void write_instance(const Instance& inst, const std::string& path);

 private:
  std::size_t dim_;
  bool with_tenants_;
  std::vector<Time> arrival_;
  std::vector<Time> departure_;
  std::vector<double> demand_;  // dimension-major: column j at [j*n .. )
                                // only after write() packs it; staged
                                // item-major and transposed on write
  std::vector<TenantId> tenant_;
};

}  // namespace dvbp::trace
