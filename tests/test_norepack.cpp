// Tests for the offline no-repacking baseline: validity of the produced
// packing, the OPT(repack) <= norepack <= online-cost sandwich, gap
// splitting, and local-search improvement over its greedy seed.
#include "opt/offline_norepack.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

TEST(NoRepack, EmptyInstance) {
  Instance inst(1);
  const auto r = offline_norepack(inst);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.packing.num_bins(), 0u);
}

TEST(NoRepack, SingleItem) {
  Instance inst(1);
  inst.add(1.0, 4.0, RVec{0.5});
  const auto r = offline_norepack(inst);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_FALSE(r.packing.validate(inst).has_value());
}

TEST(NoRepack, PacksComplementaryItemsTogether) {
  Instance inst(2);
  inst.add(0.0, 5.0, RVec{0.9, 0.1});
  inst.add(0.0, 5.0, RVec{0.1, 0.9});
  const auto r = offline_norepack(inst);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
  EXPECT_EQ(r.packing.num_bins(), 1u);
}

TEST(NoRepack, GappedGroupSplitsIntoSeparateBins) {
  // Two disjoint-in-time items may share a "group"; the packing must
  // report them as separate single-interval bins with no extra cost.
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  inst.add(5.0, 7.0, RVec{0.5});
  const auto r = offline_norepack(inst);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_FALSE(r.packing.validate(inst).has_value());
  for (const BinRecord& bin : r.packing.bins()) {
    EXPECT_LE(bin.usage_time(), 2.0 + 1e-12);
  }
}

TEST(NoRepack, BeatsOnlineOnHindsightInstance) {
  // Online First Fit mixes a long item with shorts and strands bins;
  // offline assignment isolates the long items. Classic hindsight gain.
  Instance inst(1);
  for (int i = 0; i < 10; ++i) {
    inst.add(0.0, 1.0, RVec{0.5});     // shorts
    inst.add(0.0, 50.0, RVec{0.5});    // longs, interleaved
  }
  const double online = simulate(inst, "FirstFit").cost;
  const auto r = offline_norepack(inst);
  EXPECT_FALSE(r.packing.validate(inst).has_value());
  EXPECT_LT(r.cost, online * 0.7);
}

TEST(NoRepack, LocalSearchActuallyMoves) {
  Instance inst(1);
  for (int i = 0; i < 12; ++i) {
    inst.add(static_cast<Time>(i % 3), static_cast<Time>(i % 3 + 2 + i % 5),
             RVec{0.3 + 0.05 * (i % 4)});
  }
  const auto r = offline_norepack(inst);
  EXPECT_GT(r.sweeps, 0u);
  EXPECT_FALSE(r.packing.validate(inst).has_value());
}

class NoRepackSandwichTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(NoRepackSandwichTest, SitsBetweenOptAndOnline) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 30;
  params.mu = 6;
  params.span = 25;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, seed);

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);
  const auto norepack = offline_norepack(inst);
  EXPECT_FALSE(norepack.packing.validate(inst).has_value());

  // OPT(repack) <= norepack cost.
  EXPECT_GE(norepack.cost + 1e-9, opt.cost);
  // A *good* offline assignment should not lose to the best online policy
  // by much; assert it at least beats the worst ones on average... here we
  // assert the hard direction only for the deterministic seed policies:
  // the local search always weakly beats its own first-fit-by-duration
  // seed, and in practice lands under every online policy. Keep the
  // guaranteed inequality strict and the empirical one slack:
  const double mtf = simulate(inst, "MoveToFront").cost;
  EXPECT_LE(norepack.cost, mtf * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Random, NoRepackSandwichTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6)));

TEST(NoRepack, RejectsInvalidInstanceViaValidate) {
  // offline_norepack revalidates; a default-constructed empty instance is
  // fine, so exercise via the public API only.
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  EXPECT_NO_THROW(offline_norepack(inst));
}

TEST(NoRepack, DeterministicUnderSeed) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 40;
  params.mu = 5;
  params.span = 30;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, 9);
  NoRepackOptions opts;
  opts.seed = 123;
  const double a = offline_norepack(inst, opts).cost;
  const double b = offline_norepack(inst, opts).cost;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace dvbp
