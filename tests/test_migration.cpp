// Migration layer unit suite: the evict/replace Dispatcher primitives,
// the PackingInvariantChecker (positive and negative), the Rebalancer's
// budget accounting, cost-vs-bounds on a real workload, the JSONL trace
// round-trip for migrated runs, and the journaled evict/replace path of
// persist::DurableDispatcher (run, crash-free recover, bit-compare).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/invariants.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "core/serial.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "obs/observer.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"
#include "opt/lower_bounds.hpp"
#include "packing_hash.hpp"
#include "persist/durable.hpp"
#include "persist/journal.hpp"

namespace dvbp {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dvbp_migration_" + tag + "_" + std::to_string(++counter) +
            "_" + std::to_string(static_cast<unsigned>(::getpid())));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

RVec vec2(double a, double b) { return RVec{a, b}; }

Instance small_instance() {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 12;
  params.span = 100;
  params.bin_size = 9;
  return gen::uniform_instance(params, 0xA11CE);
}

/// Feeds the full event stream; job ids equal item ids (arrival order).
/// Calls `after_depart(time)` after every departure.
template <typename Service, typename AfterDepart>
void feed(Service& service, const Instance& inst, AfterDepart after_depart) {
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      service.arrive(item.arrival, item.size, item.departure);
    } else {
      service.depart(ev.time, item.id);
      after_depart(ev.time);
    }
  }
}

std::vector<std::uint8_t> saved_state(const Dispatcher& d) {
  serial::Writer out;
  d.save_state(out);
  return out.take();
}

// --- Evict / replace primitives ------------------------------------------

TEST(Evict, RemovesFromBinButKeepsJobActive) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.4, 0.4), 10.0).job;
  const JobId b = d.arrive(1.0, vec2(0.4, 0.4), 10.0).job;
  ASSERT_EQ(d.bin_of(a), d.bin_of(b));  // FirstFit co-locates them
  const BinId bin = d.bin_of(a);

  const Dispatcher::Eviction ev = d.evict(2.0, a);
  EXPECT_EQ(ev.bin, bin);
  EXPECT_FALSE(ev.emptied);  // b still lives there
  EXPECT_EQ(d.bin_of(a), kNoBin);
  EXPECT_EQ(d.last_bin_of(a), bin);
  EXPECT_TRUE(d.is_evicted(a));
  EXPECT_EQ(d.jobs_evicted(), 1u);
  EXPECT_EQ(d.jobs_active(), 2u);  // limbo jobs are still active
  EXPECT_EQ(d.open_bins(), 1u);

  // The bin's live load no longer includes the evicted job.
  const BinState* state = d.open_bin_state(bin);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->num_active(), 1u);
}

TEST(Evict, LastItemClosesTheBinPermanently) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.4, 0.4), 10.0).job;
  const BinId bin = d.bin_of(a);
  const Dispatcher::Eviction ev = d.evict(3.0, a);
  EXPECT_TRUE(ev.emptied);
  EXPECT_EQ(d.open_bins(), 0u);
  EXPECT_EQ(d.open_bin_state(bin), nullptr);
  EXPECT_DOUBLE_EQ(d.records()[bin].closed, 3.0);
  EXPECT_DOUBLE_EQ(d.closed_usage(), 3.0);
}

TEST(Evict, RejectsUnknownDepartedAndDoubleEvict) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.3, 0.3), 10.0).job;
  EXPECT_THROW(d.evict(1.0, a + 7), std::invalid_argument);
  EXPECT_NO_THROW(d.evict(1.0, a));
  EXPECT_THROW(d.evict(1.0, a), std::invalid_argument);  // already in limbo
  d.replace(1.0, a);
  d.depart(2.0, a);
  EXPECT_THROW(d.evict(3.0, a), std::invalid_argument);  // departed
}

TEST(Evict, DepartOfLimboJobIsRejected) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.3, 0.3), 10.0).job;
  d.evict(1.0, a);
  EXPECT_THROW(d.depart(2.0, a), std::invalid_argument);
  d.replace(2.0, a);
  EXPECT_NO_THROW(d.depart(3.0, a));
}

TEST(Replace, IntoTargetBinUpdatesAssignmentAndRecords) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.6, 0.6), 10.0).job;
  const JobId b = d.arrive(0.5, vec2(0.6, 0.6), 10.0).job;  // new bin
  const BinId from = d.bin_of(a);
  const BinId to = d.bin_of(b);
  ASSERT_NE(from, to);

  d.evict(1.0, a);
  EXPECT_THROW(d.replace(1.0, a, to), PolicyViolation);  // does not fit
  d.depart(2.0, b);  // frees `to`... which closes it instead
  EXPECT_THROW(d.replace(2.0, a, to), PolicyViolation);  // closed bin

  const BinId landed = d.replace(2.0, a);  // fresh bin
  EXPECT_EQ(landed, d.bin_of(a));
  EXPECT_EQ(landed, d.last_bin_of(a));
  EXPECT_FALSE(d.is_evicted(a));
  EXPECT_EQ(d.jobs_evicted(), 0u);
  // The job appears in both bins' histories; assignment names the last.
  EXPECT_EQ(d.records()[from].items.size(), 1u);
  EXPECT_EQ(d.records()[landed].items.size(), 1u);
  EXPECT_EQ(d.packing().assignment()[a], landed);
}

TEST(Replace, NonEvictedJobIsRejected) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.3, 0.3), 10.0).job;
  EXPECT_THROW(d.replace(1.0, a), std::invalid_argument);
  EXPECT_THROW(d.replace(1.0, a + 3), std::invalid_argument);
}

TEST(Replace, SaveRestoreRoundTripsLimboState) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  const JobId a = d.arrive(0.0, vec2(0.4, 0.4), 10.0).job;
  d.arrive(0.5, vec2(0.4, 0.4), 10.0);
  d.evict(1.0, a);

  serial::Writer out;
  d.save_state(out);
  PolicyPtr policy2 = make_policy("FirstFit", kPolicySeed);
  Dispatcher restored(2, *policy2);
  serial::Reader in(out.bytes());
  restored.restore_state(in);
  EXPECT_TRUE(restored.is_evicted(a));
  EXPECT_EQ(restored.jobs_evicted(), 1u);
  EXPECT_EQ(restored.last_bin_of(a), d.last_bin_of(a));
  EXPECT_EQ(saved_state(restored), saved_state(d));
  // The restored dispatcher can finish the migration.
  restored.replace(2.0, a);
  EXPECT_FALSE(restored.is_evicted(a));
}

// --- PackingInvariantChecker ---------------------------------------------

TEST(InvariantChecker, CleanRunPassesAfterEveryEvent) {
  const Instance inst = small_instance();
  PolicyPtr policy = make_policy("BestFit", kPolicySeed);
  Dispatcher d(inst.dim(), *policy);
  Rebalancer rebalancer(d, MigrationConfig{.migrations_per_event = 1.0});
  PackingInvariantChecker checker;
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      d.arrive(item.arrival, item.size, item.departure);
    } else {
      d.depart(ev.time, item.id);
      rebalancer.on_departure(ev.time);
    }
    const auto err = checker.check(d);
    ASSERT_FALSE(err.has_value()) << *err;
    const auto berr =
        PackingInvariantChecker::check_budget(rebalancer.budget_usage());
    ASSERT_FALSE(berr.has_value()) << *berr;
  }
  EXPECT_GT(rebalancer.stats().migrations, 0u);
}

TEST(InvariantChecker, SeesLimboJobsAsPlacedNowhere) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  PackingInvariantChecker checker;
  const JobId a = d.arrive(0.0, vec2(0.4, 0.4), 10.0).job;
  d.arrive(0.5, vec2(0.4, 0.4), 10.0);
  EXPECT_FALSE(checker.check(d).has_value());
  d.evict(1.0, a);
  EXPECT_FALSE(checker.check(d).has_value());  // limbo is a legal state
  d.replace(1.0, a);
  EXPECT_FALSE(checker.check(d).has_value());
}

TEST(InvariantChecker, BudgetOverdraftIsReported) {
  MigrationBudgetUsage usage;
  usage.migrations = 3;
  usage.migration_credits = 2.0;
  usage.volume = 0.5;
  usage.volume_credits = 1.0;
  const auto err = PackingInvariantChecker::check_budget(usage);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("migration"), std::string::npos);

  usage.migrations = 2;
  EXPECT_FALSE(PackingInvariantChecker::check_budget(usage).has_value());

  usage.volume = 1.5;
  EXPECT_TRUE(PackingInvariantChecker::check_budget(usage).has_value());
}

// --- Rebalancer ----------------------------------------------------------

TEST(Rebalancer, ClosesNearlyEmptyBinWithinBudget) {
  // bin0 holds {filler, short-lived}; the straggler overflows into bin1.
  // When the short-lived job departs, both bins are down to one survivor
  // and the rebalancer merges them (candidate order: fewest survivors,
  // ties by lowest id, so bin0's filler moves into bin1 and bin0 closes).
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  Rebalancer rebalancer(d, MigrationConfig{.migrations_per_event = 1.0});
  const JobId filler = d.arrive(0.0, vec2(0.5, 0.5), 100.0).job;
  const JobId brief = d.arrive(0.5, vec2(0.45, 0.45), 2.0).job;
  const JobId straggler = d.arrive(1.0, vec2(0.4, 0.4), 100.0).job;
  const BinId bin0 = d.bin_of(filler);
  const BinId bin1 = d.bin_of(straggler);
  ASSERT_EQ(d.bin_of(brief), bin0);
  ASSERT_NE(bin0, bin1);

  d.depart(2.0, brief);
  rebalancer.on_departure(2.0);
  EXPECT_EQ(rebalancer.stats().migrations, 1u);
  EXPECT_EQ(rebalancer.stats().bins_closed, 1u);
  EXPECT_EQ(d.bin_of(filler), bin1);
  EXPECT_EQ(d.bin_of(straggler), bin1);
  EXPECT_EQ(d.open_bins(), 1u);
  EXPECT_DOUBLE_EQ(d.records()[bin0].closed, 2.0);
  EXPECT_DOUBLE_EQ(rebalancer.stats().migrated_volume, 1.0);

  d.depart(3.0, filler);
  rebalancer.on_departure(3.0);
  d.depart(4.0, straggler);
  rebalancer.on_departure(4.0);
  EXPECT_EQ(d.open_bins(), 0u);
}

TEST(Rebalancer, ZeroBudgetNeverMigrates) {
  const Instance inst = small_instance();
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(inst.dim(), *policy);
  Rebalancer rebalancer(d, MigrationConfig{});  // 0 migrations/event
  feed(d, inst, [&](Time t) { rebalancer.on_departure(t); });
  EXPECT_EQ(rebalancer.stats().migrations, 0u);
  EXPECT_EQ(rebalancer.stats().bins_closed, 0u);
  // Budget 0 disables the rebalancer entirely -- including its event
  // accounting, since on_departure returns before touching any state
  // (the bit-exact budget-0 contract pinned by test_migration_parity).
  EXPECT_EQ(rebalancer.stats().events, 0u);
  EXPECT_DOUBLE_EQ(rebalancer.migration_credit_balance(), 0.0);
}

TEST(Rebalancer, VolumeBudgetBlocksTheMove) {
  // Same merge opportunity as ClosesNearlyEmptyBinWithinBudget, but the
  // volume budget (0.1 per event, burst 1.0) cannot pay for filler's
  // L1 volume of 1.0 -- the move is planned but must not execute.
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  MigrationConfig config;
  config.migrations_per_event = 1.0;
  config.volume_per_event = 0.1;
  config.burst_factor = 1.0;
  Rebalancer rebalancer(d, config);
  const JobId filler = d.arrive(0.0, vec2(0.5, 0.5), 100.0).job;
  const JobId brief = d.arrive(0.5, vec2(0.45, 0.45), 2.0).job;
  const JobId straggler = d.arrive(1.0, vec2(0.4, 0.4), 100.0).job;
  const BinId bin0 = d.bin_of(filler);
  ASSERT_EQ(d.bin_of(brief), bin0);
  ASSERT_NE(d.bin_of(straggler), bin0);
  d.depart(2.0, brief);
  rebalancer.on_departure(2.0);
  EXPECT_EQ(rebalancer.stats().migrations, 0u);
  EXPECT_EQ(d.bin_of(filler), bin0);
  EXPECT_EQ(d.open_bins(), 2u);
}

TEST(Rebalancer, CreditsAreCappedAtBurstFactor) {
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(2, *policy);
  MigrationConfig config;
  config.migrations_per_event = 1.0;
  config.burst_factor = 2.5;
  Rebalancer rebalancer(d, config);
  // Departures with nothing to migrate: credits bank up to the cap only.
  for (int i = 0; i < 8; ++i) {
    const JobId j =
        d.arrive(static_cast<Time>(i), vec2(0.9, 0.9), 1000.0).job;
    d.depart(static_cast<Time>(i) + 0.5, j);
    rebalancer.on_departure(static_cast<Time>(i) + 0.5);
  }
  EXPECT_DOUBLE_EQ(rebalancer.migration_credit_balance(), 2.5);
}

TEST(Rebalancer, AllOrNothingRefusesPartialCloses) {
  // bin0 holds two survivors but only the smaller fits elsewhere: the
  // close must not happen at all (no stranded half-migrations).
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher d(1, *policy);
  MigrationConfig config;
  config.migrations_per_event = MigrationConfig::kUnlimited;
  Rebalancer rebalancer(d, config);
  const JobId sB = d.arrive(0.0, RVec{0.5}, 100.0).job;   // bin0
  const JobId sA = d.arrive(0.1, RVec{0.25}, 100.0).job;  // bin0 (0.75)
  const JobId filler = d.arrive(0.2, RVec{0.7}, 100.0).job;  // bin1
  ASSERT_EQ(d.bin_of(sB), d.bin_of(sA));
  ASSERT_NE(d.bin_of(sB), d.bin_of(filler));
  const JobId dying = d.arrive(0.3, RVec{0.9}, 1.0).job;  // bin2, alone
  d.depart(1.0, dying);  // closes bin2, triggers the rebalancer
  rebalancer.on_departure(1.0);
  // bin1's filler (0.7) fits nowhere; bin0's pair: sA (0.25) would fit in
  // bin1 (0.95) but sB (0.5) would not -- all-or-nothing, nothing moves.
  EXPECT_EQ(rebalancer.stats().migrations, 0u);
  EXPECT_EQ(d.bin_of(sB), d.bin_of(sA));
  EXPECT_EQ(d.open_bins(), 2u);
  (void)filler;
}

// --- Cost vs offline bounds ----------------------------------------------

TEST(MigrationCost, BudgetImprovesCostAndRespectsLowerBound) {
  const Instance inst = small_instance();
  const double lb = lower_bounds(inst).best();
  double cost_at[3];
  const double budgets[3] = {0.0, 1.0, MigrationConfig::kUnlimited};
  for (int i = 0; i < 3; ++i) {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    Dispatcher d(inst.dim(), *policy);
    Rebalancer rebalancer(
        d, MigrationConfig{.migrations_per_event = budgets[i]});
    feed(d, inst, [&](Time t) { rebalancer.on_departure(t); });
    cost_at[i] = d.cost_so_far(d.last_event_time());
    EXPECT_GE(cost_at[i], lb) << "budget " << budgets[i]
                              << ": beat the OPT lower bound?!";
  }
  // On this pinned workload+seed the rebalancer strictly helps, and more
  // budget never hurts (not a theorem in general; pinned empirically).
  EXPECT_LT(cost_at[1], cost_at[0]);
  EXPECT_LE(cost_at[2], cost_at[1]);
}

// --- Trace round-trip ----------------------------------------------------

TEST(MigrationTrace, ReplayReconstructsTheMigratedPacking) {
  const Instance inst = small_instance();
  TempDir dir("trace");
  fs::create_directories(dir.path);
  const std::string trace_path = (dir.path / "trace.jsonl").string();
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  obs::Tracer tracer(std::make_shared<obs::FileSink>(trace_path));
  obs::Observer observer(nullptr, &tracer);
  Dispatcher d(inst.dim(), *policy, 1.0, &observer);
  Rebalancer rebalancer(d, MigrationConfig{.migrations_per_event = 2.0});
  feed(d, inst, [&](Time t) { rebalancer.on_departure(t); });
  tracer.flush();
  ASSERT_GT(rebalancer.stats().migrations, 0u);

  const Packing live = d.packing();
  const Packing replayed = obs::replay_packing_file(trace_path);
  EXPECT_EQ(packing_hash(live), packing_hash(replayed));
  EXPECT_EQ(live.assignment(), replayed.assignment());
}

// --- Durable evict/replace -----------------------------------------------

TEST(DurableMigration, JournaledRunRecoversBitExact) {
  const Instance inst = small_instance();
  TempDir dir("durable");
  std::vector<std::uint8_t> want_state;
  {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = dir.str();
    opts.fsync = persist::FsyncPolicy::kNone;
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    Rebalancer rebalancer(durable.dispatcher(),
                          MigrationConfig{.migrations_per_event = 1.0},
                          durable.migration_exec());
    feed(durable, inst, [&](Time t) { rebalancer.on_departure(t); });
    EXPECT_GT(rebalancer.stats().migrations, 0u);
    want_state = saved_state(durable.dispatcher());
  }
  // The journal now contains kEvict/kReplace frames; recovery must replay
  // them to the identical state.
  std::size_t evicts = 0, replaces = 0;
  for (const persist::JournalRecord& rec :
       persist::scan_journal(dir.str()).records) {
    evicts += rec.kind == persist::OpKind::kEvict;
    replaces += rec.kind == persist::OpKind::kReplace;
  }
  EXPECT_GT(evicts, 0u);
  EXPECT_EQ(evicts, replaces);  // every migration is an evict+replace pair

  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  persist::DurableOptions opts;
  opts.dir = dir.str();
  opts.fsync = persist::FsyncPolicy::kNone;
  persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
  EXPECT_FALSE(recovered.recovery().torn_tail);
  EXPECT_EQ(saved_state(recovered.dispatcher()), want_state);
  EXPECT_EQ(dispatcher_state_hash(recovered.dispatcher()),
            [&] {
              // Cross-check against a plain dispatcher run (no journal).
              PolicyPtr p2 = make_policy("FirstFit", kPolicySeed);
              Dispatcher plain(inst.dim(), *p2);
              Rebalancer r2(
                  plain, MigrationConfig{.migrations_per_event = 1.0});
              feed(plain, inst, [&](Time t) { r2.on_departure(t); });
              return dispatcher_state_hash(plain);
            }());
}

TEST(DurableMigration, CheckpointMidMigrationRoundTrips) {
  const Instance inst = small_instance();
  TempDir dir("ckpt");
  std::vector<std::uint8_t> want_state;
  {
    PolicyPtr policy = make_policy("BestFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = dir.str();
    opts.fsync = persist::FsyncPolicy::kNone;
    opts.checkpoint_every = 37;  // off-phase with migrations
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    Rebalancer rebalancer(durable.dispatcher(),
                          MigrationConfig{.migrations_per_event = 1.0},
                          durable.migration_exec());
    feed(durable, inst, [&](Time t) { rebalancer.on_departure(t); });
    EXPECT_GT(rebalancer.stats().migrations, 0u);
    want_state = saved_state(durable.dispatcher());
  }
  PolicyPtr policy = make_policy("BestFit", kPolicySeed);
  persist::DurableOptions opts;
  opts.dir = dir.str();
  opts.fsync = persist::FsyncPolicy::kNone;
  persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
  EXPECT_TRUE(recovered.recovery().had_checkpoint);
  EXPECT_EQ(saved_state(recovered.dispatcher()), want_state);
}

}  // namespace
}  // namespace dvbp
