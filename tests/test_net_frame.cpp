// Wire-codec tests for src/net/frame.hpp: round-trips for every message
// type, raw-bit preservation of IEEE-754 payloads (the runtime half of the
// compile-time asserts in core/serial.hpp), streaming reassembly of
// partial frames, and a corruption fuzz: truncation, implausible lengths,
// CRC flips, trailing bytes, and random mutations must all surface as
// FrameError -- never a crash, hang, or silently wrong decode. The same
// corruptions are replayed against a live server socket in
// tests/test_net_server.cpp.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "core/rvec.hpp"
#include "core/serial.hpp"

namespace dvbp::net {
namespace {

std::vector<std::uint8_t> one_request_frame(const Request& req) {
  std::vector<std::uint8_t> out;
  encode_request(req, out);
  return out;
}

/// Strips the header and decodes the payload of a single encoded frame.
Request decode_one_request(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  return decode_request(frame.data() + kFrameHeaderBytes,
                        frame.size() - kFrameHeaderBytes);
}

Response decode_one_response(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  return decode_response(frame.data() + kFrameHeaderBytes,
                         frame.size() - kFrameHeaderBytes);
}

TEST(NetFrame, ArriveRoundTrip) {
  Request req;
  req.id = 7;
  req.type = MsgType::kArrive;
  req.time = 12.5;
  req.expected_departure = 99.25;
  RVec size(3);
  size[0] = 0.25;
  size[1] = 0.5;
  size[2] = 0.125;
  req.size = size;

  const Request back = decode_one_request(one_request_frame(req));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.type, MsgType::kArrive);
  EXPECT_DOUBLE_EQ(back.time, 12.5);
  EXPECT_DOUBLE_EQ(back.expected_departure, 99.25);
  ASSERT_EQ(back.size.dim(), 3u);
  EXPECT_DOUBLE_EQ(back.size[0], 0.25);
  EXPECT_DOUBLE_EQ(back.size[1], 0.5);
  EXPECT_DOUBLE_EQ(back.size[2], 0.125);
}

TEST(NetFrame, DepartQuerySnapshotDrainPingRoundTrip) {
  for (const MsgType type : {MsgType::kDepart, MsgType::kQuery,
                             MsgType::kSnapshot, MsgType::kDrain,
                             MsgType::kPing}) {
    Request req;
    req.id = 42;
    req.type = type;
    req.time = 3.0;
    req.job = 19;
    const Request back = decode_one_request(one_request_frame(req));
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.type, type);
    if (type == MsgType::kDepart) {
      EXPECT_EQ(back.job, 19u);
    }
  }
}

TEST(NetFrame, ResponseRoundTripAllStatuses) {
  Response resp;
  resp.id = 11;
  resp.type = MsgType::kArrive;
  resp.status = Status::kOk;
  resp.job = 1234;
  std::vector<std::uint8_t> out;
  encode_response(resp, out);
  const Response back = decode_one_response(out);
  EXPECT_EQ(back.id, 11u);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.job, 1234u);

  // Non-OK responses carry no body regardless of type.
  for (const Status s : {Status::kRetryLater, Status::kBadRequest,
                         Status::kUnknownJob, Status::kShuttingDown,
                         Status::kNotQuiescent, Status::kInternalError}) {
    Response r;
    r.id = 5;
    r.type = MsgType::kArrive;
    r.status = s;
    std::vector<std::uint8_t> buf;
    encode_response(r, buf);
    const Response b = decode_one_response(buf);
    EXPECT_EQ(b.status, s);
    EXPECT_FALSE(status_name(b.status).empty());
  }

  Response query;
  query.id = 12;
  query.type = MsgType::kQuery;
  query.cost = 17.5;
  query.open_bins = 3;
  query.jobs_active = 9;
  query.jobs_admitted = 21;
  std::vector<std::uint8_t> qbuf;
  encode_response(query, qbuf);
  const Response qb = decode_one_response(qbuf);
  EXPECT_DOUBLE_EQ(qb.cost, 17.5);
  EXPECT_EQ(qb.open_bins, 3u);
  EXPECT_EQ(qb.jobs_active, 9u);
  EXPECT_EQ(qb.jobs_admitted, 21u);

  Response drain;
  drain.id = 13;
  drain.type = MsgType::kDrain;
  drain.packing_hash = 0xDEADBEEFCAFEF00Dull;
  drain.num_bins = 77;
  drain.cost = 2.25;
  std::vector<std::uint8_t> dbuf;
  encode_response(drain, dbuf);
  const Response db = decode_one_response(dbuf);
  EXPECT_EQ(db.packing_hash, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(db.num_bins, 77u);
  EXPECT_DOUBLE_EQ(db.cost, 2.25);
}

// The runtime half of the core/serial.hpp static asserts: doubles cross
// the wire as raw IEEE-754 bits, so every bit pattern -- infinities,
// signed zeros, denormals, and a NaN with payload -- survives exactly.
TEST(NetFrame, DoubleRawBitsSurviveTheWire) {
  const std::uint64_t patterns[] = {
      std::bit_cast<std::uint64_t>(0.0),
      std::bit_cast<std::uint64_t>(-0.0),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity()),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::denorm_min()),
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max()),
      0x7FF8000000000DEFull,  // quiet NaN with payload
      std::bit_cast<std::uint64_t>(0.1),
  };
  for (const std::uint64_t bits : patterns) {
    const double v = std::bit_cast<double>(bits);
    serial::Writer w;
    w.f64(v);
    serial::Reader r(w.bytes().data(), w.size());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()), bits);
  }
  // float is asserted IEC 559 too (compile-time); check its raw bit
  // round-trip through the same little-endian u32 path.
  const float f = -std::numeric_limits<float>::denorm_min();
  serial::Writer w;
  w.u32(std::bit_cast<std::uint32_t>(f));
  serial::Reader r(w.bytes().data(), w.size());
  EXPECT_EQ(std::bit_cast<float>(r.u32()), f);

  // And end to end: an arrive whose coordinates are exact binary fractions
  // plus an infinite expected departure decodes bit-identically.
  Request req;
  req.type = MsgType::kArrive;
  req.time = 0.1;  // not exactly representable: bits must still match
  req.expected_departure = std::numeric_limits<double>::infinity();
  RVec size(1);
  size[0] = 0.3;
  req.size = size;
  const Request back = decode_one_request(one_request_frame(req));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.time),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_TRUE(std::isinf(back.expected_departure));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.size[0]),
            std::bit_cast<std::uint64_t>(0.3));
}

TEST(NetFrame, DecoderReassemblesBytewiseAndInterleaved) {
  // Three frames fed one byte at a time must come out intact and in order.
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Request req;
    req.id = id;
    req.type = MsgType::kDepart;
    req.time = static_cast<double>(id);
    req.job = id * 10;
    encode_request(req, stream);
  }
  FrameDecoder dec;
  std::vector<Request> got;
  for (const std::uint8_t byte : stream) {
    dec.feed(&byte, 1);
    while (auto payload = dec.next()) {
      got.push_back(decode_request(payload->data(), payload->size()));
    }
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(got[id - 1].id, id);
    EXPECT_EQ(got[id - 1].job, id * 10);
  }
  EXPECT_EQ(dec.buffered(), 0u);

  // Interleaved partial frames: half of frame A, then the rest of A plus
  // all of B in one feed.
  std::vector<std::uint8_t> a = one_request_frame([] {
    Request r;
    r.id = 100;
    r.type = MsgType::kPing;
    return r;
  }());
  std::vector<std::uint8_t> b = one_request_frame([] {
    Request r;
    r.id = 101;
    r.type = MsgType::kQuery;
    r.time = 5.0;
    return r;
  }());
  FrameDecoder dec2;
  const std::size_t half = a.size() / 2;
  dec2.feed(a.data(), half);
  EXPECT_FALSE(dec2.next().has_value());
  std::vector<std::uint8_t> rest(a.begin() + half, a.end());
  rest.insert(rest.end(), b.begin(), b.end());
  dec2.feed(rest.data(), rest.size());
  auto p1 = dec2.next();
  auto p2 = dec2.next();
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(decode_request(p1->data(), p1->size()).id, 100u);
  EXPECT_EQ(decode_request(p2->data(), p2->size()).id, 101u);
}

TEST(NetFrame, TruncatedFrameIsJustIncomplete) {
  const std::vector<std::uint8_t> frame = one_request_frame([] {
    Request r;
    r.id = 1;
    r.type = MsgType::kQuery;
    r.time = 1.0;
    return r;
  }());
  // Every proper prefix yields "need more bytes", never an error or a frame.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameDecoder dec;
    if (cut > 0) dec.feed(frame.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "prefix " << cut;
  }
}

TEST(NetFrame, ImplausibleLengthRejectedAtHeader) {
  serial::Writer header;
  header.u32(kMaxPayloadBytes + 1);
  header.u32(0);
  FrameDecoder dec;
  EXPECT_THROW(dec.feed(header.bytes().data(), header.size()), FrameError);
}

TEST(NetFrame, CrcFlipRejected) {
  std::vector<std::uint8_t> frame = one_request_frame([] {
    Request r;
    r.id = 9;
    r.type = MsgType::kPing;
    return r;
  }());
  // Flip one payload bit: CRC check must fire.
  frame.back() ^= 0x01;
  FrameDecoder dec;
  EXPECT_THROW(
      {
        dec.feed(frame.data(), frame.size());
        dec.next();
      },
      FrameError);
}

TEST(NetFrame, BodyValidationRejects) {
  // Unknown message type.
  {
    serial::Writer payload;
    payload.u64(1);
    payload.u8(200);
    EXPECT_THROW(decode_request(payload.bytes().data(), payload.size()),
                 FrameError);
  }
  // Implausible dimension.
  {
    serial::Writer payload;
    payload.u64(1);
    payload.u8(static_cast<std::uint8_t>(MsgType::kArrive));
    payload.f64(0.0);
    payload.f64(1.0);
    payload.u32(1u << 30);
    EXPECT_THROW(decode_request(payload.bytes().data(), payload.size()),
                 FrameError);
  }
  // Trailing bytes after a valid body.
  {
    serial::Writer payload;
    payload.u64(1);
    payload.u8(static_cast<std::uint8_t>(MsgType::kPing));
    payload.u8(0xFF);
    EXPECT_THROW(decode_request(payload.bytes().data(), payload.size()),
                 FrameError);
  }
  // Truncated body (depart missing its job id).
  {
    serial::Writer payload;
    payload.u64(1);
    payload.u8(static_cast<std::uint8_t>(MsgType::kDepart));
    payload.f64(1.0);
    EXPECT_THROW(decode_request(payload.bytes().data(), payload.size()),
                 FrameError);
  }
  // Unknown status byte in a response.
  {
    serial::Writer payload;
    payload.u64(1);
    payload.u8(static_cast<std::uint8_t>(MsgType::kPing));
    payload.u8(250);
    EXPECT_THROW(decode_response(payload.bytes().data(), payload.size()),
                 FrameError);
  }
}

// Random-mutation fuzz: every single-byte corruption of a valid frame
// either still decodes (the mutation hit a don't-care bit -- impossible
// here since every byte is covered by the CRC), fails the CRC, or fails
// body validation. It must never crash, hang, or return a frame whose
// bytes differ from what the CRC covers.
TEST(NetFrame, SingleByteMutationsNeverCrash) {
  Request req;
  req.id = 77;
  req.type = MsgType::kArrive;
  req.time = 1.5;
  req.expected_departure = 9.0;
  RVec size(2);
  size[0] = 0.25;
  size[1] = 0.75;
  req.size = size;
  const std::vector<std::uint8_t> frame = one_request_frame(req);

  std::mt19937_64 rng(20260808);
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<std::uint8_t> mutated = frame;
      const auto flip =
          static_cast<std::uint8_t>(1u << (rng() % 8));
      mutated[pos] ^= flip;
      FrameDecoder dec;
      try {
        dec.feed(mutated.data(), mutated.size());
        const auto payload = dec.next();
        if (payload.has_value()) {
          // CRC happened to still match (mutation in the length field can
          // shift framing): the payload must then parse or throw cleanly.
          decode_request(payload->data(), payload->size());
        }
      } catch (const FrameError&) {
        ++rejected;
      }
    }
  }
  // The overwhelming majority of single-bit flips must be caught.
  EXPECT_GT(rejected, frame.size() * 3);
}

// Random garbage: feed pseudo-random byte chunks; the decoder either asks
// for more bytes or throws. Whatever happens, memory stays bounded by the
// implausible-length early check.
TEST(NetFrame, RandomGarbageIsRejectedOrIncomplete) {
  std::mt19937_64 rng(123);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    bool threw = false;
    for (int chunk = 0; chunk < 8 && !threw; ++chunk) {
      std::vector<std::uint8_t> bytes(1 + rng() % 64);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      try {
        dec.feed(bytes.data(), bytes.size());
        while (dec.next().has_value()) {
        }
      } catch (const FrameError&) {
        threw = true;  // fine: connection would be closed
      }
    }
    EXPECT_LE(dec.buffered(),
              kFrameHeaderBytes + kMaxPayloadBytes);
  }
}

}  // namespace
}  // namespace dvbp::net
