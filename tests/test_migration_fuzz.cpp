// Randomized differential fuzz for the migration layer (ISSUE 7).
//
// Three attack surfaces:
//   1. the raw evict()/replace() primitives, driven by a seeded random op
//      stream with the PackingInvariantChecker asserted after EVERY op;
//   2. the Rebalancer planner at random budgets, with both the packing
//      invariants and the budget-overdraft check on every event;
//   3. the sharded service's rebalance_shards() under real producer
//      threads (this test is in the ThreadSanitizer CI job's net).
//
// A failing op stream is useless at 500 ops, so the harness ships a ddmin
// shrinker (tests/ddmin.hpp, shared with the tenancy fuzzer): it reduces
// a failing stream to a 1-minimal sub-stream (drop any op and the failure
// disappears) before printing it. The shrinker is itself under test
// against predicates with known minimal cores.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/invariants.hpp"
#include "core/policies/policy.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "core/simulator.hpp"  // PolicyViolation
#include "gen/uniform.hpp"

#include "ddmin.hpp"

namespace dvbp {
namespace {

using testing::ddmin;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

// Policies whose bin choice has no class structure: replace() may put any
// item into any open bin without violating the policy's own invariants.
const char* const kRobustPolicies[] = {"FirstFit", "BestFit", "MoveToFront",
                                       "NextFit"};

// ---------------------------------------------------------------------------
// Op model. Ops name jobs directly (job ids are assigned in arrival
// order), so any *subsequence* of a stream is still executable: an op
// whose precondition no longer holds (depart of a job whose arrival was
// dropped, say) is skipped, which is what makes ddmin work on these.
struct FuzzOp {
  enum class Kind : std::uint8_t { kArrive, kDepart, kEvict, kReplace };
  Kind kind = Kind::kArrive;
  Time time = 0.0;
  JobId job = kNoItem;       // all but kArrive
  RVec size;                 // kArrive only
  std::uint32_t target = 0;  // kReplace: picks an open bin (see apply)
  bool fresh_bin = false;    // kReplace: force a fresh bin
};

std::string describe(const FuzzOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case FuzzOp::Kind::kArrive:
      out << "arrive t=" << op.time;
      break;
    case FuzzOp::Kind::kDepart:
      out << "depart t=" << op.time << " job=" << op.job;
      break;
    case FuzzOp::Kind::kEvict:
      out << "evict t=" << op.time << " job=" << op.job;
      break;
    case FuzzOp::Kind::kReplace:
      out << "replace t=" << op.time << " job=" << op.job
          << (op.fresh_bin ? " fresh" : " target") << "=" << op.target;
      break;
  }
  return out.str();
}

std::string describe(const std::vector<FuzzOp>& ops) {
  std::string out;
  for (const FuzzOp& op : ops) out += "  " + describe(op) + "\n";
  return out;
}

/// Generates a stream where every op is valid when the full stream runs:
/// the generator tracks live/limbo state and only emits feasible ops.
std::vector<FuzzOp> generate_stream(std::uint64_t seed, std::size_t n_ops,
                                    std::size_t dim) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.05, 0.55);
  std::uniform_real_distribution<double> dt(0.0, 1.5);
  std::vector<FuzzOp> ops;
  ops.reserve(n_ops);
  Time now = 0.0;
  std::vector<JobId> live;   // placed, not departed, not evicted
  std::vector<JobId> limbo;  // evicted, awaiting replace
  JobId next_job = 0;
  const auto take = [&rng](std::vector<JobId>& pool) {
    const std::size_t i = rng() % pool.size();
    const JobId job = pool[i];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    return job;
  };
  for (std::size_t i = 0; i < n_ops; ++i) {
    now += dt(rng);
    FuzzOp op;
    op.time = now;
    // Weighted pick among currently-feasible kinds.
    const std::uint32_t roll = static_cast<std::uint32_t>(rng() % 100);
    if (!limbo.empty() && (roll < 25 || limbo.size() >= 4)) {
      op.kind = FuzzOp::Kind::kReplace;
      op.job = take(limbo);
      op.fresh_bin = (rng() % 2) == 0;
      op.target = static_cast<std::uint32_t>(rng());
      live.push_back(op.job);
    } else if (!live.empty() && roll < 45) {
      op.kind = FuzzOp::Kind::kEvict;
      op.job = take(live);
      limbo.push_back(op.job);
    } else if (!live.empty() && (roll < 70 || next_job > 60)) {
      op.kind = FuzzOp::Kind::kDepart;
      op.job = take(live);
    } else {
      op.kind = FuzzOp::Kind::kArrive;
      op.job = next_job;
      op.size = RVec(dim);
      for (std::size_t k = 0; k < dim; ++k) op.size[k] = unit(rng);
      live.push_back(next_job++);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Applies `ops` to a fresh dispatcher, running the invariant checker
/// after every op. Infeasible ops (preconditions broken by ddmin dropping
/// earlier ops) are skipped; a replace whose open-bin target cannot hold
/// the job falls back to a fresh bin. Returns the first invariant
/// violation, or nullopt.
std::optional<std::string> apply_stream(const std::vector<FuzzOp>& ops,
                                        const std::string& policy_name,
                                        std::size_t dim) {
  const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  Dispatcher dispatcher(dim, *policy);
  PackingInvariantChecker checker;
  std::vector<JobId> id_map;  // op-stream job -> dispatcher job
  Time now = 0.0;
  for (const FuzzOp& op : ops) {
    now = std::max(now, op.time);
    switch (op.kind) {
      case FuzzOp::Kind::kArrive:
        id_map.push_back(dispatcher.arrive(now, op.size).job);
        break;
      case FuzzOp::Kind::kDepart: {
        if (op.job >= id_map.size()) continue;
        const JobId job = id_map[op.job];
        if (dispatcher.bin_of(job) == kNoBin) continue;
        dispatcher.depart(now, job);
        break;
      }
      case FuzzOp::Kind::kEvict: {
        if (op.job >= id_map.size()) continue;
        const JobId job = id_map[op.job];
        if (dispatcher.bin_of(job) == kNoBin) continue;
        dispatcher.evict(now, job);
        break;
      }
      case FuzzOp::Kind::kReplace: {
        if (op.job >= id_map.size()) continue;
        const JobId job = id_map[op.job];
        if (!dispatcher.is_evicted(job)) continue;
        BinId target = kNoBin;
        const auto views = dispatcher.open_views();
        if (!op.fresh_bin && !views.empty()) {
          target = views[op.target % views.size()].id;
        }
        try {
          dispatcher.replace(now, job, target);
        } catch (const PolicyViolation&) {
          dispatcher.replace(now, job, kNoBin);
        }
        break;
      }
    }
    if (auto err = checker.check(dispatcher)) {
      return "after [" + describe(op) + "]: " + *err;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------

// Surface 1: the evict/replace primitives under random op soup.
TEST(MigrationFuzz, RandomEvictReplaceKeepsInvariantsEveryStep) {
  for (const char* policy : kRobustPolicies) {
    for (std::uint64_t seed : {11u, 29u, 47u}) {
      for (std::size_t dim : {1u, 3u}) {
        SCOPED_TRACE(std::string(policy) + " seed=" +
                     std::to_string(seed) + " d=" + std::to_string(dim));
        auto ops = generate_stream(seed, 500, dim);
        auto failure = apply_stream(ops, policy, dim);
        if (failure.has_value()) {
          // Shrink before reporting so the repro is actionable.
          const auto fails = [&](const std::vector<FuzzOp>& sub) {
            return apply_stream(sub, policy, dim).has_value();
          };
          const auto minimal = ddmin(ops, fails);
          FAIL() << *failure << "\nminimal repro ("
                 << minimal.size() << " ops):\n" << describe(minimal);
        }
      }
    }
  }
}

// Replays that skip infeasible ops must leave the final state consistent
// too: finish every stream by replacing limbo jobs and departing the
// rest, then re-check.
TEST(MigrationFuzz, StreamsWindDownToAnEmptyConsistentState) {
  const std::size_t dim = 2;
  const auto ops = generate_stream(/*seed=*/5, /*n_ops=*/400, dim);
  const PolicyPtr policy = make_policy("BestFit", kPolicySeed);
  Dispatcher dispatcher(dim, *policy);
  PackingInvariantChecker checker;
  std::vector<JobId> id_map;
  Time now = 0.0;
  for (const FuzzOp& op : ops) {
    now = std::max(now, op.time);
    switch (op.kind) {
      case FuzzOp::Kind::kArrive:
        id_map.push_back(dispatcher.arrive(now, op.size).job);
        break;
      case FuzzOp::Kind::kDepart:
        dispatcher.depart(now, id_map.at(op.job));
        break;
      case FuzzOp::Kind::kEvict:
        dispatcher.evict(now, id_map.at(op.job));
        break;
      case FuzzOp::Kind::kReplace:
        try {
          const auto views = dispatcher.open_views();
          BinId target = (op.fresh_bin || views.empty())
                             ? kNoBin
                             : views[op.target % views.size()].id;
          dispatcher.replace(now, id_map.at(op.job), target);
        } catch (const PolicyViolation&) {
          dispatcher.replace(now, id_map.at(op.job), kNoBin);
        }
        break;
    }
    ASSERT_FALSE(checker.check(dispatcher).has_value());
  }
  now += 1.0;
  for (JobId job = 0; job < dispatcher.jobs_admitted(); ++job) {
    if (dispatcher.is_evicted(job)) dispatcher.replace(now, job);
    ASSERT_FALSE(checker.check(dispatcher).has_value());
  }
  for (JobId job = 0; job < dispatcher.jobs_admitted(); ++job) {
    if (dispatcher.bin_of(job) != kNoBin) dispatcher.depart(now, job);
    ASSERT_FALSE(checker.check(dispatcher).has_value());
  }
  EXPECT_EQ(dispatcher.jobs_active(), 0u);
  EXPECT_EQ(dispatcher.jobs_evicted(), 0u);
  EXPECT_EQ(dispatcher.open_bins(), 0u);
}

// Surface 2: the Rebalancer planner at random budgets. Both the packing
// invariants and the no-overdraft budget check run on every event.
TEST(MigrationFuzz, RebalancerNeverOverdrawsAtRandomBudgets) {
  std::mt19937_64 rng(0xB4D6E7u);
  for (int trial = 0; trial < 6; ++trial) {
    gen::UniformParams params;
    params.d = 1 + (trial % 3);
    params.n = 200;
    params.mu = 10;
    params.span = 80;
    params.bin_size = 8;
    const Instance inst = gen::uniform_instance(params, rng());
    MigrationConfig config;
    config.migrations_per_event = static_cast<double>(rng() % 3);
    config.volume_per_event =
        (rng() % 2) ? MigrationConfig::kUnlimited
                    : 0.25 * static_cast<double>(1 + rng() % 4);
    config.burst_factor = 1.0 + static_cast<double>(rng() % 8);
    config.max_survivors = 1 + rng() % 5;
    SCOPED_TRACE("trial=" + std::to_string(trial) + " d=" +
                 std::to_string(params.d) + " mpe=" +
                 std::to_string(config.migrations_per_event));

    const char* policy_name = kRobustPolicies[trial % 4];
    const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
    Dispatcher dispatcher(inst.dim(), *policy);
    Rebalancer rebalancer(dispatcher, config);
    PackingInvariantChecker checker;
    for (const Event& ev : build_event_stream(inst)) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        dispatcher.arrive(item.arrival, item.size, item.departure);
      } else {
        dispatcher.depart(ev.time, item.id);
        rebalancer.on_departure(ev.time);
      }
      const auto err = checker.check(dispatcher);
      ASSERT_FALSE(err.has_value()) << *err;
      const auto overdraft =
          PackingInvariantChecker::check_budget(rebalancer.budget_usage());
      ASSERT_FALSE(overdraft.has_value()) << *overdraft;
    }
    EXPECT_EQ(dispatcher.jobs_evicted(), 0u)
        << "rebalancer left a job in limbo";
  }
}

// ---------------------------------------------------------------------------
// The shrinker itself: predicates with known minimal cores.

std::vector<FuzzOp> indexed_ops(std::size_t n) {
  std::vector<FuzzOp> ops(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops[i].time = static_cast<Time>(i);  // identity tag for predicates
  }
  return ops;
}

TEST(MigrationFuzz, DdminFindsAKnownTwoOpCore) {
  // Fails iff ops tagged 17 and 53 both survive, in order.
  const auto fails = [](const std::vector<FuzzOp>& ops) {
    bool saw17 = false;
    for (const FuzzOp& op : ops) {
      if (op.time == 17.0) saw17 = true;
      if (op.time == 53.0 && saw17) return true;
    }
    return false;
  };
  const auto minimal = ddmin(indexed_ops(100), fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].time, 17.0);
  EXPECT_EQ(minimal[1].time, 53.0);
}

TEST(MigrationFuzz, DdminIsOneMinimalOnScatteredCores) {
  // Fails iff at least 3 ops tagged == 0 mod 7 survive.
  const auto fails = [](const std::vector<FuzzOp>& ops) {
    std::size_t hits = 0;
    for (const FuzzOp& op : ops) {
      if (static_cast<std::uint64_t>(op.time) % 7 == 0) ++hits;
    }
    return hits >= 3;
  };
  auto minimal = ddmin(indexed_ops(64), fails);
  ASSERT_TRUE(fails(minimal));
  ASSERT_EQ(minimal.size(), 3u);
  // 1-minimality: dropping any single op kills the failure.
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    auto probe = minimal;
    probe.erase(probe.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(fails(probe));
  }
}

TEST(MigrationFuzz, DdminShrinksARealOpStreamPredicate) {
  // Behavioral (not bug) predicate on real replay: "some prefix holds
  // >= 3 jobs in limbo at once". The shrunk stream must still be
  // executable and 1-minimal under the same predicate.
  const std::size_t dim = 2;
  const std::string policy = "FirstFit";
  const auto deep_limbo = [&](const std::vector<FuzzOp>& sub) {
    const PolicyPtr p = make_policy(policy, kPolicySeed);
    Dispatcher d(dim, *p);
    std::vector<JobId> id_map;
    Time now = 0.0;
    for (const FuzzOp& op : sub) {
      now = std::max(now, op.time);
      switch (op.kind) {
        case FuzzOp::Kind::kArrive:
          id_map.push_back(d.arrive(now, op.size).job);
          break;
        case FuzzOp::Kind::kDepart:
          if (op.job < id_map.size() &&
              d.bin_of(id_map[op.job]) != kNoBin) {
            d.depart(now, id_map[op.job]);
          }
          break;
        case FuzzOp::Kind::kEvict:
          if (op.job < id_map.size() &&
              d.bin_of(id_map[op.job]) != kNoBin) {
            d.evict(now, id_map[op.job]);
          }
          break;
        case FuzzOp::Kind::kReplace:
          if (op.job < id_map.size() && d.is_evicted(id_map[op.job])) {
            d.replace(now, id_map[op.job]);
          }
          break;
      }
      if (d.jobs_evicted() >= 3) return true;
    }
    return false;
  };
  std::vector<FuzzOp> ops;
  std::uint64_t seed = 1;
  do {
    ops = generate_stream(seed++, 400, dim);
  } while (!deep_limbo(ops));
  const auto minimal = ddmin(ops, deep_limbo);
  ASSERT_TRUE(deep_limbo(minimal)) << describe(minimal);
  // The true core is 3 arrivals + 3 evictions; ddmin guarantees only
  // 1-minimality, so allow a slightly larger local minimum.
  EXPECT_GE(minimal.size(), 6u) << describe(minimal);
  EXPECT_LE(minimal.size(), 12u) << describe(minimal);
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    auto probe = minimal;
    probe.erase(probe.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(deep_limbo(probe)) << "dropping op " << i
                                    << " should kill the predicate";
  }
}

// ---------------------------------------------------------------------------
// Surface 3: sharded rebalancing with live producer threads (TSan food).
// Phases of [threaded feed -> join -> drain -> rebalance -> check].
TEST(MigrationFuzz, ShardedRebalanceUnderThreadedFeed) {
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPhases = 3;
  constexpr std::size_t kJobsPerThreadPhase = 40;
  cloud::ShardedOptions options;
  options.shards = 3;
  options.router = cloud::RouterKind::kRoundRobin;
  cloud::ShardedDispatcher service(
      /*dim=*/2,
      [](std::size_t) { return make_policy("FirstFit", kPolicySeed); },
      options);

  std::vector<PackingInvariantChecker> checkers(options.shards);
  std::vector<std::vector<JobId>> mine(kThreads);  // per-thread live jobs
  Time phase_base = 0.0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng(0x5EED00u + phase * 31 + t);
        std::uniform_real_distribution<double> unit(0.05, 0.45);
        for (std::size_t i = 0; i < kJobsPerThreadPhase; ++i) {
          const Time now =
              phase_base + static_cast<Time>(i) * 0.25;
          const JobId job = service.arrive(
              now, RVec({unit(rng), unit(rng)}), now + 40.0);
          mine[t].push_back(job);
          // Retire a random earlier job of our own about half the time.
          if (!mine[t].empty() && (rng() % 2) == 0) {
            const std::size_t pick = rng() % mine[t].size();
            service.depart(now, mine[t][pick]);
            mine[t].erase(mine[t].begin() +
                          static_cast<std::ptrdiff_t>(pick));
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    service.drain();

    phase_base += static_cast<Time>(kJobsPerThreadPhase) * 0.25 + 1.0;
    cloud::ShardRebalanceConfig config;
    config.skew_ratio = 1.05;
    config.min_gap = 0.05;
    config.max_moves = 6;
    const auto report = service.rebalance_shards(phase_base, config);
    EXPECT_LE(report.moves, config.max_moves);
    EXPECT_GE(report.skew_before + 1e-9, report.skew_after)
        << "rebalancing made the skew worse";
    for (std::size_t s = 0; s < options.shards; ++s) {
      const auto err = checkers[s].check(service.shard_dispatcher(s));
      ASSERT_FALSE(err.has_value()) << "phase " << phase << " shard " << s
                                    << ": " << *err;
    }
  }

  // Wind down: every surviving job departs through the global API, which
  // must still route to the post-rebalance owner shard.
  Time now = phase_base + 1.0;
  for (auto& jobs : mine) {
    for (const JobId job : jobs) service.depart(now, job);
  }
  service.drain();
  EXPECT_EQ(service.jobs_active(), 0u);
  for (std::size_t s = 0; s < options.shards; ++s) {
    const auto err = checkers[s].check(service.shard_dispatcher(s));
    ASSERT_FALSE(err.has_value()) << *err;
  }
}

}  // namespace
}  // namespace dvbp
