// End-to-end integration tests across subsystems: CSV trace -> simulate ->
// audit -> bounds; the paper's whole pipeline on the Table 2 workload with
// full validation; and cross-subsystem consistency (cluster vs simulator).
#include <gtest/gtest.h>

#include <sstream>

#include "cloud/cluster.hpp"
#include "core/policies/move_to_front.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

TEST(Integration, CsvTraceThroughFullPipeline) {
  const std::string trace =
      "# arrival,departure,cpu,mem\n"
      "0,4,0.5,0.3\n"
      "0,2,0.5,0.6\n"
      "1,3,0.4,0.5\n"
      "2,6,0.3,0.3\n"
      "3,6,0.6,0.2\n";
  const Instance inst = Instance::from_csv_string(trace);
  ASSERT_EQ(inst.dim(), 2u);
  ASSERT_EQ(inst.size(), 5u);

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);
  const LowerBounds lbs = lower_bounds(inst);
  EXPECT_GE(opt.cost, lbs.best() - 1e-9);

  for (const std::string& name : standard_policy_names()) {
    const auto result = simulate(inst, name, {.audit = true});
    EXPECT_GE(result.cost + 1e-9, opt.cost) << name;
  }
}

TEST(Integration, Table2WorkloadFullAuditAllPolicies) {
  gen::UniformParams params;  // one genuine Table 2 cell, reduced trials
  params.d = 2;
  params.n = 1000;
  params.mu = 10;
  params.span = 1000;
  params.bin_size = 100;
  const Instance inst = gen::uniform_instance(params, 2023);
  const double lb = lb_height(inst);
  ASSERT_GT(lb, 0.0);
  for (const std::string& name : standard_policy_names()) {
    const auto result = simulate(inst, name, {.audit = true});
    const double ratio = result.cost / lb;
    // Sanity envelope for this workload (paper Fig. 4 shows ~1.05..2).
    EXPECT_GE(ratio, 1.0 - 1e-9) << name;
    EXPECT_LE(ratio, 3.0) << name;
  }
}

TEST(Integration, MtfLeadingIntervalsPartitionTheSpan) {
  // Claim 1 of Theorem 2: the leading intervals of Move To Front's bins
  // partition [0, span). Verified on a random workload via the recorded
  // leader history: the leader is defined (not kNoBin) at every active
  // moment and undefined in gaps.
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 10;
  params.span = 120;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 99);

  MoveToFrontPolicy policy(/*record_leader_history=*/true);
  simulate(inst, policy, {.audit = true});
  const auto& history = policy.leader_history();
  ASSERT_FALSE(history.empty());

  // Total measure of "some bin leads" equals span(R).
  double led = 0.0;
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    if (history[i].leader != kNoBin) {
      led += history[i + 1].time - history[i].time;
    }
  }
  EXPECT_EQ(history.back().leader, kNoBin);
  EXPECT_NEAR(led, inst.span(), 1e-6);
}

TEST(Integration, ClusterAgreesWithRawSimulator) {
  // The cluster front-end with capacity C and raw demands must produce the
  // same cost as the raw simulator on pre-normalized sizes.
  cloud::ServerSpec spec;
  spec.name = "std";
  spec.capacity = RVec{10.0, 10.0};

  gen::UniformParams params;
  params.d = 2;
  params.n = 150;
  params.mu = 5;
  params.span = 60;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 55);

  std::vector<cloud::Job> jobs;
  for (const Item& r : inst.items()) {
    jobs.push_back({"job", r.arrival, r.departure, r.size * 10.0});
  }
  PolicyPtr p1 = make_policy("MoveToFront");
  const cloud::ClusterReport report =
      cloud::run_cluster(spec, jobs, *p1, cloud::ContinuousBilling(1.0));

  PolicyPtr p2 = make_policy("MoveToFront");
  const SimResult raw = simulate(inst, *p2);

  EXPECT_NEAR(report.total_usage_time, raw.cost, 1e-9);
  EXPECT_EQ(report.servers_rented, raw.bins_opened);
  EXPECT_DOUBLE_EQ(report.total_bill, report.total_usage_time);
}

TEST(Integration, RerunningPolicyObjectIsClean) {
  // The same policy object must be reusable across simulations (reset()).
  gen::UniformParams params;
  params.d = 1;
  params.n = 200;
  params.mu = 8;
  params.span = 80;
  params.bin_size = 10;
  const Instance a = gen::uniform_instance(params, 1);
  const Instance b = gen::uniform_instance(params, 2);

  for (const std::string& name : standard_policy_names()) {
    PolicyPtr policy = make_policy(name);
    const double cost_a1 = simulate(a, *policy).cost;
    const double cost_b = simulate(b, *policy).cost;
    const double cost_a2 = simulate(a, *policy).cost;
    EXPECT_DOUBLE_EQ(cost_a1, cost_a2) << name;
    (void)cost_b;
  }
}

TEST(Integration, SpanGapsSplitIntoIndependentSubproblems) {
  // Two temporally disjoint copies of a workload: every policy's cost is
  // the sum of its per-copy costs (Sec. 2.1's sub-problem remark).
  gen::UniformParams params;
  params.d = 2;
  params.n = 80;
  params.mu = 5;
  params.span = 40;
  params.bin_size = 10;
  const Instance once = gen::uniform_instance(params, 8);

  Instance twice(2);
  for (const Item& r : once.items()) {
    twice.add(r.arrival, r.departure, r.size);
  }
  const Time offset = once.last_departure() + 50.0;
  for (const Item& r : once.items()) {
    twice.add(r.arrival + offset, r.departure + offset, r.size);
  }

  for (const char* name : {"FirstFit", "MoveToFront", "BestFit"}) {
    const double one = simulate(once, name).cost;
    const double two = simulate(twice, name).cost;
    EXPECT_NEAR(two, 2.0 * one, 1e-6) << name;
  }
}

}  // namespace
}  // namespace dvbp
