// Tests for the instance analytics module: hand-computed profiles,
// agreement with the opt-layer Lemma 1 bounds, and report formatting.
#include "core/instance_stats.hpp"

#include <gtest/gtest.h>

#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"

namespace dvbp {
namespace {

TEST(InstanceStats, EmptyInstance) {
  Instance inst(3);
  const InstanceStats stats = analyze(inst);
  EXPECT_EQ(stats.n, 0u);
  EXPECT_EQ(stats.dim, 3u);
  EXPECT_DOUBLE_EQ(stats.span, 0.0);
}

TEST(InstanceStats, HandComputedProfile) {
  Instance inst(2);
  inst.add(0.0, 2.0, RVec{0.5, 0.25});  // duration 2
  inst.add(1.0, 5.0, RVec{0.25, 0.5});  // duration 4
  const InstanceStats stats = analyze(inst);
  EXPECT_EQ(stats.n, 2u);
  EXPECT_DOUBLE_EQ(stats.span, 5.0);
  EXPECT_DOUBLE_EQ(stats.mu, 2.0);
  EXPECT_DOUBLE_EQ(stats.min_duration, 2.0);
  EXPECT_DOUBLE_EQ(stats.max_duration, 4.0);
  EXPECT_DOUBLE_EQ(stats.mean_duration, 3.0);
  EXPECT_EQ(stats.peak_concurrency, 2u);
  // Concurrency: 1 on [0,1), 2 on [1,2), 1 on [2,5) -> (1+2+3)/5.
  EXPECT_NEAR(stats.mean_concurrency, 6.0 / 5.0, 1e-12);
  // Height: 0.5 on [0,1), 0.75 on [1,2), 0.5 on [2,5).
  EXPECT_NEAR(stats.peak_height, 0.75, 1e-12);
  EXPECT_NEAR(stats.mean_height, (0.5 + 0.75 + 1.5) / 5.0, 1e-12);
  EXPECT_NEAR(stats.mean_size[0], 0.375, 1e-12);
  EXPECT_NEAR(stats.max_size[1], 0.5, 1e-12);
}

TEST(InstanceStats, BoundsAgreeWithOptLayer) {
  gen::UniformParams params;
  params.d = 3;
  params.n = 200;
  params.mu = 10;
  params.span = 80;
  params.bin_size = 10;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = gen::uniform_instance(params, seed);
    const InstanceStats stats = analyze(inst);
    EXPECT_NEAR(stats.height_bound, lb_height(inst), 1e-9);
    EXPECT_NEAR(stats.utilization_bound, lb_utilization(inst), 1e-9);
  }
}

TEST(InstanceStats, ProfileInvariants) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 20;
  params.span = 150;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 9);
  const InstanceStats stats = analyze(inst);
  EXPECT_GE(stats.peak_height, stats.mean_height);
  EXPECT_GE(static_cast<double>(stats.peak_concurrency),
            stats.mean_concurrency);
  EXPECT_GE(stats.height_bound, stats.mean_height * stats.span - 1e-9);
  EXPECT_LE(stats.mu, 20.0 + 1e-12);
  for (std::size_t j = 0; j < stats.mean_size.size(); ++j) {
    EXPECT_LE(stats.mean_size[j], stats.max_size[j]);
  }
}

TEST(InstanceStats, ReportMentionsKeyNumbers) {
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.5});
  const std::string report = analyze(inst).report();
  EXPECT_NE(report.find("items: 1"), std::string::npos);
  EXPECT_NE(report.find("mu = 1"), std::string::npos);
  EXPECT_NE(report.find("peak 1"), std::string::npos);
}

}  // namespace
}  // namespace dvbp
