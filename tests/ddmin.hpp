// ddmin (Zeller/Hildebrandt delta debugging): shrink a failing input
// sequence to a 1-minimal subsequence that still satisfies `fails` --
// dropping any single element makes the failure disappear. Complements of
// ever-finer partitions are tried first, then the granularity doubles.
//
// Shared by the migration fuzzer and the tenancy fuzzer; the element type
// only needs to be copyable. `fails` must be deterministic, and any
// subsequence of a failing sequence must be *executable* (ops whose
// preconditions were dropped get skipped by the replayer, not rejected).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace dvbp::testing {

template <typename T, typename Predicate>
std::vector<T> ddmin(std::vector<T> items, const Predicate& fails) {
  std::size_t granularity = 2;
  while (items.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, items.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < items.size(); start += chunk) {
      std::vector<T> complement;
      complement.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(items[i]);
      }
      if (complement.size() < items.size() && fails(complement)) {
        items = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // 1-minimal
      granularity = std::min(items.size(), granularity * 2);
    }
  }
  return items;
}

}  // namespace dvbp::testing
