// Tests for the Lemma 1 lower bounds: hand-computed values, the ordering
// LB_height >= max(LB_util, LB_span) the paper notes, and consistency with
// every online policy's cost (cost >= each bound, since bounds are on OPT
// and OPT <= any online cost).
#include "opt/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

TEST(LowerBounds, EmptyInstanceIsZero) {
  Instance inst(1);
  const LowerBounds lbs = lower_bounds(inst);
  EXPECT_DOUBLE_EQ(lbs.height, 0.0);
  EXPECT_DOUBLE_EQ(lbs.utilization, 0.0);
  EXPECT_DOUBLE_EQ(lbs.span, 0.0);
  EXPECT_DOUBLE_EQ(lbs.best(), 0.0);
}

TEST(LowerBounds, SingleItem) {
  Instance inst(1);
  inst.add(0.0, 3.0, RVec{0.4});
  const LowerBounds lbs = lower_bounds(inst);
  // One active item of size 0.4 -> ceil = 1 bin over [0,3).
  EXPECT_DOUBLE_EQ(lbs.height, 3.0);
  EXPECT_DOUBLE_EQ(lbs.utilization, 0.4 * 3.0);
  EXPECT_DOUBLE_EQ(lbs.span, 3.0);
}

TEST(LowerBounds, HeightCountsParallelLoad) {
  Instance inst(1);
  // Three 0.7-items overlapping on [1,2): ceil(2.1) = 3 bins there.
  inst.add(0.0, 2.0, RVec{0.7});
  inst.add(1.0, 3.0, RVec{0.7});
  inst.add(1.0, 2.0, RVec{0.7});
  // Load: [0,1): 0.7 -> 1; [1,2): 2.1 -> 3; [2,3): 0.7 -> 1.
  EXPECT_DOUBLE_EQ(lb_height(inst), 1.0 + 3.0 + 1.0);
}

TEST(LowerBounds, HeightUsesMaxDimension) {
  Instance inst(2);
  inst.add(0.0, 1.0, RVec{0.9, 0.1});
  inst.add(0.0, 1.0, RVec{0.9, 0.1});
  inst.add(0.0, 1.0, RVec{0.1, 0.9});
  // dim0 load = 1.9 -> ceil 2; dim1 load = 1.1 -> ceil 2; max 2.
  EXPECT_DOUBLE_EQ(lb_height(inst), 2.0);
}

TEST(LowerBounds, HeightHandlesGaps) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  inst.add(3.0, 5.0, RVec{0.5});
  EXPECT_DOUBLE_EQ(lb_height(inst), 3.0);  // zero load on [1,3)
  EXPECT_DOUBLE_EQ(lb_span(inst), 3.0);
}

TEST(LowerBounds, HeightRobustToFloatingNoise) {
  // 10 x 0.1 sums to 0.9999999999999999; ceil must still be 1, not 2.
  Instance inst(1);
  for (int i = 0; i < 10; ++i) inst.add(0.0, 1.0, RVec{0.1});
  EXPECT_DOUBLE_EQ(lb_height(inst), 1.0);
}

TEST(LowerBounds, UtilizationDividesByDimension) {
  Instance inst(4);
  inst.add(0.0, 2.0, RVec{0.8, 0.1, 0.1, 0.1});
  EXPECT_DOUBLE_EQ(lb_utilization(inst), 0.8 * 2.0 / 4.0);
}

TEST(LowerBounds, BestPicksLargest) {
  Instance inst(2);
  inst.add(0.0, 10.0, RVec{0.05, 0.05});
  const LowerBounds lbs = lower_bounds(inst);
  EXPECT_DOUBLE_EQ(lbs.best(), lbs.span);  // span 10 dominates tiny loads
}

// Property: on random instances, height >= utilization, height >= span,
// and every policy's cost >= every bound.
class LowerBoundOrderTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(LowerBoundOrderTest, HeightDominatesAndCostsRespectBounds) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 150;
  params.mu = 10;
  params.span = 80;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, seed);

  const LowerBounds lbs = lower_bounds(inst);
  EXPECT_GE(lbs.height + 1e-9, lbs.utilization);
  EXPECT_GE(lbs.height + 1e-9, lbs.span);

  for (const char* policy : {"MoveToFront", "FirstFit", "NextFit"}) {
    const double cost = simulate(inst, policy).cost;
    EXPECT_GE(cost + 1e-9, lbs.best()) << policy;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, LowerBoundOrderTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace dvbp
