// Tests for the observability subsystem: metric instruments and registry,
// JSONL tracer + sinks, engine instrumentation consistency, and the
// trace -> Packing round-trip guarantee (a trace is a complete, replayable
// account of a run).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/replay.hpp"
#include "obs/trace.hpp"

namespace dvbp::obs {
namespace {

Instance small_instance(std::uint64_t seed, std::size_t n = 400,
                        std::size_t d = 2) {
  gen::UniformParams params;
  params.d = d;
  params.n = n;
  params.mu = 10;
  params.span = 120;
  params.bin_size = 7;
  return gen::uniform_instance(params, seed);
}

void expect_same_packing(const Packing& a, const Packing& b) {
  EXPECT_EQ(a.assignment(), b.assignment());
  ASSERT_EQ(a.num_bins(), b.num_bins());
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    const BinRecord& x = a.bins()[i];
    const BinRecord& y = b.bins()[i];
    EXPECT_EQ(x.id, y.id) << "bin " << i;
    EXPECT_DOUBLE_EQ(x.opened, y.opened) << "bin " << i;
    EXPECT_DOUBLE_EQ(x.closed, y.closed) << "bin " << i;
    EXPECT_EQ(x.items, y.items) << "bin " << i;
  }
}

// ---- Instruments -----------------------------------------------------------

TEST(Counter, CountsAndStartsAtZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(5.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(HistogramTest, BucketsCountSumQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
  // Overflow bucket clamps to the last bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, HandsOutStableInstruments) {
  MetricRegistry reg;
  Counter& a = reg.counter("dvbp.test.a_total");
  Counter& b = reg.counter("dvbp.test.a_total");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  reg.gauge("dvbp.test.level");
  reg.histogram("dvbp.test.latency_ns");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, RejectsKindClashes) {
  MetricRegistry reg;
  reg.counter("dvbp.test.x");
  EXPECT_THROW(reg.gauge("dvbp.test.x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dvbp.test.x"), std::invalid_argument);
  reg.histogram("dvbp.test.h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("dvbp.test.h", {1.0, 3.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("dvbp.test.h", {1.0, 2.0}));
}

TEST(Registry, SnapshotIsValidishJson) {
  MetricRegistry reg;
  reg.counter("dvbp.test.events_total").inc(7);
  reg.gauge("dvbp.test.level").set(1.5);
  reg.histogram("dvbp.test.latency_ns", {10.0, 20.0}).observe(12.0);
  const std::string json = reg.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  std::ptrdiff_t depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(scan_json_number(json, "dvbp.test.events_total"), 7.0);
  EXPECT_EQ(scan_json_number(json, "dvbp.test.level"), 1.5);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(ScopedTimerTest, RecordsIntoSinkAndSkipsNull) {
  Histogram h({1e12});
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedTimer t(nullptr);  // must be a no-op
  }
  EXPECT_EQ(h.count(), 1u);
}

// ---- JSON helpers ----------------------------------------------------------

TEST(Json, NumberRoundTripsThroughScan) {
  for (const double v : {0.0, 1.0, -3.25, 1e-9, 12345.6789, 1e99}) {
    const std::string line = "{\"x\":" + json_number(v) + "}";
    const auto back = scan_json_number(line, "x");
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_DOUBLE_EQ(*back, v);
  }
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, EscapesControlCharacters) {
  std::string out;
  append_json_escaped(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\u0001");
}

TEST(Json, ScansStringsBoolsArrays) {
  const std::string line =
      "{\"ev\":\"place\",\"new_bin\":true,\"size\":[0.5,0.25],\"e\":false}";
  EXPECT_EQ(scan_json_string(line, "ev"), "place");
  EXPECT_EQ(scan_json_bool(line, "new_bin"), true);
  EXPECT_EQ(scan_json_bool(line, "e"), false);
  const auto arr = scan_json_number_array(line, "size");
  ASSERT_TRUE(arr.has_value());
  EXPECT_EQ(*arr, (std::vector<double>{0.5, 0.25}));
  EXPECT_FALSE(scan_json_number(line, "missing").has_value());
}

// ---- Sinks & tracer --------------------------------------------------------

TEST(TracerTest, NullSinkIsInactive) {
  Tracer none(nullptr);
  EXPECT_FALSE(none.active());
  Tracer null_sink(std::make_shared<NullSink>());
  EXPECT_FALSE(null_sink.active());
  null_sink.emit(TraceEvent{});
  EXPECT_EQ(null_sink.records_emitted(), 0u);
}

TEST(TracerTest, RingBufferKeepsMostRecent) {
  auto ring = std::make_shared<RingBufferSink>(3);
  Tracer tracer(ring);
  ASSERT_TRUE(tracer.active());
  for (int i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kOpen;
    ev.time = i;
    ev.bin = static_cast<BinId>(i);
    tracer.emit(ev);
  }
  EXPECT_EQ(tracer.records_emitted(), 5u);
  EXPECT_EQ(ring->dropped(), 2u);
  const auto lines = ring->lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(scan_json_number(lines.front(), "bin"), 2.0);
  EXPECT_EQ(scan_json_number(lines.back(), "bin"), 4.0);
}

TEST(TracerTest, FileSinkWritesJsonlLines) {
  const std::string path = ::testing::TempDir() + "obs_file_sink.jsonl";
  {
    Tracer tracer(std::make_shared<FileSink>(path));
    TraceEvent ev;
    ev.kind = TraceEventKind::kArrival;
    ev.time = 1.5;
    ev.item = 3;
    const double size[2] = {0.5, 0.25};
    ev.size = std::span<const double>(size, 2);
    ev.open_bins = 2;
    tracer.emit(ev);
    tracer.flush();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"ev\":\"arrival\",\"t\":1.5,\"item\":3,"
            "\"size\":[0.5,0.25],\"open_bins\":2}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(TracerTest, FileSinkThrowsOnUnopenablePath) {
  EXPECT_THROW(FileSink("/nonexistent-dir/trace.jsonl"), std::runtime_error);
}

// ---- Engine instrumentation ------------------------------------------------

TEST(SimulateObserved, MetricsAreConsistentWithResult) {
  const Instance inst = small_instance(11);
  MetricRegistry reg;
  Observer observer(&reg);
  SimOptions opts;
  opts.observer = &observer;
  const SimResult result = simulate(inst, "FirstFit", opts);

  EXPECT_EQ(reg.counter("dvbp.alloc.arrivals_total").value(), inst.size());
  EXPECT_EQ(reg.counter("dvbp.alloc.departures_total").value(), inst.size());
  EXPECT_EQ(reg.counter("dvbp.alloc.placements_total").value(), inst.size());
  EXPECT_EQ(reg.counter("dvbp.alloc.bins_opened_total").value(),
            result.bins_opened);
  EXPECT_EQ(reg.counter("dvbp.alloc.bins_closed_total").value(),
            result.bins_opened);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.open_bins").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.active_items").value(), 0.0);
  EXPECT_EQ(reg.histogram("dvbp.alloc.decision_latency_ns").count(),
            inst.size());
  // First Fit on this workload has contention, so some bins must reject.
  EXPECT_GT(reg.counter("dvbp.alloc.fit_failures_total").value(), 0u);
}

TEST(SimulateObserved, ObserverDoesNotChangeTheDecisions) {
  const Instance inst = small_instance(13);
  MetricRegistry reg;
  Tracer tracer(std::make_shared<RingBufferSink>());
  Observer observer(&reg, &tracer);
  SimOptions opts;
  opts.observer = &observer;
  const SimResult observed = simulate(inst, "BestFit", opts);
  const SimResult plain = simulate(inst, "BestFit");
  expect_same_packing(observed.packing, plain.packing);
  EXPECT_DOUBLE_EQ(observed.cost, plain.cost);
}

TEST(SimulateObserved, TraceRoundTripReconstructsThePacking) {
  for (const char* policy : {"MoveToFront", "FirstFit", "BestFit"}) {
    const Instance inst = small_instance(17);
    auto ring = std::make_shared<RingBufferSink>();
    Tracer tracer(ring);
    Observer observer(nullptr, &tracer);
    SimOptions opts;
    opts.audit = true;
    opts.observer = &observer;
    const SimResult result = simulate(inst, policy, opts);
    const Packing replayed = replay_packing(ring->lines());
    expect_same_packing(result.packing, replayed);
  }
}

TEST(SimulateObserved, TraceRoundTripUnderAugmentation) {
  const Instance inst = small_instance(19);
  auto ring = std::make_shared<RingBufferSink>();
  Tracer tracer(ring);
  Observer observer(nullptr, &tracer);
  SimOptions opts;
  opts.bin_capacity = 1.4;
  opts.observer = &observer;
  const SimResult result = simulate(inst, "FirstFit", opts);
  expect_same_packing(result.packing, replay_packing(ring->lines()));
}

TEST(SimulateObserved, TraceRoundTripThroughAFile) {
  const std::string path = ::testing::TempDir() + "obs_roundtrip.jsonl";
  const Instance inst = small_instance(23);
  SimResult result;
  {
    Tracer tracer(std::make_shared<FileSink>(path));
    Observer observer(nullptr, &tracer);
    SimOptions opts;
    opts.observer = &observer;
    result = simulate(inst, "MoveToFront", opts);
  }
  expect_same_packing(result.packing, replay_packing_file(path));
  std::remove(path.c_str());
}

TEST(SimulateObserved, RejectRecordsMatchFitFailureCounter) {
  const Instance inst = small_instance(29, 200);
  MetricRegistry reg;
  auto ring = std::make_shared<RingBufferSink>();
  Tracer tracer(ring);
  Observer observer(&reg, &tracer);
  SimOptions opts;
  opts.observer = &observer;
  simulate(inst, "FirstFit", opts);

  std::uint64_t rejects = 0;
  std::uint64_t rejections_in_places = 0;
  for (const std::string& line : ring->lines()) {
    const auto kind = scan_json_string(line, "ev");
    ASSERT_TRUE(kind.has_value());
    if (*kind == "reject") ++rejects;
    if (*kind == "place") {
      rejections_in_places += static_cast<std::uint64_t>(
          scan_json_number(line, "rejections").value());
    }
  }
  EXPECT_EQ(rejects, reg.counter("dvbp.alloc.fit_failures_total").value());
  EXPECT_EQ(rejects, rejections_in_places);
}

TEST(DispatcherObserved, EmitsTheSameTraceAsTheSimulator) {
  const Instance inst = small_instance(31, 300);
  const auto events = build_event_stream(inst);

  auto sim_ring = std::make_shared<RingBufferSink>();
  Tracer sim_tracer(sim_ring);
  Observer sim_observer(nullptr, &sim_tracer);
  SimOptions opts;
  opts.observer = &sim_observer;
  simulate(inst, "MoveToFront", opts);

  auto live_ring = std::make_shared<RingBufferSink>();
  Tracer live_tracer(live_ring);
  Observer live_observer(nullptr, &live_tracer);
  PolicyPtr policy = make_policy("MoveToFront");
  Dispatcher dispatcher(inst.dim(), *policy, 1.0, &live_observer);
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      dispatcher.arrive(item.arrival, item.size, item.departure);
    } else {
      dispatcher.depart(ev.time, item.id);
    }
  }
  EXPECT_EQ(sim_ring->lines(), live_ring->lines());
}

TEST(DispatcherObserved, MetricsTrackLiveState) {
  MetricRegistry reg;
  Observer observer(&reg);
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy, 1.0, &observer);
  const auto a = dispatcher.arrive(0.0, RVec{0.6});
  const auto b = dispatcher.arrive(0.0, RVec{0.6});  // must open a 2nd bin
  EXPECT_NE(a.bin, b.bin);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.open_bins").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.active_items").value(), 2.0);
  EXPECT_EQ(reg.counter("dvbp.alloc.fit_failures_total").value(), 1u);
  dispatcher.depart(5.0, a.job);
  dispatcher.depart(6.0, b.job);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.open_bins").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("dvbp.alloc.active_items").value(), 0.0);
  EXPECT_EQ(reg.counter("dvbp.alloc.bins_closed_total").value(), 2u);
}

// ---- Replay edge cases -----------------------------------------------------

// Tail-quantile regression (docs/OBSERVABILITY.md): the default latency
// ladder must resolve a p999 that sits decades above the median instead of
// collapsing it into the overflow bucket, and snapshots must report it.
TEST(HistogramTest, TailQuantileStaysResolvable) {
  Histogram h(default_latency_bounds_ns());
  // 10k fast observations around 5us, 50 stragglers near 400ms (0.5% of
  // traffic, so the 0.999 rank lands among them) -- the shape of a
  // request-latency histogram under transient backpressure.
  for (int i = 0; i < 10000; ++i) h.observe(5.0e3);
  for (int i = 0; i < 50; ++i) h.observe(4.0e8);

  const double p50 = h.quantile(0.5);
  const double p999 = h.quantile(0.999);
  EXPECT_LE(p50, 1.0e4);
  // The stragglers land in the (2.5e8, 5e8] bucket: p999 must surface
  // them as a sub-second, supra-1e8 figure, not the overflow sentinel.
  EXPECT_GT(p999, 1.0e8);
  EXPECT_LE(p999, 5.0e8);
  EXPECT_LE(p999, h.quantile(1.0));

  // And the ladder itself keeps a finite 1s ceiling.
  const std::vector<double> bounds = default_latency_bounds_ns();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.back(), 1.0e9);

  MetricRegistry reg;
  Histogram& lat = reg.histogram("dvbp.test.latency_ns");
  lat.observe(1.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

TEST(Replay, EmptyTraceYieldsEmptyPacking) {
  const Packing p = replay_packing(std::vector<std::string>{});
  EXPECT_EQ(p.num_bins(), 0u);
  EXPECT_TRUE(p.assignment().empty());
}

TEST(Replay, MalformedLinesAreRejected) {
  EXPECT_THROW(replay_packing({"{\"t\":0}"}), std::invalid_argument);
  EXPECT_THROW(replay_packing({"{\"ev\":\"open\",\"t\":0,\"bin\":5}"}),
               std::invalid_argument);  // ids must appear in order
  EXPECT_THROW(
      replay_packing({"{\"ev\":\"place\",\"t\":0,\"item\":0,\"bin\":0}"}),
      std::invalid_argument);  // placement into unopened bin
  EXPECT_THROW(replay_packing({"{\"ev\":\"warp\",\"t\":0}"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dvbp::obs
