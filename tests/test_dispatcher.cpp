// Tests for the streaming Dispatcher: API semantics, misuse rejection,
// live cost metering, and the differential guarantee that replaying an
// Instance's event stream reproduces simulate() exactly for every policy.
#include "core/dispatcher.hpp"

#include <gtest/gtest.h>

#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

TEST(Dispatcher, BasicLifecycle) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(2, *policy);
  const auto a = dispatcher.arrive(0.0, RVec{0.5, 0.5});
  EXPECT_EQ(a.bin, 0u);
  EXPECT_TRUE(a.opened_new_bin);
  const auto b = dispatcher.arrive(1.0, RVec{0.5, 0.4});
  EXPECT_EQ(b.bin, 0u);  // fits alongside
  EXPECT_FALSE(b.opened_new_bin);
  EXPECT_EQ(dispatcher.open_bins(), 1u);
  EXPECT_EQ(dispatcher.jobs_active(), 2u);

  dispatcher.depart(3.0, a.job);
  EXPECT_EQ(dispatcher.open_bins(), 1u);  // b still there
  dispatcher.depart(5.0, b.job);
  EXPECT_EQ(dispatcher.open_bins(), 0u);
  EXPECT_EQ(dispatcher.bins_opened(), 1u);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(10.0), 5.0);
}

TEST(Dispatcher, LiveCostMetersOpenBins) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy);
  dispatcher.arrive(0.0, RVec{0.9});
  dispatcher.arrive(1.0, RVec{0.9});  // second bin
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(2.0), 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(4.0), 4.0 + 3.0);
}

TEST(Dispatcher, CostSoFarClampsClosedBinsAtHistoricalTimestamps) {
  // Regression: a closed bin used to contribute its full usage time even
  // when `at` predated its close, overstating historical costs.
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy);
  const auto a = dispatcher.arrive(0.0, RVec{0.9});   // bin 0: [0, 10)
  const auto b = dispatcher.arrive(2.0, RVec{0.9});   // bin 1: [2, ...)
  dispatcher.depart(10.0, a.job);                     // bin 0 closes at 10
  // at=5: bin 0 contributes min(5,10)-0 = 5 (not 10), bin 1 contributes 3.
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(5.0), 5.0 + 3.0);
  // at=1 predates bin 1 entirely: only bin 0's first unit counts.
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(1.0), 1.0);
  // at past every event: closed bin in full, open bin metered to `at`.
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(12.0), 10.0 + 10.0);
  dispatcher.depart(14.0, b.job);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(14.0), 10.0 + 12.0);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(12.0), 10.0 + 10.0);
}

TEST(Dispatcher, UnknownDeparturesUseInfinity) {
  // Non-clairvoyant policies never read the expected departure; the
  // default (infinity) must flow through without breaking bookkeeping.
  PolicyPtr policy = make_policy("MoveToFront");
  Dispatcher dispatcher(1, *policy);
  const auto a = dispatcher.arrive(0.0, RVec{0.6});
  const auto b = dispatcher.arrive(0.5, RVec{0.6});
  dispatcher.depart(2.0, a.job);
  dispatcher.depart(3.0, b.job);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(3.0), 2.0 + 2.5);
}

TEST(Dispatcher, RejectsMisuse) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(2, *policy);
  EXPECT_THROW(Dispatcher(0, *policy), std::invalid_argument);
  EXPECT_THROW(Dispatcher(1, *policy, 0.5), std::invalid_argument);

  const auto a = dispatcher.arrive(1.0, RVec{0.5, 0.5});
  EXPECT_THROW(dispatcher.arrive(0.5, RVec{0.1, 0.1}),
               std::invalid_argument);  // time regression
  EXPECT_THROW(dispatcher.arrive(2.0, RVec{0.5}),
               std::invalid_argument);  // dimension mismatch
  EXPECT_THROW(dispatcher.arrive(2.0, RVec{1.5, 0.1}),
               std::invalid_argument);  // oversize
  EXPECT_THROW(dispatcher.arrive(2.0, RVec{0.1, 0.1}, 1.0),
               std::invalid_argument);  // departure before arrival
  EXPECT_THROW(dispatcher.depart(2.0, 999), std::invalid_argument);
  dispatcher.depart(3.0, a.job);
  EXPECT_THROW(dispatcher.depart(4.0, a.job),
               std::invalid_argument);  // double departure
}

TEST(Dispatcher, BinOfTracksPlacementUntilDeparture) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy);
  const auto a = dispatcher.arrive(0.0, RVec{0.5});
  EXPECT_EQ(dispatcher.bin_of(a.job), a.bin);
  dispatcher.depart(1.0, a.job);
  EXPECT_EQ(dispatcher.bin_of(a.job), kNoBin);
  EXPECT_THROW(dispatcher.bin_of(42), std::invalid_argument);
}

TEST(Dispatcher, ClairvoyantPolicySeesExpectedDepartures) {
  PolicyPtr policy = make_policy("MinExtensionFit");
  Dispatcher dispatcher(1, *policy);
  const auto long_bin = dispatcher.arrive(0.0, RVec{0.6}, 100.0);
  const auto short_bin = dispatcher.arrive(0.0, RVec{0.6}, 2.0);
  ASSERT_NE(long_bin.bin, short_bin.bin);
  // A long probe should co-locate with the long-lived bin.
  const auto probe = dispatcher.arrive(1.0, RVec{0.3}, 50.0);
  EXPECT_EQ(probe.bin, long_bin.bin);
}

TEST(Dispatcher, AugmentedCapacityApplies) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy, 1.5);
  dispatcher.arrive(0.0, RVec{0.8});
  const auto b = dispatcher.arrive(0.0, RVec{0.7});  // 1.5 total: fits
  EXPECT_EQ(b.bin, 0u);
  EXPECT_FALSE(b.opened_new_bin);
}

// ---- Differential: streaming replay == batch simulation -------------------

class DispatcherDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DispatcherDifferentialTest, ReplayMatchesSimulate) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 10;
  params.span = 120;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 77);

  PolicyPtr batch_policy = make_policy(GetParam(), 5);
  const SimResult batch = simulate(inst, *batch_policy);

  PolicyPtr live_policy = make_policy(GetParam(), 5);
  Dispatcher dispatcher(inst.dim(), *live_policy);
  // JobIds are assigned in arrival order == instance order, so they
  // coincide with ItemIds.
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      const auto admission =
          dispatcher.arrive(item.arrival, item.size, item.departure);
      ASSERT_EQ(admission.job, item.id);
    } else {
      dispatcher.depart(ev.time, item.id);
    }
  }

  EXPECT_EQ(dispatcher.bins_opened(), batch.bins_opened);
  EXPECT_DOUBLE_EQ(dispatcher.cost_so_far(inst.last_departure()),
                   batch.cost);
  // Bin-by-bin identical placement.
  ASSERT_EQ(dispatcher.records().size(), batch.packing.num_bins());
  for (std::size_t b = 0; b < dispatcher.records().size(); ++b) {
    EXPECT_EQ(dispatcher.records()[b].items,
              batch.packing.bins()[b].items);
    EXPECT_DOUBLE_EQ(dispatcher.records()[b].opened,
                     batch.packing.bins()[b].opened);
    EXPECT_DOUBLE_EQ(dispatcher.records()[b].closed,
                     batch.packing.bins()[b].closed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DispatcherDifferentialTest,
                         ::testing::Values("MoveToFront", "FirstFit",
                                           "BestFit", "NextFit", "LastFit",
                                           "RandomFit", "WorstFit",
                                           "HarmonicFit",
                                           "MinExtensionFit",
                                           "DurationClassFit"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace dvbp
