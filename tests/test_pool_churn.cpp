// Allocator-churn soup for the slab/pool memory layout (ISSUE 8): the
// UsagePool free-list, the StableVector bin/item slabs, and the SoA
// OpenBinTable all recycle storage aggressively, so this suite hammers
// arrive/depart/evict/replace interleavings and audits the dispatcher
// with PackingInvariantChecker throughout. It is part of the default
// test set and therefore runs under the ASan/UBSan `sanitizers` CI job,
// where a stale node index, a use-after-release, or an out-of-bounds
// lane write dies loudly instead of corrupting a later placement.
#include <gtest/gtest.h>

#include <vector>

#include "core/bin_state.hpp"
#include "core/dispatcher.hpp"
#include "core/invariants.hpp"
#include "core/open_bin_table.hpp"
#include "core/policies/registry.hpp"
#include "core/pool.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

RVec random_size(Xoshiro256pp& rng, std::size_t d) {
  RVec s(d);
  for (std::size_t j = 0; j < d; ++j) s[j] = rng.uniform(0.05, 0.6);
  return s;
}

// Long arrive/depart soup: jobs churn through bins far more times than
// the pool's initial slab holds, so the free-list recycles nodes across
// many generations of bins.
TEST(PoolChurn, ArriveDepartSoupKeepsInvariants) {
  for (std::size_t d : {2u, 9u}) {  // straddles RVec::kInlineDim = 8
    PolicyPtr policy = make_policy("BestFit", 99);
    Dispatcher dispatcher(d, *policy);
    PackingInvariantChecker checker;
    Xoshiro256pp rng(0xC0FFEE + d);

    std::vector<JobId> live;
    Time now = 0.0;
    for (int step = 0; step < 4000; ++step) {
      now += rng.uniform(0.0, 0.1);
      const bool do_depart =
          !live.empty() && (live.size() > 64 || rng.uniform() < 0.45);
      if (do_depart) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(0, live.size() - 1));
        dispatcher.depart(now, live[pick]);
        live[pick] = live.back();
        live.pop_back();
      } else {
        live.push_back(dispatcher.arrive(now, random_size(rng, d)).job);
      }
      if (step % 250 == 0) {
        const auto violation = checker.check(dispatcher);
        ASSERT_FALSE(violation.has_value()) << *violation << " at step "
                                            << step << " d=" << d;
      }
    }
    while (!live.empty()) {
      now += 0.01;
      dispatcher.depart(now, live.back());
      live.pop_back();
    }
    EXPECT_EQ(dispatcher.open_bins(), 0u);
    const auto violation = checker.check(dispatcher);
    EXPECT_FALSE(violation.has_value()) << *violation;
  }
}

// Evict/replace mixed in: eviction releases a pool node without ending
// the job; replace() re-allocates one (possibly the same recycled slot)
// in a different bin. Interleaved with departures this is the worst-case
// free-list churn pattern.
TEST(PoolChurn, EvictReplaceRecyclesNodesSafely) {
  const std::size_t d = 5;
  PolicyPtr policy = make_policy("FirstFit", 7);
  Dispatcher dispatcher(d, *policy);
  PackingInvariantChecker checker;
  Xoshiro256pp rng(0xBADF00D);

  std::vector<JobId> placed;   // live, not in limbo
  std::vector<JobId> limbo;    // evicted, awaiting replace
  Time now = 0.0;
  for (int step = 0; step < 3000; ++step) {
    now += rng.uniform(0.0, 0.05);
    const double roll = rng.uniform();
    if (!limbo.empty() && (limbo.size() > 16 || roll < 0.3)) {
      dispatcher.replace(now, limbo.back());
      placed.push_back(limbo.back());
      limbo.pop_back();
    } else if (!placed.empty() && roll < 0.5) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, placed.size() - 1));
      dispatcher.evict(now, placed[pick]);
      limbo.push_back(placed[pick]);
      placed[pick] = placed.back();
      placed.pop_back();
    } else if (!placed.empty() && (placed.size() > 48 || roll < 0.75)) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, placed.size() - 1));
      dispatcher.depart(now, placed[pick]);
      placed[pick] = placed.back();
      placed.pop_back();
    } else {
      placed.push_back(dispatcher.arrive(now, random_size(rng, d)).job);
    }
    if (step % 200 == 0) {
      const auto violation = checker.check(dispatcher);
      ASSERT_FALSE(violation.has_value()) << *violation << " at step "
                                          << step;
    }
  }
  // Drain limbo first (jobs must be placed to depart), then everything.
  for (JobId job : limbo) {
    now += 0.01;
    dispatcher.replace(now, job);
    placed.push_back(job);
  }
  for (JobId job : placed) {
    now += 0.01;
    dispatcher.depart(now, job);
  }
  EXPECT_EQ(dispatcher.open_bins(), 0u);
  EXPECT_EQ(dispatcher.jobs_active(), 0u);
  const auto violation = checker.check(dispatcher);
  EXPECT_FALSE(violation.has_value()) << *violation;
}

// StableVector's contract: references handed out survive arbitrarily many
// later emplace_backs (no reallocation-and-copy, unlike std::vector).
TEST(PoolChurn, StableVectorReferencesSurviveGrowth) {
  StableVector<Item> items;
  const Item& first = items.emplace_back(0, 0.0, 1.0, RVec{0.5});
  const Item* first_addr = &first;
  // Grow well past several chunk boundaries.
  for (ItemId id = 1; id < 1000; ++id) {
    items.emplace_back(id, 0.0, 1.0, RVec{0.25});
  }
  EXPECT_EQ(&items[0], first_addr);
  EXPECT_EQ(first.id, 0u);
  EXPECT_EQ(items.size(), 1000u);
  // Iteration visits every element in insertion order.
  ItemId expect = 0;
  for (const Item& item : items) EXPECT_EQ(item.id, expect++);
}

// The dispatcher's items() slab specifically: an Item reference taken at
// admission must stay valid (same address, same bits) after thousands of
// further arrivals force many new chunks.
TEST(PoolChurn, DispatcherItemReferencesAreStable) {
  PolicyPtr policy = make_policy("NextFit", 1);
  Dispatcher dispatcher(2, *policy);
  const auto first = dispatcher.arrive(0.0, RVec{0.3, 0.2});
  const Item* addr = &dispatcher.items()[first.job];
  for (int i = 1; i < 2000; ++i) {
    dispatcher.arrive(0.001 * i, RVec{0.01, 0.01});
  }
  EXPECT_EQ(&dispatcher.items()[first.job], addr);
  EXPECT_DOUBLE_EQ(addr->size[0], 0.3);
}

// UsagePool free-list unit semantics: release makes the slot available
// for the next alloc (LIFO), and the slab only grows when the free list
// is empty.
TEST(PoolChurn, UsagePoolRecyclesReleasedNodes) {
  UsagePool pool;
  const std::uint32_t a = pool.alloc(1, 10.0);
  const std::uint32_t b = pool.alloc(2, 20.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool[a].item, 1u);
  EXPECT_DOUBLE_EQ(pool[b].departure, 20.0);
  const std::size_t slab = pool.slab_size();
  pool.release(a);
  const std::uint32_t c = pool.alloc(3, 30.0);
  EXPECT_EQ(c, a);  // LIFO reuse of the freed slot
  EXPECT_EQ(pool.slab_size(), slab);
  EXPECT_EQ(pool[c].item, 3u);
}

}  // namespace
}  // namespace dvbp
