// End-to-end test of the `harness trace` subcommands: runs the real
// binary (path passed as argv[1] by CTest) through the whole data-plane
// pipeline -- CSV convert, info/bounds, reduce, streaming run -- and
// consumes every artifact it writes: the binary traces must open in a
// TraceReader, and the metrics snapshot must carry the dvbp.trace.*
// series. Usage errors (unknown subcommand/flag, missing required flag)
// must exit with the dedicated code 2; corrupt inputs must fail nonzero
// without crashing.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "trace/reader.hpp"

namespace dvbp::trace {
namespace {

std::string g_harness_bin;  // set from argv[1] in main() below

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TraceCli : public ::testing::Test {
 protected:
  void SetUp() override {
    if (g_harness_bin.empty()) {
      GTEST_SKIP() << "harness binary path not provided";
    }
    const std::string dir = ::testing::TempDir();
    csv_path_ = dir + "trace_cli.csv";
    trc_path_ = dir + "trace_cli.trc";
    reduced_path_ = dir + "trace_cli_reduced.trc";
    stdout_path_ = dir + "trace_cli.out";
    metrics_path_ = dir + "trace_cli_metrics.json";
    // A small sample: 12 quarter/half-bin VMs from 3 tenants.
    std::ofstream csv(csv_path_);
    csv << "vmid,start,end,core,mem\n";
    for (int i = 0; i < 12; ++i) {
      csv << "vm-" << (i % 3) << "," << i << "," << (i + 10) << ","
          << (i % 2 ? 0.5 : 0.25) << "," << 0.125 << "\n";
    }
  }
  void TearDown() override {
    for (const std::string& p : {csv_path_, trc_path_, reduced_path_,
                                 stdout_path_, metrics_path_}) {
      std::remove(p.c_str());
    }
  }

  /// Runs the harness, capturing stdout; returns the raw system() status.
  int run(const std::string& args) {
    const std::string cmd = "\"" + g_harness_bin + "\" " + args + " > " +
                            stdout_path_ + " 2>/dev/null";
    return std::system(cmd.c_str());
  }
  static int exit_code(int status) {
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string csv_path_, trc_path_, reduced_path_, stdout_path_,
      metrics_path_;
};

TEST_F(TraceCli, ConvertInfoReduceRunPipeline) {
  // convert: CSV -> binary, tenant column on.
  ASSERT_EQ(exit_code(run("trace convert --csv=" + csv_path_ +
                          " --out=" + trc_path_ + " --tenants")),
            0);
  {
    TraceReader reader(trc_path_);
    EXPECT_EQ(reader.size(), 12u);
    EXPECT_EQ(reader.dim(), 2u);
    EXPECT_TRUE(reader.has_tenants());
  }
  EXPECT_NE(slurp(stdout_path_).find("items_written"), std::string::npos);

  // info --bounds: header summary plus the streaming Lemma-1 bounds.
  ASSERT_EQ(exit_code(run("trace info --in=" + trc_path_ + " --bounds")), 0);
  const std::string info = slurp(stdout_path_);
  EXPECT_NE(info.find("12"), std::string::npos);
  EXPECT_NE(info.find("lb_best"), std::string::npos);

  // reduce: emits a smaller trace plus a sound OPT interval.
  ASSERT_EQ(exit_code(run("trace reduce --in=" + trc_path_ +
                          " --out=" + reduced_path_ +
                          " --size-grid=4 --time-cells=8")),
            0);
  {
    TraceReader reduced(reduced_path_);
    EXPECT_LE(reduced.size(), 12u);
    EXPECT_EQ(reduced.dim(), 2u);
    EXPECT_FALSE(reduced.has_tenants());  // dropped by design
  }
  const std::string reduce_out = slurp(stdout_path_);
  EXPECT_NE(reduce_out.find("opt_lower"), std::string::npos);
  EXPECT_NE(reduce_out.find("opt_upper"), std::string::npos);

  // run: streaming replay with metrics.
  ASSERT_EQ(exit_code(run("trace run --in=" + trc_path_ +
                          " --policy=FirstFit --bounds --metrics-out=" +
                          metrics_path_)),
            0);
  EXPECT_NE(slurp(stdout_path_).find("events_per_s"), std::string::npos);
  const std::string metrics = slurp(metrics_path_);
  EXPECT_EQ(obs::scan_json_number(metrics, "dvbp.trace.events_total"), 24.0);
  EXPECT_EQ(obs::scan_json_number(metrics, "dvbp.trace.arrivals_total"),
            12.0);
  EXPECT_EQ(obs::scan_json_number(metrics, "dvbp.trace.departures_total"),
            12.0);
  EXPECT_EQ(obs::scan_json_number(metrics, "dvbp.trace.open_bins"), 0.0);
  const auto opened =
      obs::scan_json_number(metrics, "dvbp.trace.bins_opened_total");
  ASSERT_TRUE(opened.has_value());
  EXPECT_GT(*opened, 0.0);
}

TEST_F(TraceCli, BinaryTraceFeedsTheSimulationFrontend) {
  ASSERT_EQ(exit_code(run("trace convert --csv=" + csv_path_ +
                          " --out=" + trc_path_)),
            0);
  // --trace sniffs the binary magic; --generator=trace:<path> is the
  // registry spelling of the same workload.
  EXPECT_EQ(exit_code(run("--trace=" + trc_path_ + " --policy=FirstFit")),
            0);
  EXPECT_EQ(exit_code(run("--generator=trace:" + trc_path_ +
                          " --policy=FirstFit")),
            0);
}

TEST_F(TraceCli, UsageErrorsExitWithCode2) {
  EXPECT_EQ(exit_code(run("trace")), 2);                   // no subcommand
  EXPECT_EQ(exit_code(run("trace frobnicate")), 2);        // unknown sub
  EXPECT_EQ(exit_code(run("trace info")), 2);              // missing --in
  EXPECT_EQ(exit_code(run("trace convert --csv=" + csv_path_)), 2);
  EXPECT_EQ(exit_code(run("trace run --in=" + trc_path_ +
                          " --no-such-flag=1")),
            2);
}

TEST_F(TraceCli, CorruptTraceFailsCleanly) {
  { std::ofstream(trc_path_) << "this is not a trace"; }
  const int status = run("trace info --in=" + trc_path_);
  ASSERT_TRUE(WIFEXITED(status));  // an exception-to-exit path, not a crash
  EXPECT_NE(exit_code(status), 0);
}

}  // namespace
}  // namespace dvbp::trace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) dvbp::trace::g_harness_bin = argv[1];
  return RUN_ALL_TESTS();
}
