// Concurrency tests for the metric registry and trace sinks: many threads
// hammering the same instruments must lose no updates and corrupt no state.
// Run under TSan in CI (the registry's atomics sit on the sweep hot path).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace dvbp::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 20000;

void hammer(const std::function<void(std::size_t)>& op) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&op, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) op(t);
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(ObsConcurrency, CounterLosesNoIncrements) {
  Counter c;
  hammer([&](std::size_t) { c.inc(); });
  EXPECT_EQ(c.value(), kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, GaugeAddsCancelExactly) {
  Gauge g;
  hammer([&](std::size_t t) { g.add(t % 2 == 0 ? 1.0 : -1.0); });
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsConcurrency, HistogramCountsEveryObservation) {
  Histogram h({1.0, 2.0, 3.0});
  hammer([&](std::size_t t) { h.observe(static_cast<double>(t % 5)); });
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, RegistryRegistrationRaceYieldsOneInstrument) {
  MetricRegistry reg;
  hammer([&](std::size_t) { reg.counter("dvbp.test.contended_total").inc(); });
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.counter("dvbp.test.contended_total").value(),
            kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  MetricRegistry reg;
  Counter& c = reg.counter("dvbp.test.busy_total");
  Histogram& h = reg.histogram("dvbp.test.busy_ns", {1.0, 10.0});
  std::thread snapshotter([&reg] {
    for (int i = 0; i < 200; ++i) {
      const std::string json = reg.to_json();
      EXPECT_FALSE(json.empty());
    }
  });
  hammer([&](std::size_t t) {
    c.inc();
    h.observe(static_cast<double>(t));
  });
  snapshotter.join();
  EXPECT_EQ(c.value(), kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, RingBufferSinkAccountsForEveryWrite) {
  RingBufferSink ring(1024);
  hammer([&](std::size_t) { ring.write("{\"ev\":\"open\"}"); });
  EXPECT_EQ(ring.lines().size() + ring.dropped(), kThreads * kOpsPerThread);
}

TEST(ObsConcurrency, SweepUpdatesSharedRegistryFromThreadPool) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 60;
  params.mu = 5;
  params.span = 40;
  params.bin_size = 6;
  const std::vector<std::string> policies = {"FirstFit", "MoveToFront",
                                             "NextFit"};
  MetricRegistry reg;
  harness::SweepConfig config;
  config.trials = 32;
  config.threads = 4;
  config.metrics = &reg;
  const auto cells = harness::run_policy_sweep(
      gen::make_generator("uniform", params, /*seed=*/7), policies, config);
  ASSERT_EQ(cells.size(), policies.size());
  EXPECT_EQ(reg.counter("dvbp.sweep.trials_total").value(), config.trials);
  EXPECT_EQ(reg.counter("dvbp.sweep.simulations_total").value(),
            config.trials * policies.size());
  EXPECT_EQ(reg.histogram("dvbp.sweep.trial_latency_ns").count(),
            config.trials);
}

}  // namespace
}  // namespace dvbp::obs
