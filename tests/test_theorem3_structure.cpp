// Structural validation of the Theorem 3 (First Fit) decomposition.
// Following [28], each bin's usage interval I_i = [I_i^-, I_i^+) is split
// at t_i = max(I_i^-, max_{j<i} I_j^+) -- the latest closing time of
// earlier-opened bins -- into P_i = [I_i^-, min(I_i^+, t_i)) and
// Q_i = [min(I_i^+, t_i), I_i^+). The proof's Claim 4 states that the Q_i
// exactly tile the span; we verify that, the blocking-bin property (an
// item landing in bin i did not fit the latest open earlier bin), and the
// assembled bound against exact OPT.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/bounds.hpp"
#include "core/interval_set.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

class Theorem3StructureTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Theorem3StructureTest, DecompositionHoldsAgainstExactOpt) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 35;
  params.mu = 6;
  params.span = 25;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, seed);

  const SimResult sim = simulate(inst, "FirstFit", {.audit = true});
  const auto& bins = sim.packing.bins();

  // First Fit opens bins in nondecreasing order of opening time by id.
  for (std::size_t i = 0; i + 1 < bins.size(); ++i) {
    EXPECT_LE(bins[i].opened, bins[i + 1].opened + 1e-12);
  }

  // Decompose: Q_i = [min(I_i^+, t_i), I_i^+).
  double p_total = 0.0;
  double q_total = 0.0;
  IntervalSet q_union;
  Time latest_close = -1.0;
  for (const BinRecord& bin : bins) {
    const Time t_i = std::max(bin.opened, latest_close);
    const Time q_start = std::min(bin.closed, t_i);
    p_total += q_start - bin.opened;
    q_total += bin.closed - q_start;
    q_union.add({q_start, bin.closed});
    latest_close = std::max(latest_close, bin.closed);
  }

  // Claim 4: the Q_i are disjoint and tile the span exactly.
  EXPECT_NEAR(q_total, inst.span(), 1e-9);
  EXPECT_NEAR(q_union.measure(), q_total, 1e-9);
  EXPECT_NEAR(p_total + q_total, sim.cost, 1e-9);

  // Blocking-bin property: when an item lands in bin i >= 1, every earlier
  // bin open at that moment could not hold it. (Thm 3 only needs the
  // largest-index one, but First Fit guarantees all of them.)
  for (const BinRecord& bin : bins) {
    if (bin.id == 0) continue;
    for (ItemId r : bin.items) {
      const Item& item = inst[r];
      for (const BinRecord& earlier : bins) {
        if (earlier.id >= bin.id) break;
        if (!earlier.usage().contains(item.arrival)) continue;
        RVec load(inst.dim());
        for (ItemId other : earlier.items) {
          // Items of the earlier bin active when r arrived; r itself is in
          // a later bin, so no self-exclusion is needed. Placement order at
          // equal timestamps matters: only items that arrived strictly
          // before r, or at the same instant with a smaller id, were
          // already packed.
          const Item& o = inst[other];
          const bool already_packed =
              o.arrival < item.arrival ||
              (o.arrival == item.arrival && other < r);
          if (already_packed && o.active_at(item.arrival)) load += o.size;
        }
        EXPECT_FALSE(load.fits_with(item.size))
            << "item " << r << " skipped bin " << earlier.id
            << " that could hold it";
      }
    }
  }

  // Assembled Theorem 3 bound vs exact OPT.
  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);
  EXPECT_LE(sim.cost,
            bounds::first_fit_upper(inst.mu(), static_cast<double>(d)) *
                    opt.cost +
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Random, Theorem3StructureTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)));

TEST(Theorem3Structure, HandComputedSplit) {
  // B0: [0,4). B1 opens at 1 (conflict), closes at 6. t_1 = 4, so
  // P_1 = [1,4), Q_1 = [4,6); Q_0 = [0,4). Q tiles [0,6) = span.
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.7});
  inst.add(1.0, 6.0, RVec{0.7});
  const SimResult sim = simulate(inst, "FirstFit", {.audit = true});
  ASSERT_EQ(sim.bins_opened, 2u);
  EXPECT_DOUBLE_EQ(sim.cost, 4.0 + 5.0);
  // Verified implicitly: span = 6, P total = 3, Q total = 6.
  EXPECT_DOUBLE_EQ(inst.span(), 6.0);
}

}  // namespace
}  // namespace dvbp
