// Tests for the experiment harness: CLI parsing, table rendering, and the
// Monte-Carlo sweep (determinism, thread-count invariance, and the expected
// coarse ordering of the paper's algorithms).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/table.hpp"

namespace dvbp {
namespace {

// ---- CLI ------------------------------------------------------------------

harness::Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return harness::Args(static_cast<int>(full.size()), full.data());
}

TEST(Cli, ParsesKeyValueFlags) {
  const auto args = make_args({"--trials=50", "--name=abc", "pos1"});
  EXPECT_TRUE(args.has("trials"));
  EXPECT_EQ(args.get_int("trials", 0), 50);
  EXPECT_EQ(args.get("name", ""), "abc");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, BareFlagIsTrue) {
  const auto args = make_args({"--csv"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_FALSE(args.get_bool("other"));
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto args = make_args({});
  EXPECT_EQ(args.get_int("trials", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("sigma", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
}

TEST(Cli, ListsAndIntLists) {
  const auto args = make_args({"--mu=1,2,5", "--who=a,b"});
  EXPECT_EQ(args.get_int_list("mu", {}),
            (std::vector<std::int64_t>{1, 2, 5}));
  EXPECT_EQ(args.get_list("who"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(args.get_int_list("absent", {9}),
            (std::vector<std::int64_t>{9}));
}

// Fail-fast output-path validation: a typo'd --metrics-out/--trace-out/
// --journal-dir must be rejected at parse time (CliError, exit code 2 in
// main), not after minutes of simulation.
TEST(Cli, WritablePathChecksAcceptValidTargets) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "dvbp_cli_writable_test";
  fs::create_directories(dir);
  // Existing writable directory -> new file inside it is fine.
  EXPECT_NO_THROW(harness::require_writable_file(
      "metrics-out", (dir / "metrics.json").string()));
  // Existing writable directory, and a to-be-created child of it.
  EXPECT_NO_THROW(harness::require_writable_dir("journal-dir", dir.string()));
  EXPECT_NO_THROW(harness::require_writable_dir(
      "journal-dir", (dir / "sub" / "deeper").string()));
  // Empty path means "flag unused": always fine.
  EXPECT_NO_THROW(harness::require_writable_file("metrics-out", ""));
  EXPECT_NO_THROW(harness::require_writable_dir("journal-dir", ""));
  fs::remove_all(dir);
}

TEST(Cli, WritablePathChecksRejectBadTargetsWithTypedError) {
  namespace fs = std::filesystem;
  // Parent directory does not exist.
  EXPECT_THROW(harness::require_writable_file(
                   "metrics-out", "/nonexistent_dvbp/metrics.json"),
               harness::CliError);
  // Nearest existing ancestor (/) is not writable for non-root... but tests
  // may run as root, so use a file in the way of a directory instead: a
  // path whose "directory" component is a regular file can never be
  // created.
  const fs::path dir =
      fs::temp_directory_path() / "dvbp_cli_unwritable_test";
  fs::create_directories(dir);
  { std::ofstream(dir / "file") << "x"; }
  EXPECT_THROW(harness::require_writable_file(
                   "trace-out", (dir / "file" / "trace.jsonl").string()),
               harness::CliError);
  EXPECT_THROW(harness::require_writable_dir(
                   "journal-dir", (dir / "file" / "wal").string()),
               harness::CliError);
  // Target exists but is a directory where a file is required.
  EXPECT_THROW(harness::require_writable_file("metrics-out", dir.string()),
               harness::CliError);
  // The error message names the offending flag so the user can find it.
  try {
    harness::require_writable_file("metrics-out",
                                   "/nonexistent_dvbp/metrics.json");
    FAIL() << "expected CliError";
  } catch (const harness::CliError& e) {
    EXPECT_NE(std::string(e.what()).find("metrics-out"), std::string::npos);
  }
  fs::remove_all(dir);
}

TEST(Cli, RejectsMalformedNumbers) {
  const auto args = make_args({"--trials=abc"});
  EXPECT_THROW(args.get_int("trials", 0), std::invalid_argument);
  const auto args2 = make_args({"--mu=1,x"});
  EXPECT_THROW(args2.get_int_list("mu", {}), std::invalid_argument);
}

// ---- Table ------------------------------------------------------------------

TEST(Table, AlignedTextContainsAllCells) {
  harness::Table t({"alg", "ratio"});
  t.add_row({"FirstFit", "1.23"});
  t.add_row({"NextFit", "2.34"});
  const std::string out = t.to_aligned_text();
  EXPECT_NE(out.find("FirstFit"), std::string::npos);
  EXPECT_NE(out.find("2.34"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  harness::Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvShape) {
  harness::Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsBadRows) {
  harness::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(harness::Table({}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(harness::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(harness::Table::num(
                std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(harness::Table::mean_pm(1.5, 0.25, 2), "1.50 +- 0.25");
}

// ---- Sweep ------------------------------------------------------------------

gen::UniformParams small_params() {
  gen::UniformParams p;
  p.d = 2;
  p.n = 120;
  p.mu = 10;
  p.span = 100;
  p.bin_size = 20;
  return p;
}

TEST(Sweep, DeterministicAcrossRunsAndThreadCounts) {
  const auto generate = gen::make_generator("uniform", small_params(), 5);
  harness::SweepConfig cfg;
  cfg.trials = 16;
  cfg.seed = 5;

  cfg.threads = 1;
  const auto serial = harness::run_policy_sweep(
      generate, {"MoveToFront", "NextFit"}, cfg);
  cfg.threads = 4;
  const auto parallel = harness::run_policy_sweep(
      generate, {"MoveToFront", "NextFit"}, cfg);

  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_DOUBLE_EQ(serial[p].ratio.mean(), parallel[p].ratio.mean());
    EXPECT_DOUBLE_EQ(serial[p].ratio.stddev(), parallel[p].ratio.stddev());
    EXPECT_DOUBLE_EQ(serial[p].bins.mean(), parallel[p].bins.mean());
  }
}

TEST(Sweep, RatiosAreAtLeastOneAgainstLowerBound) {
  const auto generate = gen::make_generator("uniform", small_params(), 9);
  harness::SweepConfig cfg;
  cfg.trials = 8;
  const auto cells =
      harness::run_policy_sweep(generate, {"FirstFit"}, cfg);
  // cost >= OPT >= LB, so cost/LB >= 1 on every trial.
  EXPECT_GE(cells[0].ratio.min(), 1.0 - 1e-9);
  EXPECT_EQ(cells[0].ratio.count(), 8u);
}

TEST(Sweep, ValidatesArguments) {
  const auto generate = gen::make_generator("uniform", small_params(), 9);
  harness::SweepConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(harness::run_policy_sweep(generate, {"FirstFit"}, cfg),
               std::invalid_argument);
  cfg.trials = 2;
  EXPECT_THROW(harness::run_policy_sweep(generate, {}, cfg),
               std::invalid_argument);
}

TEST(Table, NanRendering) {
  EXPECT_EQ(harness::Table::num(std::nan("")), "nan");
  EXPECT_EQ(harness::Table::num(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(Sweep, RawCostModeSkipsNormalization) {
  const auto generate = gen::make_generator("uniform", small_params(), 3);
  harness::SweepConfig cfg;
  cfg.trials = 4;
  cfg.normalize_by_lb = false;
  const auto cells = harness::run_policy_sweep(generate, {"FirstFit"}, cfg);
  // Raw costs on this workload are way above any ratio scale.
  EXPECT_GT(cells[0].ratio.mean(), 10.0);
}

TEST(Sweep, WorstFitTrailsMoveToFrontOnAverage) {
  // Coarse Figure 4 shape at mu = 10, d = 2 -- the full ordering is
  // asserted statistically by bench_fig4; here just the extremes.
  auto params = small_params();
  params.n = 400;
  const auto generate = gen::make_generator("uniform", params, 31);
  harness::SweepConfig cfg;
  cfg.trials = 12;
  const auto cells = harness::run_policy_sweep(
      generate, {"MoveToFront", "WorstFit"}, cfg);
  EXPECT_LT(cells[0].ratio.mean(), cells[1].ratio.mean());
}

}  // namespace
}  // namespace dvbp
